"""Serving caches under the replay/commit protocol.

The invalidation bus is only allowed to fire *after* a bolt's commit
lands (put_once succeeded). These tests drive the bolts through the
same mid-commit failure + replay sequences as
``tests/topology/test_replay_commit.py`` and assert the read path never
acts on torn state: no invalidation before the commit, exactly one per
committed op, none for dedup'd replays, and the cache converges to the
failure-free answer once the replay commits.
"""

import pytest

from repro.engine.engine import EngineConfig, RecommenderEngine
from repro.errors import DataServerDownError
from repro.serving import InvalidationBus, ServingLayer
from repro.storm.component import OutputCollector, TopologyContext
from repro.storm.streams import OutputDeclaration
from repro.storm.tuples import StormTuple
from repro.tdstore.cluster import TDStoreCluster
from repro.topology.bolts_cf import SimListBolt, UserHistoryBolt
from repro.topology.bolts_db import GroupCountBolt
from repro.topology.state import StateKeys


class FlakyClient:
    """Client proxy that raises once on the first call of one method."""

    def __init__(self, inner, fail_method):
        self._inner = inner
        self._fail_method = fail_method
        self.failed = False

    def __getattr__(self, name):
        attr = getattr(self._inner, name)
        if name == self._fail_method and not self.failed:
            def boom(*args, **kwargs):
                self.failed = True
                raise DataServerDownError("injected mid-update failure")

            return boom
        return attr


def prepare(bolt, name="bolt"):
    declaration = OutputDeclaration()
    bolt.declare_outputs(declaration)
    emitted = []
    collector = OutputCollector(
        name, 0, declaration,
        emit_fn=lambda tup, message_id: emitted.append(tup),
        ack_fn=lambda tup: None,
        fail_fn=lambda tup: None,
        clock_now=lambda: 0.0,
    )
    bolt.prepare(TopologyContext(name, 0, 1, "test"), collector)
    return emitted


def deliver(bolt, tup):
    bolt.collector.set_input_context(frozenset(), tup.op_id)
    bolt.execute(tup)


def action_tuple(user, item, offset, action="click", timestamp=0.0):
    return StormTuple(
        (user, item, action, timestamp),
        ("user", "item", "action", "timestamp"),
        "default",
        "source",
        op_id=f"actions@{offset}",
    )


def sim_tuple(item, other, similarity, offset):
    return StormTuple(
        (item, other, similarity),
        ("item", "other", "similarity"),
        "sim_update",
        "pairCount",
        op_id=f"actions@{offset}>pairCount.0:0",
    )


def group_tuple(group, item, delta, offset):
    return StormTuple(
        (group, item, delta),
        ("group", "item", "delta"),
        "group_delta",
        "userHistory",
        op_id=f"actions@{offset}>userHistory.0:1",
    )


def fresh_cluster():
    return TDStoreCluster(num_data_servers=3, num_instances=8)


def serving_over(cluster, bus):
    clock = [0.0]
    engine = RecommenderEngine(cluster.client(), EngineConfig())
    return ServingLayer(engine, lambda: clock[0], bus=bus)


def seed_sim_lists(cluster):
    client = cluster.client()
    client.put(StateKeys.sim_list("i1"), {"a": 0.9, "b": 0.8})
    client.put(StateKeys.sim_list("i2"), {"c": 0.95})


class TestCommitOrdering:
    def test_no_invalidation_before_commit_no_torn_cached_state(self):
        cluster = fresh_cluster()
        bus = InvalidationBus()
        seed_sim_lists(cluster)
        healthy = UserHistoryBolt(client_factory=cluster.client, bus=bus)
        prepare(healthy)
        deliver(healthy, action_tuple("u1", "i1", 0, timestamp=1.0))
        assert bus.published == 1

        layer = serving_over(cluster, bus)
        first, tier = layer.serve("u1", 2, 2.0)
        assert tier == "batched_live"
        assert [r.item_id for r in first] == ["a", "b"]

        # second action fails mid-commit: the recent list already moved
        # (idempotent side write) but the history commit did not land
        flaky = FlakyClient(cluster.client(), "put_once")
        flaky_bolt = UserHistoryBolt(client_factory=lambda: flaky, bus=bus)
        prepare(flaky_bolt)
        tup = action_tuple("u1", "i2", 1, timestamp=3.0)
        with pytest.raises(DataServerDownError):
            deliver(flaky_bolt, tup)
        assert bus.published == 1  # nothing published before the commit
        # so the cache keeps serving the committed answer, never a torn
        # recompute over half-applied state
        again, tier = layer.serve("u1", 2, 3.5)
        assert tier == "result_cache"
        assert [r.item_id for r in again] == ["a", "b"]

        # the replay commits, publishes exactly once, and the staled
        # entry recomputes from fully-committed state
        deliver(flaky_bolt, tup)
        assert bus.published == 2
        assert layer.result_cache.get(("cf", "u1", 2)) is None
        final, tier = layer.serve("u1", 2, 4.0)
        assert tier == "batched_live"
        assert [r.item_id for r in final] == self._reference()

    def _reference(self):
        """The failure-free answer for the same two actions."""
        cluster = fresh_cluster()
        bus = InvalidationBus()
        seed_sim_lists(cluster)
        bolt = UserHistoryBolt(client_factory=cluster.client, bus=bus)
        prepare(bolt)
        deliver(bolt, action_tuple("u1", "i1", 0, timestamp=1.0))
        deliver(bolt, action_tuple("u1", "i2", 1, timestamp=3.0))
        layer = serving_over(cluster, bus)
        results, __ = layer.serve("u1", 2, 4.0)
        return [r.item_id for r in results]


class TestReplayPublishesOnce:
    def test_dedup_ledger_replay_does_not_republish(self):
        cluster = fresh_cluster()
        bus = InvalidationBus()
        bolt = UserHistoryBolt(client_factory=cluster.client, bus=bus)
        prepare(bolt)
        tup = action_tuple("u1", "i1", 0, timestamp=1.0)
        deliver(bolt, tup)
        assert bus.published == 1
        deliver(bolt, tup)  # in-memory ledger catches it
        assert bus.published == 1

    def test_store_journal_replay_does_not_republish(self):
        # the task died, the ledger with it: only op_seen stops the
        # replay — and it must stop the publish too
        cluster = fresh_cluster()
        bus = InvalidationBus()
        bolt = UserHistoryBolt(client_factory=cluster.client, bus=bus)
        prepare(bolt)
        tup = action_tuple("u1", "i1", 0, timestamp=1.0)
        deliver(bolt, tup)
        reborn = UserHistoryBolt(client_factory=cluster.client, bus=bus)
        prepare(reborn)
        deliver(reborn, tup)
        assert bus.published == 1

    def test_sim_list_failure_then_replay_publishes_once(self):
        cluster = fresh_cluster()
        bus = InvalidationBus()
        flaky = FlakyClient(cluster.client(), "put_once")
        bolt = SimListBolt(client_factory=lambda: flaky, k=4, bus=bus)
        prepare(bolt)
        tup = sim_tuple("i1", "a", 0.9, 0)
        with pytest.raises(DataServerDownError):
            deliver(bolt, tup)
        assert bus.published == 0
        deliver(bolt, tup)
        assert bus.published == 1
        assert bus.by_kind == {"item": 1}


class TestStreamStalesTheRightEntries:
    def test_sim_list_commit_stales_dependent_answers(self):
        cluster = fresh_cluster()
        bus = InvalidationBus()
        client = cluster.client()
        client.put(StateKeys.recent("u1"), [("i1", 5.0, 0.0)])
        client.put(StateKeys.history("u1"), {"i1": 5.0})
        client.put(StateKeys.sim_list("i1"), {"a": 0.9})
        layer = serving_over(cluster, bus)
        results, __ = layer.serve("u1", 1, 0.0)
        assert [r.item_id for r in results] == ["a"]

        bolt = SimListBolt(client_factory=cluster.client, k=4, bus=bus)
        prepare(bolt)
        deliver(bolt, sim_tuple("i1", "b", 0.95, 0))
        # the answer depended on item i1's list; it staled immediately
        assert layer.result_cache.get(("cf", "u1", 1)) is None
        updated, tier = layer.serve("u1", 1, 0.0)
        assert tier == "batched_live"
        assert [r.item_id for r in updated] == ["b"]

    def test_group_commit_stales_demographic_answers_and_hot_tier(self):
        cluster = fresh_cluster()
        bus = InvalidationBus()
        cluster.client().put(StateKeys.hot("global"), {"h1": 4.0})
        layer = serving_over(cluster, bus)
        results, __ = layer.serve("cold-user", 1, 0.0)
        assert [r.item_id for r in results] == ["h1"]
        assert layer.hot_cache.get("global") == {"h1": 4.0}

        bolt = GroupCountBolt(client_factory=cluster.client, bus=bus)
        prepare(bolt)
        deliver(bolt, group_tuple("global", "h2", 9.0, 0))
        assert layer.result_cache.get(("cf", "cold-user", 1)) is None
        assert layer.hot_cache.get("global") is None
        updated, __ = layer.serve("cold-user", 1, 0.0)
        assert [r.item_id for r in updated] == ["h2"]
