"""Tests for query dedup + micro-batching."""

import pytest

from repro.errors import ConfigurationError
from repro.serving import QueryCoalescer


class TestDedup:
    def test_identical_requests_coalesce(self):
        coalescer = QueryCoalescer()
        for __ in range(5):
            coalescer.submit("u1", 10)
        assert coalescer.pending() == 1
        assert coalescer.submitted == 5
        assert coalescer.coalesced == 4

    def test_same_user_different_n_stay_distinct(self):
        coalescer = QueryCoalescer()
        coalescer.submit("u1", 10)
        coalescer.submit("u1", 20)
        assert coalescer.pending() == 2
        assert coalescer.coalesced == 0


class TestMicroBatching:
    def test_drain_respects_max_batch_and_order(self):
        coalescer = QueryCoalescer(max_batch=3)
        for index in range(5):
            coalescer.submit(f"u{index}", 10)
        first = coalescer.drain()
        assert first == [("u0", 10), ("u1", 10), ("u2", 10)]
        second = coalescer.drain()
        assert second == [("u3", 10), ("u4", 10)]
        assert coalescer.drain() == []
        assert coalescer.pending() == 0

    def test_stats_track_batch_shape(self):
        coalescer = QueryCoalescer(max_batch=4)
        for index in range(6):
            coalescer.submit(f"u{index}", 10)
        coalescer.drain()
        coalescer.drain()
        stats = coalescer.stats()
        assert stats["batches"] == 2
        assert stats["batched_requests"] == 6
        assert stats["mean_batch_size"] == pytest.approx(3.0)
        assert stats["batch_sizes"] == {4: 1, 2: 1}

    def test_invalid_max_batch(self):
        with pytest.raises(ConfigurationError):
            QueryCoalescer(max_batch=0)
