"""End-to-end: a cached recommendation reflects a stream update within
one invalidation cycle.

The acceptance scenario for the serving layer: run the full CF topology
with the invalidation bus wired in, cache an answer through the serving
layer, then stream new actions that change the similarity lists. The
bolts publish their touched keys at commit time, so the very next query
— no TTL wait, no manual flush — recomputes from the updated state.
"""

from repro.engine.engine import EngineConfig, RecommenderEngine
from repro.serving import InvalidationBus, ServingLayer
from repro.storm import LocalCluster
from repro.tdstore import TDStoreCluster
from repro.topology.framework import CFTopologyConfig, build_cf_topology
from repro.types import UserAction
from repro.utils.clock import SimClock

BIG = 10**12


def stream(store, clock, bus, actions, group_of=None):
    """Run one batch of actions through the full CF topology."""
    topo = build_cf_topology(
        "cf",
        actions,
        clock,
        store.client,
        CFTopologyConfig(
            linked_time=BIG, group_of=group_of, invalidation_bus=bus
        ),
    )
    cluster = LocalCluster(clock=clock)
    cluster.submit(topo)
    cluster.run_until_idle()


def co_click_actions(item, start, users=10):
    """``users`` users click A then ``item``; "target" clicks only A."""
    actions = []
    t = start
    for n in range(users):
        actions.append(UserAction(f"u{n}", "A", "click", t))
        actions.append(UserAction(f"u{n}", item, "click", t + 1))
        t += 2
    actions.append(UserAction("target", "A", "click", t))
    return actions


class TestStreamToCacheLoop:
    def test_cached_answer_reflects_sim_list_update_next_query(self):
        clock = SimClock()
        store = TDStoreCluster(num_data_servers=3, num_instances=16)
        bus = InvalidationBus()
        engine = RecommenderEngine(store.client(), EngineConfig())
        layer = ServingLayer(engine, clock.now, bus=bus)

        # phase 1: B co-clicks with A; target's cached answer is B alone
        stream(store, clock, bus, co_click_actions("B", 0.0))
        results, tier = layer.serve("target", 2, clock.now())
        assert tier == "batched_live"
        assert [r.item_id for r in results] == ["B"]
        results, tier = layer.serve("target", 2, clock.now())
        assert tier == "result_cache"  # cached, would serve stale forever

        # phase 2: a new co-click signal for C arrives on the stream;
        # the sim-list commits publish ("item", "A") so the cached
        # answer for target (which depends on A's list) stales
        invalidations_before = layer.result_cache.stats()["invalidations"]
        stream(store, clock, bus, co_click_actions("C", 1000.0, users=30))
        assert layer.result_cache.stats()["invalidations"] > invalidations_before
        assert layer.result_cache.get(("cf", "target", 2)) is None

        # the very next query — one invalidation cycle later — serves
        # the updated recommendation live, no TTL expiry involved
        results, tier = layer.serve("target", 2, clock.now())
        assert tier == "batched_live"
        assert "C" in [r.item_id for r in results]
        # and it matches a per-key read of the same state exactly
        want = engine.recommend_cf("target", 2, clock.now())
        assert [(r.item_id, r.score) for r in results] == [
            (r.item_id, r.score) for r in want
        ]

    def test_user_history_update_stales_that_users_answer_only(self):
        clock = SimClock()
        store = TDStoreCluster(num_data_servers=3, num_instances=16)
        bus = InvalidationBus()
        engine = RecommenderEngine(store.client(), EngineConfig())
        layer = ServingLayer(engine, clock.now, bus=bus)

        stream(store, clock, bus, co_click_actions("B", 0.0))
        layer.serve("target", 1, clock.now())
        layer.serve("u0", 3, clock.now())
        assert len(layer.result_cache) == 2

        # target consumes B: their own history commit stales their entry
        stream(
            store, clock, bus,
            [UserAction("target", "B", "click", 2000.0)],
        )
        assert layer.result_cache.get(("cf", "target", 1)) is None
        results, tier = layer.serve("target", 1, clock.now())
        assert tier == "batched_live"
        assert all(r.item_id != "B" for r in results)  # consumed now
