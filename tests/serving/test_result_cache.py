"""Tests for the tiered result caches and stream invalidation."""

import pytest

from repro.errors import ConfigurationError
from repro.serving import HotListCache, InvalidationBus, ResultCache
from repro.utils.clock import SimClock


def cache_with_clock(ttl=30.0, capacity=10):
    clock = SimClock()
    return ResultCache(clock.now, ttl=ttl, capacity=capacity), clock


class TestFreshness:
    def test_fresh_hit_within_ttl(self):
        cache, clock = cache_with_clock(ttl=10.0)
        cache.put("k", ["a"], tags=(("user", "u1"),))
        assert cache.get("k") == ["a"]
        clock.advance(9.9)
        assert cache.get("k") == ["a"]
        assert cache.stats()["hits"] == 2

    def test_expired_entry_misses_but_serves_stale(self):
        cache, clock = cache_with_clock(ttl=10.0)
        cache.put("k", ["a"])
        clock.advance(11.0)
        assert cache.get("k") is None
        assert cache.get("k", allow_stale=True) == ["a"]
        assert cache.stats()["stale_hits"] == 1

    def test_results_are_copied_not_aliased(self):
        cache, __ = cache_with_clock()
        stored = ["a", "b"]
        cache.put("k", stored)
        got = cache.get("k")
        got.append("mutated")
        assert cache.get("k") == ["a", "b"]


class TestStreamInvalidation:
    def test_invalidation_stales_exactly_the_tagged_entries(self):
        cache, __ = cache_with_clock()
        cache.put("q1", ["a"], tags=(("user", "u1"), ("item", "i1")))
        cache.put("q2", ["b"], tags=(("user", "u2"),))
        cache.on_invalidation("item", "i1")
        assert cache.get("q1") is None  # staled
        assert cache.get("q1", allow_stale=True) == ["a"]  # still present
        assert cache.get("q2") == ["b"]  # untouched
        assert cache.stats()["invalidations"] == 1

    def test_unknown_tag_is_a_no_op(self):
        cache, __ = cache_with_clock()
        cache.put("q1", ["a"], tags=(("user", "u1"),))
        cache.on_invalidation("item", "never-seen")
        assert cache.get("q1") == ["a"]

    def test_refill_after_invalidation_serves_fresh_again(self):
        cache, __ = cache_with_clock()
        cache.put("q1", ["old"], tags=(("user", "u1"),))
        cache.on_invalidation("user", "u1")
        cache.put("q1", ["new"], tags=(("user", "u1"),))
        assert cache.get("q1") == ["new"]
        cache.on_invalidation("user", "u1")
        assert cache.get("q1") is None

    def test_bus_delivers_to_subscribed_cache(self):
        clock = SimClock()
        cache = ResultCache(clock.now)
        bus = InvalidationBus()
        bus.subscribe(cache.on_invalidation)
        cache.put("q", ["a"], tags=(("group", "male"),))
        bus.publish("group", "male")
        assert cache.get("q") is None
        assert bus.published == 1 and bus.delivered == 1
        assert bus.by_kind == {"group": 1}


class TestEviction:
    def test_lru_eviction_at_capacity(self):
        cache, __ = cache_with_clock(capacity=2)
        cache.put("a", [1], tags=(("user", "ua"),))
        cache.put("b", [2])
        cache.get("a")  # a is now most-recent
        cache.put("c", [3])
        assert cache.get("b") is None
        assert cache.get("a") == [1]
        assert cache.stats()["evictions"] == 1

    def test_evicted_entries_leave_no_tag_residue(self):
        cache, __ = cache_with_clock(capacity=1)
        cache.put("a", [1], tags=(("user", "ua"),))
        cache.put("b", [2], tags=(("user", "ua"),))
        assert len(cache) == 1
        cache.on_invalidation("user", "ua")  # must not resurrect "a"
        assert cache.get("a", allow_stale=True) is None
        assert cache.stats()["invalidations"] == 1  # only "b" staled

    def test_overwrite_replaces_tags(self):
        cache, __ = cache_with_clock()
        cache.put("q", ["v1"], tags=(("item", "i1"),))
        cache.put("q", ["v2"], tags=(("item", "i2"),))
        cache.on_invalidation("item", "i1")
        assert cache.get("q") == ["v2"]
        cache.on_invalidation("item", "i2")
        assert cache.get("q") is None

    def test_invalid_configuration(self):
        clock = SimClock()
        with pytest.raises(ConfigurationError):
            ResultCache(clock.now, ttl=0)
        with pytest.raises(ConfigurationError):
            ResultCache(clock.now, capacity=0)


class TestHotListCache:
    def test_ttl_and_group_invalidation(self):
        clock = SimClock()
        cache = HotListCache(clock.now, ttl=5.0)
        cache.put("male", {"i1": 2.0})
        assert cache.get("male") == {"i1": 2.0}
        cache.on_invalidation("group", "male")
        assert cache.get("male") is None
        cache.put("male", {"i1": 3.0})
        clock.advance(6.0)
        assert cache.get("male") is None  # TTL backstop

    def test_non_group_kinds_ignored(self):
        clock = SimClock()
        cache = HotListCache(clock.now)
        cache.put("male", {"i1": 2.0})
        cache.on_invalidation("item", "male")
        assert cache.get("male") == {"i1": 2.0}
