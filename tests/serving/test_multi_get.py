"""Tests for the TDStore batched read path (multi_get)."""

import pytest

from repro.errors import CircuitOpenError, DeadlineExceededError
from repro.resilience import CircuitBreaker, Deadline
from repro.tdstore import TDStoreCluster
from repro.utils.clock import SimClock


def seeded(num_servers=3, num_instances=16, keys=40):
    cluster = TDStoreCluster(
        num_data_servers=num_servers, num_instances=num_instances
    )
    client = cluster.client()
    for index in range(keys):
        client.put(f"key:{index}", index)
    return cluster


class TestBatchParity:
    def test_matches_per_key_gets(self):
        cluster = seeded()
        client = cluster.client()
        keys = [f"key:{i}" for i in range(40)] + ["missing:a", "missing:b"]
        got = client.multi_get(keys, default="absent")
        assert got == {key: client.get(key, "absent") for key in keys}

    def test_empty_batch(self):
        cluster = seeded(keys=0)
        assert cluster.client().multi_get([]) == {}

    def test_one_batch_op_per_server(self):
        cluster = seeded(num_servers=3)
        client = cluster.client()
        keys = [f"key:{i}" for i in range(40)]
        client.multi_get(keys)
        # keys spread over 16 instances on 3 hosts: at most one batch op
        # per live server, not one op per key
        assert 1 <= client.batch_ops <= 3
        assert client.batched_keys == len(keys)
        total_server_batches = sum(
            s.batch_ops for s in cluster.data_servers
        )
        assert total_server_batches == client.batch_ops

    def test_duplicate_keys_served_once(self):
        cluster = seeded(keys=4)
        client = cluster.client()
        got = client.multi_get(["key:1", "key:1", "key:2"])
        assert got == {"key:1": 1, "key:2": 2}


class TestEpochGatedRefresh:
    def test_steady_state_never_refetches_the_table(self):
        cluster = seeded()
        client = cluster.client()
        for index in range(30):
            client.put(f"key:{index}", index * 2)
            client.get(f"key:{index}")
        client.multi_get([f"key:{i}" for i in range(30)])
        assert client.route_refreshes == 0

    def test_epoch_change_triggers_exactly_one_refresh(self):
        cluster = seeded()
        observer = cluster.client()
        observer.get("key:0")
        assert observer.route_refreshes == 0
        # another client drives a failover, bumping the route epoch
        cluster.crash_data_server(0)
        driver = cluster.client()
        for index in range(40):
            driver.get(f"key:{index}")
        epoch_before = cluster.config.route_epoch
        assert epoch_before > 0
        # the observer sees the epoch moved and refreshes once, then
        # settles back onto the cheap scalar check
        for index in range(40):
            observer.get(f"key:{index}")
        assert observer.route_refreshes == 1

    def test_multi_get_after_epoch_change(self):
        cluster = seeded()
        observer = cluster.client()
        observer.multi_get(["key:0", "key:1"])
        cluster.crash_data_server(0)
        driver = cluster.client()
        for index in range(40):
            driver.get(f"key:{index}")
        got = observer.multi_get([f"key:{i}" for i in range(40)])
        assert got == {f"key:{i}": i for i in range(40)}
        assert observer.route_refreshes == 1


class TestPartialShardDegradation:
    def test_crashed_server_fails_over_inside_the_batch(self):
        cluster = seeded(num_servers=3)
        client = cluster.client()
        keys = [f"key:{i}" for i in range(40)]
        cluster.crash_data_server(1)
        got = client.multi_get(keys)
        assert got == {f"key:{i}": i for i in range(40)}
        assert client.degraded_keys == 0
        assert client.last_failed_keys == frozenset()

    def test_failover_impossible_hedges_to_replica(self):
        # two servers: a crash leaves too few live servers to
        # re-replicate, so failover raises and the batch must hedge
        cluster = seeded(num_servers=2, num_instances=8, keys=20)
        cluster.sync_replicas()
        client = cluster.client()
        keys = [f"key:{i}" for i in range(20)]
        cluster.crash_data_server(0)
        got = client.multi_get(keys)
        assert got == {f"key:{i}": i for i in range(20)}
        assert client.hedged_reads > 0
        assert client.degraded_keys == 0

    def test_everything_down_degrades_to_defaults_not_an_error(self):
        cluster = seeded(num_servers=2, num_instances=8, keys=10)
        client = cluster.client()
        keys = [f"key:{i}" for i in range(10)]
        cluster.crash_data_server(0)
        cluster.crash_data_server(1)
        got = client.multi_get(keys, default="fallback")
        assert got == {key: "fallback" for key in keys}
        assert client.degraded_keys == len(keys)
        assert client.last_failed_keys == frozenset(keys)

    def test_degraded_batch_records_breaker_failure(self):
        clock = SimClock()
        cluster = seeded(num_servers=2, num_instances=8, keys=10)
        breaker = CircuitBreaker(clock.now, failure_threshold=1, name="store")
        client = cluster.client(breaker=breaker)
        cluster.crash_data_server(0)
        cluster.crash_data_server(1)
        client.multi_get([f"key:{i}" for i in range(10)])
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            client.multi_get(["key:0"])

    def test_deadline_still_aborts_the_whole_batch(self):
        clock = SimClock()
        cluster = seeded(num_servers=3)
        cluster.set_degradation(0, latency=2.0)
        cluster.set_degradation(1, latency=2.0)
        cluster.set_degradation(2, latency=2.0)
        client = cluster.client(clock=clock)
        with client.deadline_scope(Deadline(clock.now, 1.0)):
            with pytest.raises(DeadlineExceededError):
                client.multi_get([f"key:{i}" for i in range(40)])
        assert client.deadline_misses == 1

    def test_injected_error_rate_is_retried_in_place(self):
        cluster = seeded(num_servers=3)
        cluster.set_degradation(0, error_every=2)
        cluster.set_degradation(1, error_every=2)
        cluster.set_degradation(2, error_every=2)
        client = cluster.client()
        keys = [f"key:{i}" for i in range(40)]
        got = client.multi_get(keys)
        # alive-but-flaky servers answer on the in-place retry or the
        # hedge; no key may be silently lost
        assert set(got) == set(keys)
