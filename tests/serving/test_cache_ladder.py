"""Cache x degradation-ladder interaction (front end + serving layer).

The ladder's contract with the serving caches: fresh hits are "live",
stale-but-present answers serve on the "cache" rung when the live rung
fails, and losing a cache entry (eviction storm) must step down to the
last-known-good answer — not spuriously to demographics.
"""

import pytest

from repro.engine.degraded import ServeThroughRecovery
from repro.engine.engine import EngineConfig, RecommenderEngine
from repro.engine.front_end import RecommenderFrontEnd
from repro.errors import EvaluationError
from repro.resilience import CircuitBreaker, LoadShedder
from repro.serving import InvalidationBus, ServingLayer
from repro.tdstore import TDStoreCluster
from repro.topology.state import StateKeys
from repro.utils.clock import SimClock

USER = "u1"


def seeded_store() -> TDStoreCluster:
    store = TDStoreCluster(num_data_servers=2, num_instances=8)
    client = store.client()
    client.put(StateKeys.recent(USER), [("i1", 5.0, 0.0)])
    client.put(StateKeys.history(USER), {"i1": 5.0})
    client.put(StateKeys.sim_list("i1"), {"i2": 0.9, "i3": 0.8})
    client.put(StateKeys.hot("global"), {"h1": 4.0, "h2": 2.0})
    return store


def stack(store, clock, breaker=None, capacity=100, degraded=False,
          shedder=None, static=(), result_ttl=30.0):
    """Front end + serving layer + bus over one store client."""
    client = store.client(breaker=breaker)
    engine = RecommenderEngine(client, EngineConfig())
    bus = InvalidationBus()
    serving = ServingLayer(
        engine, clock.now, bus=bus, cache_capacity=capacity,
        result_ttl=result_ttl,
    )
    wrapper = (
        ServeThroughRecovery(engine, in_recovery=lambda: False)
        if degraded
        else None
    )
    front_end = RecommenderFrontEnd(
        engine,
        serving=serving,
        degraded=wrapper,
        shedder=shedder,
        static_items=static,
    )
    return front_end, serving, bus, client


class TestRungAttribution:
    def test_fresh_cache_hit_counts_as_live(self):
        store = seeded_store()
        clock = SimClock()
        front_end, serving, __, __c = stack(store, clock)
        first = front_end.query(USER, 2, 0.0)
        second = front_end.query(USER, 2, 0.0)
        assert [r.item_id for r in first] == [r.item_id for r in second]
        assert front_end.log.rungs == {"live": 2}
        assert serving.tier_serves["result_cache"] == 1
        assert front_end.log.rung_history == ["live", "live"]

    def test_breaker_open_serves_expired_entry_on_cache_rung(self):
        store = seeded_store()
        clock = SimClock()
        breaker = CircuitBreaker(clock.now, failure_threshold=1, name="store")
        front_end, serving, __, __c = stack(
            store, clock, breaker=breaker, result_ttl=5.0
        )
        warm = front_end.query(USER, 2, 0.0)
        breaker.record_failure()
        assert breaker.state == "open"
        # past the TTL the entry no longer answers fresh, so the live
        # rung reaches the store, trips the open breaker, and the ladder
        # steps down onto the stale-but-present copy
        clock.advance(10.0)
        served = front_end.query(USER, 2, 10.0)
        assert [r.item_id for r in served] == [r.item_id for r in warm]
        assert front_end.log.rungs == {"live": 1, "cache": 1}
        assert serving.stale_serves == 1
        assert breaker.state == "open"

    def test_stale_invalidated_entry_still_serves_under_failure(self):
        store = seeded_store()
        clock = SimClock()
        breaker = CircuitBreaker(clock.now, failure_threshold=1, name="store")
        front_end, serving, bus, __c = stack(store, clock, breaker=breaker)
        warm = front_end.query(USER, 2, 0.0)
        bus.publish("user", USER)  # stream staled the cached answer
        breaker.record_failure()
        served = front_end.query(USER, 2, 1.0)
        assert [r.item_id for r in served] == [r.item_id for r in warm]
        assert front_end.log.rungs == {"live": 1, "cache": 1}
        assert serving.stale_serves == 1

    def test_staled_entry_recomputes_live_when_healthy(self):
        store = seeded_store()
        clock = SimClock()
        front_end, serving, bus, __c = stack(store, clock)
        front_end.query(USER, 2, 0.0)
        bus.publish("user", USER)
        front_end.query(USER, 2, 1.0)
        # healthy store: a staled entry is recomputed, never served stale
        assert front_end.log.rungs == {"live": 2}
        assert serving.stale_serves == 0
        assert serving.tier_serves["batched_live"] == 2


class TestEvictionStorms:
    def test_evicted_entry_falls_back_to_last_known_good_not_demographic(self):
        store = seeded_store()
        clock = SimClock()
        breaker = CircuitBreaker(clock.now, failure_threshold=1, name="store")
        front_end, serving, __, __c = stack(
            store, clock, breaker=breaker, capacity=2, degraded=True
        )
        warm = front_end.query(USER, 2, 0.0)
        # an eviction storm pushes the user's entry out of the result cache
        for index in range(5):
            front_end.query(f"storm-user-{index}", 2, 0.0)
        assert serving.result_cache.get(("cf", USER, 4), allow_stale=True) is None
        breaker.record_failure()
        served = front_end.query(USER, 2, 1.0)
        assert [r.item_id for r in served] == [r.item_id for r in warm]
        assert front_end.log.rungs.get("demographic", 0) == 0
        assert front_end.log.rungs["cache"] == 1

    def test_without_any_cached_copy_demographic_is_correct(self):
        store = seeded_store()
        clock = SimClock()
        breaker = CircuitBreaker(clock.now, failure_threshold=1, name="store")
        front_end, serving, __, __c = stack(
            store, clock, breaker=breaker, capacity=2
        )
        healthy_engine = RecommenderEngine(store.client(), EngineConfig())
        front_end._hot_fallback = healthy_engine.hot_items_for(USER, 2, 0.0)
        breaker.record_failure()
        served = front_end.query("never-seen", 2, 0.0)
        assert [r.item_id for r in served] == ["h1", "h2"]
        assert front_end.log.rungs == {"demographic": 1}


class TestQueryBatch:
    def test_batch_serves_live_and_records_rungs(self):
        store = seeded_store()
        clock = SimClock()
        front_end, serving, __, __c = stack(store, clock)
        answers = front_end.query_batch([(USER, 2), ("other", 2)], 0.0)
        assert set(answers) == {(USER, 2), ("other", 2)}
        assert [r.item_id for r in answers[(USER, 2)]] == ["i2", "i3"]
        assert front_end.log.rungs["live"] == 2
        assert serving.coalescer.batches >= 1

    def test_batch_failure_degrades_per_query(self):
        store = seeded_store()
        clock = SimClock()
        breaker = CircuitBreaker(clock.now, failure_threshold=1, name="store")
        front_end, serving, __, __c = stack(
            store, clock, breaker=breaker, static=("s1",)
        )
        front_end.query_batch([(USER, 2)], 0.0)  # warm
        breaker.record_failure()
        answers = front_end.query_batch([(USER, 2), ("stranger", 2)], 1.0)
        assert answers[(USER, 2)]  # stale cache rung
        assert [r.item_id for r in answers[("stranger", 2)]] == ["s1"]
        assert front_end.log.rungs["cache"] == 1
        assert front_end.log.rungs["static"] == 1

    def test_shedding_applies_per_batched_query(self):
        store = seeded_store()
        clock = SimClock()
        shedder = LoadShedder(clock.now, capacity=1, window=1.0)
        front_end, __, __b, __c = stack(
            store, clock, shedder=shedder, static=("s1",)
        )
        answers = front_end.query_batch([(USER, 2), ("u2", 2)], 0.0)
        assert front_end.log.shed == 1
        assert sorted(front_end.log.rungs.items()) == [
            ("live", 1), ("static", 1)
        ]
        assert len(answers) == 2

    def test_query_batch_requires_serving_layer(self):
        store = seeded_store()
        engine = RecommenderEngine(store.client(), EngineConfig())
        front_end = RecommenderFrontEnd(engine)
        with pytest.raises(EvaluationError):
            front_end.query_batch([(USER, 2)], 0.0)

    def test_serving_layer_requires_cf(self):
        store = seeded_store()
        clock = SimClock()
        engine = RecommenderEngine(store.client(), EngineConfig())
        serving = ServingLayer(engine, clock.now)
        with pytest.raises(EvaluationError):
            RecommenderFrontEnd(engine, algorithm="cb", serving=serving)
