"""Batched CF answers must be indistinguishable from per-key answers."""

from repro.engine.engine import EngineConfig, RecommenderEngine
from repro.tdstore import TDStoreCluster
from repro.topology.state import StateKeys

GROUPS = {"u_m": "male", "u_f": "female"}


def seeded_cluster():
    cluster = TDStoreCluster(num_data_servers=3, num_instances=16)
    client = cluster.client()
    client.put(StateKeys.recent("u1"), [("i1", 5.0, 0.0), ("i2", 3.0, 1.0)])
    client.put(StateKeys.history("u1"), {"i1": 5.0, "i2": 3.0})
    client.put(StateKeys.recent("u2"), [("i2", 4.0, 0.0)])
    client.put(StateKeys.history("u2"), {"i2": 4.0})
    client.put(StateKeys.sim_list("i1"), {"i3": 0.9, "i4": 0.7, "i2": 0.5})
    client.put(StateKeys.sim_list("i2"), {"i4": 0.8, "i5": 0.6})
    client.put(StateKeys.hot("global"), {"h1": 9.0, "h2": 5.0, "i3": 4.0})
    client.put(StateKeys.hot("male"), {"hm": 7.0})
    return cluster


def engine_for(cluster, group_of=None):
    return RecommenderEngine(
        cluster.client(), EngineConfig(group_of=group_of)
    )


class TestBatchParity:
    def test_batch_equals_per_key_for_every_user(self):
        cluster = seeded_cluster()
        engine = engine_for(cluster)
        users = ["u1", "u2", "cold-user"]
        batch = engine.recommend_cf_batch(users, 5, 100.0)
        for user in users:
            want = engine.recommend_cf(user, 5, 100.0)
            got = batch[user].results
            assert [(r.item_id, r.score, r.source) for r in got] == [
                (r.item_id, r.score, r.source) for r in want
            ], user

    def test_batch_parity_with_groups(self):
        cluster = seeded_cluster()
        group_of = lambda user: GROUPS.get(user, "global")  # noqa: E731
        engine = engine_for(cluster, group_of=group_of)
        users = ["u1", "u_m", "u_f"]
        batch = engine.recommend_cf_batch(users, 4, 100.0)
        for user in users:
            want = engine.recommend_cf(user, 4, 100.0)
            assert [(r.item_id, r.score) for r in batch[user].results] == [
                (r.item_id, r.score) for r in want
            ], user

    def test_three_multi_gets_for_any_batch_size(self):
        cluster = seeded_cluster()
        engine = engine_for(cluster)
        client = engine.store
        before = client.batch_ops
        engine.recommend_cf_batch([f"u{i}" for i in range(20)], 5, 0.0)
        # 3 batched fan-outs (users, sim lists, hot lists), each of
        # which costs at most one batch op per data server
        assert client.batch_ops - before <= 3 * len(cluster.data_servers)

    def test_duplicate_users_answered_once(self):
        cluster = seeded_cluster()
        engine = engine_for(cluster)
        batch = engine.recommend_cf_batch(["u1", "u1", "u2"], 5, 0.0)
        assert set(batch) == {"u1", "u2"}


class TestAnswerDependencies:
    def test_dep_items_are_the_recent_items(self):
        cluster = seeded_cluster()
        engine = engine_for(cluster)
        batch = engine.recommend_cf_batch(["u1", "u2"], 5, 0.0)
        assert batch["u1"].dep_items == ("i1", "i2")
        assert batch["u2"].dep_items == ("i2",)

    def test_dep_groups_set_only_when_complement_ran(self):
        cluster = seeded_cluster()
        engine = engine_for(cluster)
        full = engine.recommend_cf_batch(["u1"], 1, 0.0)
        assert full["u1"].dep_groups == ()  # CF filled n without the DB
        padded = engine.recommend_cf_batch(["cold"], 3, 0.0)
        assert padded["cold"].dep_groups == ("global",)

    def test_hot_lists_param_is_in_out(self):
        cluster = seeded_cluster()
        engine = engine_for(cluster)
        hot_lists = {}
        engine.recommend_cf_batch(["cold"], 3, 0.0, hot_lists=hot_lists)
        assert "global" in hot_lists  # fetched groups handed back
        # injected lists suppress the store fetch entirely
        injected = {"global": {"only": 1.0}}
        batch = engine.recommend_cf_batch(
            ["cold"], 3, 0.0, hot_lists=injected
        )
        assert [r.item_id for r in batch["cold"].results] == ["only"]
