"""Sanity tests for the four application scenario factories."""

import pytest

from repro.simulation import (
    ads_scenario,
    ecommerce_scenario,
    news_scenario,
    video_scenario,
)


@pytest.fixture(scope="module")
def scenarios():
    return {
        "news": news_scenario(seed=1, num_users=60, initial_items=40,
                              arrivals_per_day=48),
        "video": video_scenario(seed=1, num_users=60, initial_items=50),
        "ecommerce": ecommerce_scenario(seed=1, num_users=60,
                                        initial_items=60),
        "ads": ads_scenario(seed=1, num_users=60, num_ads=20),
    }


class TestScenarioShapes:
    def test_all_scenarios_build(self, scenarios):
        for name, scenario in scenarios.items():
            assert scenario.name == name
            assert len(scenario.population) == 60
            assert len(scenario.catalog) > 0

    def test_only_ecommerce_has_prices(self, scenarios):
        for item in scenarios["ecommerce"].catalog.all_items():
            assert item.meta.price is not None
        for name in ("news", "video", "ads"):
            for item in scenarios[name].catalog.all_items():
                assert item.meta.price is None

    def test_news_items_expire_within_a_day(self, scenarios):
        for item in scenarios["news"].catalog.all_items():
            assert item.meta.lifetime is not None
            assert item.meta.lifetime <= 86400.0

    def test_video_items_are_evergreen(self, scenarios):
        for item in scenarios["video"].catalog.all_items():
            assert item.meta.lifetime is None

    def test_ads_campaigns_are_short(self, scenarios):
        for item in scenarios["ads"].catalog.all_items():
            assert item.meta.lifetime == 3 * 86400.0

    def test_news_churns_fastest(self, scenarios):
        news_born = scenarios["news"].catalog.advance_to(86400.0)
        video_born = scenarios["video"].catalog.advance_to(86400.0)
        assert len(news_born) > len(video_born)

    def test_strong_actions_match_domains(self, scenarios):
        assert scenarios["ecommerce"].behavior.config.strong_action == (
            "purchase"
        )
        assert scenarios["news"].behavior.config.strong_action == "share"

    def test_scenarios_are_deterministic(self):
        a = news_scenario(seed=9, num_users=30, initial_items=20)
        b = news_scenario(seed=9, num_users=30, initial_items=20)
        user_a = a.population.users()[0]
        user_b = b.population.users()[0]
        assert (user_a.base_preferences == user_b.base_preferences).all()
        assert [i.item_id for i in a.catalog.all_items()] == [
            i.item_id for i in b.catalog.all_items()
        ]

    def test_different_seeds_differ(self):
        a = news_scenario(seed=9, num_users=30, initial_items=20)
        b = news_scenario(seed=10, num_users=30, initial_items=20)
        prefs_a = a.population.users()[0].base_preferences
        prefs_b = b.population.users()[0].base_preferences
        assert (prefs_a != prefs_b).any()

    def test_organic_sessions_run_for_every_scenario(self, scenarios):
        for name, scenario in scenarios.items():
            user = scenario.population.users()[0]
            actions = scenario.behavior.organic_session(user, 3600.0)
            assert actions, f"{name} produced no organic actions"
