"""Tests for the synthetic item catalog."""

import pytest

from repro.errors import SimulationError
from repro.simulation.catalog import CatalogConfig, ItemCatalog
from repro.utils.rng import SeedSequenceFactory


def make_catalog(**kwargs):
    defaults = dict(num_topics=6, initial_items=50)
    defaults.update(kwargs)
    return ItemCatalog(CatalogConfig(**defaults), SeedSequenceFactory(1))


class TestCatalogBasics:
    def test_initial_items_exist(self):
        catalog = make_catalog()
        assert len(catalog) == 50
        assert len(catalog.active_items(0.0)) == 50

    def test_items_have_topic_tags(self):
        catalog = make_catalog(tags_per_item=2)
        for item in catalog.all_items():
            assert f"topic-{item.topic}" in item.meta.tags
            assert item.meta.category == f"topic-{item.topic}"

    def test_topics_cover_range(self):
        catalog = make_catalog(initial_items=200)
        topics = {item.topic for item in catalog.all_items()}
        assert topics == set(range(6))

    def test_unknown_item_raises(self):
        with pytest.raises(SimulationError):
            make_catalog().get("ghost")

    def test_deterministic(self):
        a = make_catalog().all_items()
        b = make_catalog().all_items()
        assert [i.item_id for i in a] == [i.item_id for i in b]
        assert [i.topic for i in a] == [i.topic for i in b]

    def test_quality_in_unit_interval(self):
        for item in make_catalog().all_items():
            assert 0.0 < item.quality <= 1.0


class TestArrivalsAndLifetime:
    def test_arrivals_spawn_over_time(self):
        catalog = make_catalog(arrivals_per_day=24)
        born = catalog.advance_to(6 * 3600.0)  # a quarter day
        assert len(born) == 6
        assert len(catalog) == 56

    def test_no_arrivals_when_disabled(self):
        catalog = make_catalog(arrivals_per_day=0)
        assert catalog.advance_to(86400.0) == []

    def test_advance_is_incremental(self):
        catalog = make_catalog(arrivals_per_day=24)
        first = catalog.advance_to(3600.0)
        second = catalog.advance_to(7200.0)
        assert len(first) == 1
        assert len(second) == 1

    def test_items_expire(self):
        catalog = make_catalog(item_lifetime=3600.0)
        assert len(catalog.active_items(1800.0)) == 50
        assert len(catalog.active_items(4000.0)) == 0

    def test_new_items_outlive_old(self):
        catalog = make_catalog(item_lifetime=3600.0, arrivals_per_day=24)
        born = catalog.advance_to(5000.0)
        active = catalog.active_items(5000.0)
        assert all(item.meta.publish_time > 0 for item in active)
        assert len(active) == len([b for b in born if b.meta.is_active(5000.0)])


class TestPrices:
    def test_no_prices_by_default(self):
        for item in make_catalog().all_items():
            assert item.meta.price is None

    def test_prices_within_range(self):
        catalog = make_catalog(price_range=(10.0, 1000.0), initial_items=100)
        for item in catalog.all_items():
            assert 10.0 <= item.meta.price <= 1000.0

    def test_prices_cluster_by_topic(self):
        """Topic-price niches: within-topic price spread is much smaller
        than the catalog-wide spread (what makes the similar-price
        position topically meaningful)."""
        import numpy as np

        catalog = make_catalog(price_range=(5.0, 2000.0), initial_items=300)
        log_prices = {}
        for item in catalog.all_items():
            log_prices.setdefault(item.topic, []).append(np.log(item.meta.price))
        within = np.mean([np.std(v) for v in log_prices.values() if len(v) > 3])
        overall = np.std([p for v in log_prices.values() for p in v])
        assert within < overall * 0.7

    def test_config_validation(self):
        with pytest.raises(SimulationError):
            CatalogConfig(num_topics=0)
        with pytest.raises(SimulationError):
            CatalogConfig(initial_items=0)
