"""Tests for the behaviour model: drift, affinity, sessions, clicks."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.behavior import (
    BehaviorConfig,
    BehaviorModel,
    ClickConfig,
    ClickModel,
)
from repro.simulation.catalog import CatalogConfig, ItemCatalog
from repro.simulation.population import Population, PopulationConfig
from repro.types import Recommendation
from repro.utils.rng import SeedSequenceFactory


def make_world(behavior_config=None, catalog_config=None, seed=5):
    seeds = SeedSequenceFactory(seed)
    catalog = ItemCatalog(
        catalog_config or CatalogConfig(num_topics=6, initial_items=120),
        seeds,
    )
    population = Population(
        PopulationConfig(num_users=50, num_topics=6, anonymous_fraction=0.0),
        seeds,
    )
    behavior = BehaviorModel(
        population, catalog, behavior_config or BehaviorConfig(), seeds
    )
    return catalog, population, behavior, seeds


class TestDrift:
    def test_focus_is_stable_over_short_intervals(self):
        __, population, behavior, ___ = make_world(
            BehaviorConfig(drift_rate_per_hour=0.1)
        )
        user = population.users()[0]
        first = behavior.focus_of(user, 0.0)
        switches = sum(
            1
            for i in range(20)
            if behavior.focus_of(user, (i + 1) * 10.0) != first
        )
        assert switches <= 2  # 200 seconds at 0.1/h: switches are rare

    def test_focus_switches_over_long_intervals(self):
        __, population, behavior, ___ = make_world(
            BehaviorConfig(drift_rate_per_hour=0.5)
        )
        switch_count = 0
        for user in population.users():
            previous = behavior.focus_of(user, 0.0)
            current = behavior.focus_of(user, 48 * 3600.0)
            if current != previous:
                switch_count += 1
        # after 48h at 0.5/h nearly every user should have drifted
        assert switch_count > len(population.users()) * 0.5

    def test_focus_drawn_from_base_preferences(self):
        __, population, behavior, ___ = make_world()
        user = population.users()[0]
        draws = []
        for i in range(300):
            behavior._focus.pop(user.user_id, None)  # force re-draw
            draws.append(behavior.focus_of(user, 0.0))
        counts = np.bincount(draws, minlength=6) / len(draws)
        # the most preferred topic should be drawn most often
        assert np.argmax(counts) == np.argmax(user.base_preferences)


class TestAffinity:
    def test_bounded(self):
        catalog, population, behavior, __ = make_world()
        user = population.users()[0]
        behavior.focus_of(user, 0.0)
        for item in catalog.all_items():
            assert 0.0 <= behavior.affinity(user, item, 0.0) <= 1.0

    def test_focus_topic_scores_higher(self):
        catalog, population, behavior, __ = make_world(
            BehaviorConfig(focus_weight=0.8)
        )
        user = population.users()[0]
        focus = behavior.focus_of(user, 0.0)
        on_focus = [
            behavior.affinity(user, i, 0.0)
            for i in catalog.all_items()
            if i.topic == focus
        ]
        off_focus = [
            behavior.affinity(user, i, 0.0)
            for i in catalog.all_items()
            if i.topic != focus
        ]
        assert np.mean(on_focus) > 2 * np.mean(off_focus)

    def test_freshness_decays(self):
        catalog, population, behavior, __ = make_world(
            BehaviorConfig(freshness_tau=3600.0)
        )
        user = population.users()[0]
        behavior.focus_of(user, 0.0)
        item = catalog.all_items()[0]
        fresh = behavior.affinity(user, item, item.meta.publish_time)
        old = behavior.affinity(user, item, item.meta.publish_time + 7200.0)
        assert old < fresh


class TestOrganicSessions:
    def test_session_produces_valid_actions(self):
        catalog, population, behavior, __ = make_world()
        user = population.users()[0]
        actions = behavior.organic_session(user, 100.0)
        assert actions
        for action in actions:
            assert action.user_id == user.user_id
            assert action.action in ("browse", "click", "share")
            assert action.timestamp == 100.0
            catalog.get(action.item_id)  # item must exist

    def test_sessions_biased_to_focus_topic(self):
        catalog, population, behavior, __ = make_world(
            BehaviorConfig(focus_weight=0.9, items_per_session=2.0)
        )
        user = population.users()[0]
        focus = behavior.focus_of(user, 0.0)
        picks = []
        for i in range(60):
            behavior._focus[user.user_id].topic = focus  # pin the focus
            for action in behavior.organic_session(user, float(i)):
                if action.action == "browse":
                    picks.append(catalog.get(action.item_id).topic)
        match = sum(1 for topic in picks if topic == focus) / len(picks)
        assert match > 0.6

    def test_bursts_redirect_attention(self):
        catalog, population, behavior, __ = make_world()
        burst_item = catalog.all_items()[0].item_id
        behavior.add_burst(burst_item, start=0.0, end=1000.0, intensity=0.9)
        hits = 0
        total = 0
        for user in population.users():
            for action in behavior.organic_session(user, 500.0):
                if action.action == "browse":
                    total += 1
                    if action.item_id == burst_item:
                        hits += 1
        assert hits / total > 0.5

    def test_burst_outside_window_inactive(self):
        catalog, population, behavior, __ = make_world()
        burst_item = catalog.all_items()[0].item_id
        behavior.add_burst(burst_item, start=0.0, end=10.0, intensity=1.0)
        user = population.users()[0]
        actions = behavior.organic_session(user, 5000.0)
        # not everything redirected (burst expired)
        assert any(a.item_id != burst_item for a in actions)

    def test_invalid_burst_intensity(self):
        __, ___, behavior, ____ = make_world()
        with pytest.raises(SimulationError):
            behavior.add_burst("x", 0.0, 1.0, intensity=2.0)


class TestClickModel:
    def make_clicks(self, click_config=None):
        catalog, population, behavior, seeds = make_world()
        model = ClickModel(
            behavior, click_config or ClickConfig(), seeds
        )
        return catalog, population, behavior, model

    def recs_for(self, catalog, items):
        return [Recommendation(i, 1.0) for i in items]

    def test_impressions_counted(self):
        catalog, population, __, model = self.make_clicks()
        user = population.users()[0]
        item_ids = [i.item_id for i in catalog.all_items()[:5]]
        outcome = model.simulate(user, self.recs_for(catalog, item_ids), 0.0)
        assert outcome.impressions == 5

    def test_high_affinity_items_clicked_more(self):
        catalog, population, behavior, model = self.make_clicks(
            ClickConfig(base_click_probability=0.9)
        )
        clicks_on_focus, clicks_off_focus = 0, 0
        for user in population.users():
            focus = behavior.focus_of(user, 0.0)
            on = [i.item_id for i in catalog.all_items() if i.topic == focus][:3]
            off = [i.item_id for i in catalog.all_items() if i.topic != focus][:3]
            for __ in range(5):
                clicks_on_focus += len(
                    model.simulate(
                        user, self.recs_for(catalog, on), 0.0,
                        advance_focus=False,
                    ).clicks
                )
                clicks_off_focus += len(
                    model.simulate(
                        user, self.recs_for(catalog, off), 0.0,
                        advance_focus=False,
                    ).clicks
                )
        assert clicks_on_focus > clicks_off_focus

    def test_dead_items_never_clicked(self):
        catalog, population, behavior, __ = make_world(
            catalog_config=CatalogConfig(
                num_topics=6, initial_items=20, item_lifetime=10.0
            )
        )
        seeds = SeedSequenceFactory(9)
        model = ClickModel(behavior, ClickConfig(base_click_probability=1.0),
                           seeds)
        user = population.users()[0]
        item_ids = [i.item_id for i in catalog.all_items()[:5]]
        outcome = model.simulate(
            user, self.recs_for(catalog, item_ids), now=100.0
        )
        assert outcome.clicks == []
        assert outcome.impressions == 5

    def test_common_random_numbers_pair_identical_slates(self):
        catalog, population, __, model = self.make_clicks()
        user = population.users()[0]
        item_ids = [i.item_id for i in catalog.all_items()[:5]]
        uniforms = model.draw_uniforms(5)
        a = model.simulate(
            user, self.recs_for(catalog, item_ids), 0.0,
            uniforms=uniforms, advance_focus=False,
        )
        b = model.simulate(
            user, self.recs_for(catalog, item_ids), 0.0,
            uniforms=uniforms, advance_focus=False,
        )
        assert a.clicks == b.clicks

    def test_position_discount(self):
        """The same item clicked more at position 0 than at position 9."""
        catalog, population, behavior, model = self.make_clicks(
            ClickConfig(base_click_probability=0.8, position_discount=0.5)
        )
        user = population.users()[0]
        behavior.focus_of(user, 0.0)
        best = max(
            catalog.all_items(),
            key=lambda i: behavior.affinity(user, i, 0.0),
        )
        filler = [i.item_id for i in catalog.all_items()[:9]]
        front, back = 0, 0
        for __ in range(300):
            front += len(
                model.simulate(
                    user, self.recs_for(catalog, [best.item_id]), 0.0,
                    advance_focus=False,
                ).clicks
            )
            recs = self.recs_for(catalog, filler + [best.item_id])
            outcome = model.simulate(user, recs, 0.0, advance_focus=False)
            back += sum(1 for c in outcome.clicks if c == best.item_id)
        assert front > back
