"""Tests for the synthetic population."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.population import Population, PopulationConfig
from repro.utils.rng import SeedSequenceFactory


def make_population(**kwargs):
    defaults = dict(num_users=200, num_topics=8)
    defaults.update(kwargs)
    return Population(PopulationConfig(**defaults), SeedSequenceFactory(3))


class TestPopulation:
    def test_size(self):
        assert len(make_population()) == 200

    def test_preferences_are_distributions(self):
        for user in make_population().users():
            assert user.base_preferences.shape == (8,)
            assert user.base_preferences.sum() == pytest.approx(1.0)
            assert (user.base_preferences >= 0).all()

    def test_anonymous_fraction(self):
        population = make_population(num_users=1000, anonymous_fraction=0.2)
        anonymous = sum(
            1 for u in population.users() if u.profile.gender is None
        )
        assert 120 <= anonymous <= 280

    def test_profiles_have_demographics(self):
        population = make_population(anonymous_fraction=0.0)
        for user in population.users():
            assert user.profile.gender in ("male", "female")
            assert 14 <= user.profile.age < 70
            assert user.profile.region is not None

    def test_activity_mean_normalized(self):
        population = make_population(num_users=500)
        activities = [u.activity for u in population.users()]
        assert np.mean(activities) == pytest.approx(1.0)
        assert max(activities) > 2.0  # heavy-tailed

    def test_demographic_groups_share_tastes(self):
        """Users in one demographic group correlate more with their group
        mean than with the other groups' means — the premise of §4.2."""
        population = make_population(num_users=800, anonymous_fraction=0.0)
        groups: dict[int, list[np.ndarray]] = {}
        for user in population.users():
            index = Population._group_index(user.profile.gender, user.profile.age)
            groups.setdefault(index, []).append(user.base_preferences)
        means = {g: np.mean(v, axis=0) for g, v in groups.items() if len(v) > 20}
        own_sims, other_sims = [], []
        for g, members in groups.items():
            if g not in means:
                continue
            for preferences in members[:30]:
                for h, mean in means.items():
                    sim = float(
                        preferences @ mean
                        / (np.linalg.norm(preferences) * np.linalg.norm(mean))
                    )
                    (own_sims if h == g else other_sims).append(sim)
        assert np.mean(own_sims) > np.mean(other_sims)

    def test_profile_lookup(self):
        population = make_population()
        user = population.users()[0]
        assert population.profile(user.user_id) == user.profile
        assert population.profile("ghost") is None

    def test_unknown_user_raises(self):
        with pytest.raises(SimulationError):
            make_population().get("ghost")

    def test_deterministic(self):
        a = make_population().users()[0]
        b = make_population().users()[0]
        assert (a.base_preferences == b.base_preferences).all()
        assert a.profile == b.profile

    def test_config_validation(self):
        with pytest.raises(SimulationError):
            PopulationConfig(num_users=0)
        with pytest.raises(SimulationError):
            PopulationConfig(anonymous_fraction=1.5)
