"""Smoke tests: the fast example scripts must run end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "similarity(phone, headphones)" in out
        assert "recommendations for 'newcomer'" in out

    def test_situational_ctr(self):
        out = run_example("situational_ctr.py")
        assert "Beijing males 25-34" in out
        assert "predicted CTR" in out

    @pytest.mark.slow
    def test_ecommerce_positions(self):
        out = run_example("ecommerce_positions.py")
        assert "similar-purchase position" in out
        assert "similar-price position" in out

    @pytest.mark.slow
    def test_full_system_topology(self):
        out = run_example("full_system_topology.py")
        assert "state survived the crash" in out

    @pytest.mark.slow
    def test_offline_platform(self):
        out = run_example("offline_platform.py")
        assert "offline-model recommendations" in out
        assert "[critical] tdaccess" in out
