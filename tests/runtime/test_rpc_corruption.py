"""RpcClient vs corrupt reply frames: reconnect, retry, typed errors.

Regression for the framing-desync bug: the client used to surface
``FrameError`` raw — with the decoder still desynchronized — so one
damaged reply poisoned every later call on the connection. Now the
connection drops (resetting the decoder), idempotent ops transparently
retry on a fresh connection, and mutating ops surface a typed
:class:`FrameCorruptionError` for the journaled retry path above.
"""

import threading

import pytest

from repro.errors import RemoteOpError
from repro.runtime.rpc import RpcClient, RpcServer, dispatch_to_methods
from repro.runtime.wire import FrameCorruptionError


class Receiver:
    """Counts invocations so tests can see server-side applies."""

    def __init__(self):
        self.calls = {}

    def _count(self, method):
        self.calls[method] = self.calls.get(method, 0) + 1

    def echo(self, value):
        self._count("echo")
        return value

    def put(self, key, value):
        self._count("put")
        return "applied"


@pytest.fixture
def served():
    receiver = Receiver()
    server = RpcServer(dispatch_to_methods(lambda target: receiver))
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}
    )
    thread.start()
    client = RpcClient("127.0.0.1", server.port, timeout=5.0)
    try:
        yield server, client, receiver
    finally:
        client.close()
        server.stop()
        thread.join(timeout=5.0)


def arm_corruption(server, count, methods=("echo", "put")):
    armed = {"count": count}

    def hook(conn_id, request):
        if request.method in methods and armed["count"] > 0:
            armed["count"] -= 1
            return "corrupt_response"
        return None

    server.fault_hook = hook
    return armed


class TestIdempotentRetry:
    def test_corrupt_read_reply_is_transparently_retried(self, served):
        server, client, receiver = served
        assert client.call("echo", 41) == 41  # clean baseline
        arm_corruption(server, 1)
        assert client.call("echo", 42) == 42
        # the client detected the damage, reconnected, and re-asked
        assert client.frame_corruptions == 1
        assert receiver.calls["echo"] == 3
        assert server.faults_injected["corrupt_response"] == 1

    def test_connection_is_usable_after_recovery(self, served):
        server, client, receiver = served
        arm_corruption(server, 1)
        assert client.call("echo", 1) == 1
        server.fault_hook = None
        for value in range(5):
            assert client.call("echo", value) == value
        assert client.frame_corruptions == 1

    def test_persistent_corruption_surfaces_the_typed_error(self, served):
        server, client, receiver = served
        arm_corruption(server, 10)  # every attempt damaged
        with pytest.raises(FrameCorruptionError):
            client.call("echo", 7)
        # one transparent retry, then give up: two attempts, not ten
        assert client.frame_corruptions == 2
        assert receiver.calls["echo"] == 2


class TestMutatingOps:
    def test_corrupt_mutation_reply_is_not_resent_at_transport(self, served):
        server, client, receiver = served
        arm_corruption(server, 1)
        with pytest.raises(FrameCorruptionError):
            client.call("put", "k", "v")
        # the server applied the op exactly once: the transport must not
        # blind-resend a mutation whose first send may have applied
        assert receiver.calls["put"] == 1

    def test_corruption_error_is_a_remote_op_error(self, served):
        # the journaled retry machinery upstream (proxies._retrying)
        # catches RemoteOpError; the typed corruption error must be one
        assert issubclass(FrameCorruptionError, RemoteOpError)

    def test_client_reconnects_for_the_next_call(self, served):
        server, client, receiver = served
        arm_corruption(server, 1)
        with pytest.raises(FrameCorruptionError):
            client.call("put", "k", "v")
        assert not client.connected
        assert client.call("put", "k2", "v2") == "applied"
        assert receiver.calls["put"] == 2
