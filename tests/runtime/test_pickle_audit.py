"""Picklability audit: everything the process substrate ships must
survive the ``spawn`` start method's pickler.

``spawn`` children share no memory, so worker configs, topology
recipes, RPC payloads (tuples, ops, snapshots), checkpoint manifests
and control-flow exceptions all cross process boundaries as pickles.
A type that quietly loses a field here corrupts state across the
boundary, so each round-trip asserts semantic equality, not just
"it unpickled".
"""

import io
import pickle

from multiprocessing.reduction import ForkingPickler

from repro.errors import (
    DeadlineExceededError,
    MigrationInProgressError,
    OffsetOutOfRangeError,
    StaleRouteError,
    VersionConflictError,
)
from repro.recovery.manifest import CheckpointManifest
from repro.runtime.proxies import ProcessTDStore
from repro.runtime.wire import Request, Response
from repro.storm.tuples import StormTuple
from repro.tdstore.cluster import TDStoreCluster
from repro.tdstore.data_server import SyncRecord
from repro.types import UserAction


def spawn_round_trip(obj):
    """Round-trip through the exact pickler ``spawn`` children use."""
    buffer = io.BytesIO()
    ForkingPickler(buffer, pickle.HIGHEST_PROTOCOL).dump(obj)
    return pickle.loads(buffer.getvalue())


class TestDataPlaneTypes:
    def test_storm_tuple(self):
        tup = StormTuple(
            values=("u1", "i9", 2.5),
            fields=("user", "item", "weight"),
            stream_id="weights",
            source_component="pretreatment",
            source_task=1,
            root_ids=frozenset({17}),
            op_id="pretreatment:1:42",
        )
        back = spawn_round_trip(tup)
        assert back.values == tup.values
        assert back.fields == tup.fields
        assert back.stream_id == tup.stream_id
        assert back.source_component == tup.source_component
        assert back.source_task == tup.source_task
        assert back.root_ids == tup.root_ids
        assert back.op_id == tup.op_id

    def test_user_action(self):
        action = UserAction("u1", "i2", "click", 12.5)
        back = spawn_round_trip(action)
        assert back == action

    def test_sync_record(self):
        record = SyncRecord("put", "item_count:i4", {"count": 3})
        back = spawn_round_trip(record)
        assert (back.op, back.key, back.value) == (
            record.op,
            record.key,
            record.value,
        )


class TestRouteTable:
    def test_route_table_survives_with_version_and_routes(self):
        cluster = TDStoreCluster(3, 8)
        cluster.crash_data_server(1)  # force a failover: version > 0
        table = cluster.config.route_table()
        back = spawn_round_trip(table)
        assert back.version == table.version
        assert back.num_instances == table.num_instances
        for instance in range(table.num_instances):
            want = table.route(instance)
            got = back.route(instance)
            assert (got.host, got.slave) == (want.host, want.slave)


class TestCheckpointManifest:
    def test_manifest_fields_survive(self):
        manifest = CheckpointManifest(
            checkpoint_id=3,
            topology="cf-stream",
            clock_time=1440.0,
            next_tick=1680.0,
            barrier_round=6,
            offsets={"source": {0: 12, 1: 9}},
            bolt_states={("itemCount", 1): {"exactly_once": {"seen": [1]}}},
            tdstore_contents={0: {"k": 1}},
            route_epoch=2,
            migrations_in_flight=(),
        )
        back = spawn_round_trip(manifest)
        for name in (
            "checkpoint_id",
            "topology",
            "clock_time",
            "next_tick",
            "barrier_round",
            "offsets",
            "bolt_states",
            "tdstore_contents",
            "route_epoch",
        ):
            assert getattr(back, name) == getattr(manifest, name), name


class TestControlFlowErrors:
    """Errors with constructor-arg state need ``__reduce__``: the default
    exception pickling re-calls ``cls(*args)`` with only the message."""

    def test_each_error_round_trips_as_itself(self):
        errors = [
            StaleRouteError("instance 5 moved"),
            MigrationInProgressError("instance 5 mid-cutover", 5),
            VersionConflictError("version moved on", 9),
            DeadlineExceededError("over budget", 1.5, 1.0),
            OffsetOutOfRangeError("offset 3 truncated", 40),
        ]
        for exc in errors:
            back = spawn_round_trip(exc)
            assert type(back) is type(exc)
            assert str(back) == str(exc)

    def test_attribute_state_is_preserved(self):
        back = spawn_round_trip(MigrationInProgressError("mid-cutover", 5))
        assert back.instance == 5
        back = spawn_round_trip(VersionConflictError("conflict", 9))
        assert back.current == 9
        back = spawn_round_trip(DeadlineExceededError("late", 1.5, 1.0))
        assert (back.elapsed, back.budget) == (1.5, 1.0)
        back = spawn_round_trip(OffsetOutOfRangeError("truncated", 40))
        assert back.earliest == 40


class TestRuntimeEnvelopes:
    def test_request_and_response(self):
        request = Request("record_once", (2, "op:1", "k", 1), ("data", 4))
        back = spawn_round_trip(request)
        assert back == request
        response = Response(value={"a": 1}, meta={"batch": 3})
        back = spawn_round_trip(response)
        assert back.value == response.value
        assert back.meta == response.meta

    def test_process_tdstore_facade_reships_as_addresses(self):
        # workers receive the facade as plain addresses; connections are
        # per-process and must not leak through the pickle
        facade = ProcessTDStore(
            [("127.0.0.1", 1234), ("127.0.0.1", 1235)], {0: 0, 1: 1, 2: 0}
        )
        back = spawn_round_trip(facade)
        assert back._addresses == facade._addresses
        assert back._placement == facade._placement
        assert back._rpcs == {}

    def test_facade_recovery_hook_does_not_leak_through_pickle(self):
        # the parent-side recovery hook closes over the supervisor; a
        # worker-side copy must come back without it (and without the
        # real-delay bookkeeping), falling back to plain retry backoff
        facade = ProcessTDStore([("127.0.0.1", 1234)], {0: 0})
        facade.set_recovery_hook(lambda host_index: None)
        facade._real_delays.add(0)
        back = spawn_round_trip(facade)
        assert back._recover_host is None
        assert back._real_delays == set()


class TestChaosTypes:
    """The chaos layer's faults, schedules and reports cross the spawn
    boundary (plans ship to CI smoke runs; reports come back)."""

    def test_every_process_native_fault_kind(self):
        from repro.recovery.faults import Fault

        faults = [
            Fault(3, "host_sigkill", (1,)),
            Fault(3, "worker_sigkill", (0, 3, 8)),
            Fault(2, "conn_reset", (0, 2)),
            Fault(2, "frame_drop", (1, 1)),
            Fault(2, "frame_delay", (0, 2, 0.05)),
            Fault(2, "one_way_partition", (1, "inbound", 1)),
            Fault(4, "torn_write", (0,)),
            Fault(4, "disk_full", (1,)),
            Fault(4, "fsync_error", (0,)),
            Fault(4, "bit_flip", (1,)),
            Fault(4, "wal_corrupt", (0,)),
            Fault(5, "frame_corrupt", (1, 2)),
        ]
        for fault in faults:
            back = spawn_round_trip(fault)
            assert (back.round, back.kind, back.target) == (
                fault.round, fault.kind, fault.target,
            ), fault.kind

    def test_seeded_process_plan_round_trips(self):
        from repro.runtime.chaos import seeded_process_plan

        plan = seeded_process_plan(
            2015, horizon=10, hosts=2, workers=2,
            disk_faults=("fsync_error",),
            latency_spikes=1, tdstore_servers=[0, 1, 2],
        )
        back = spawn_round_trip(plan)
        assert [(f.round, f.kind, f.target) for f in back] == [
            (f.round, f.kind, f.target) for f in plan
        ]

    def test_mttr_sample_and_chaos_report(self):
        from repro.runtime.chaos import ChaosReport, MttrSample

        sample = spawn_round_trip(MttrSample("host_sigkill", 1, 0.042))
        assert (sample.kind, sample.target, sample.seconds) == (
            "host_sigkill", 1, 0.042,
        )
        report = ChaosReport(
            kills={"host_sigkill": 2, "worker_sigkill": 1},
            network_faults={"conn_reset": 1},
            disk_faults={"fsync_error": 1},
            mttr_count=3,
            mttr_p50=0.04,
            mttr_p99=0.09,
            mttr_max=0.09,
            serve_attempts=60,
            serve_answered=60,
            fingerprint_match=True,
            rounds=12,
        )
        back = spawn_round_trip(report)
        assert back == report
        assert back.serve_rate == 1.0
        assert back.to_dict() == report.to_dict()

    def test_midflight_trigger_and_rekeyed_plan(self):
        from repro.recovery.faults import Fault
        from repro.runtime.chaos import MidFlightTrigger, rekey_plan_midflight

        trigger = spawn_round_trip(MidFlightTrigger("wal_records", 40))
        assert (trigger.counter, trigger.at) == ("wal_records", 40)
        plan = [Fault(2, "host_sigkill", (1,)), Fault(5, "fsync_error", (0,))]
        entries = rekey_plan_midflight(plan, 25, seed=7)
        back = spawn_round_trip(entries)
        assert [(t, f.kind, f.target) for t, f in back] == [
            (t, f.kind, f.target) for t, f in entries
        ]


class TestRetrievalTypes:
    """Retrieval rows, ops and answers ride worker RPC payloads and
    checkpoint state; ``ColdIndexError`` crosses the serving boundary
    with its degradation ``reason`` attached."""

    def test_embedding_row_round_trips_exactly(self):
        from repro.retrieval.embedding import EmbeddingConfig, EmbeddingRow

        row = EmbeddingRow.from_value("i3", None, EmbeddingConfig(dim=8))
        back = spawn_round_trip(row)
        assert back == row
        assert back.array().tobytes() == row.array().tobytes()

    def test_centroid_snapshot_and_vq_op(self):
        from repro.retrieval.types import CentroidSnapshot, VQOp

        snap = CentroidSnapshot(
            "g0~1289721c", (0.1, -0.2, 0.3), 4.0, ("i1", "i2")
        )
        assert spawn_round_trip(snap) == snap
        op = VQOp(
            "i1", "op:7", "g0~1289721c",
            previous="g1", split_from="g0",
            merged="g1", merged_into="g0", moved_items=("i2",),
        )
        assert spawn_round_trip(op) == op

    def test_retrieval_answer(self):
        from repro.retrieval.types import RetrievalAnswer

        answer = RetrievalAnswer(
            items=("i1", "i2"), scores=(0.9, 0.4),
            probed_centroids=("g0", "g1"), candidates_seen=7,
        )
        assert spawn_round_trip(answer) == answer

    def test_cold_index_error_keeps_its_reason(self):
        from repro.errors import ColdIndexError, RetrievalError

        back = spawn_round_trip(ColdIndexError("no rows", reason="no_recent"))
        assert type(back) is ColdIndexError
        assert str(back) == "no rows"
        assert back.reason == "no_recent"
        back = spawn_round_trip(RetrievalError("index unavailable"))
        assert type(back) is RetrievalError

    def test_retrieval_configs_ship_to_workers(self):
        # topology recipes close over these configs; spawn workers
        # rebuild the bolts from the pickled recipe
        from repro.retrieval import RetrievalConfig, RetrieverConfig

        cfg = RetrievalConfig()
        back = spawn_round_trip(cfg)
        assert back.embedding == cfg.embedding
        assert back.vq == cfg.vq
        assert (back.co_window, back.co_k) == (cfg.co_window, cfg.co_k)
        assert spawn_round_trip(RetrieverConfig()) == RetrieverConfig()


class TestIntegrityTypes:
    """Corruption errors cross the RPC boundary (server -> client) and
    the spawn boundary (host process -> supervising parent); scrub
    reports come back from host 0's control plane."""

    def test_frame_corruption_error_keeps_checksums(self):
        from repro.runtime.wire import FrameCorruptionError

        back = spawn_round_trip(
            FrameCorruptionError("payload crc mismatch", 0xCAFE, 0xBEEF)
        )
        assert type(back) is FrameCorruptionError
        assert str(back) == "payload crc mismatch"
        assert (back.expected, back.actual) == (0xCAFE, 0xBEEF)

    def test_wal_error_keeps_corrupt_record_count(self):
        from repro.runtime.wal import WalError

        back = spawn_round_trip(WalError("wal corrupt mid-log", 3))
        assert type(back) is WalError
        assert str(back) == "wal corrupt mid-log"
        assert back.corrupt_records == 3

    def test_scrub_report_round_trips(self):
        from repro.tdstore.scrub import ScrubReport

        report = ScrubReport(
            instances_scanned=16,
            skipped_migrating=1,
            skipped_down=1,
            buckets_compared=224,
            divergent_buckets=2,
            keys_repaired=3,
            keys_deleted=1,
            corruptions_detected=2,
            divergent_instances=[4, 9],
        )
        back = spawn_round_trip(report)
        assert back == report
        assert back.clean is False
        assert back.to_dict() == report.to_dict()
