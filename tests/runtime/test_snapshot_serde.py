"""Explicit serde for monitoring state: SystemSnapshot and metrics.

Snapshots cross process boundaries (worker metrics shipping) and may be
persisted; both need a schema-versioned dict form that survives JSON
(string keys only) without silently dropping or mangling fields.
"""

import json

import pytest

from repro.monitoring import SNAPSHOT_SCHEMA_VERSION, SystemSnapshot
from repro.storm.metrics import (
    METRICS_SCHEMA_VERSION,
    ClusterMetrics,
    TaskMetrics,
)


def populated_snapshot() -> SystemSnapshot:
    return SystemSnapshot(
        timestamp=1234.5,
        tdaccess_servers_up=3,
        tdaccess_servers_total=3,
        consumer_lag={"source": 12},
        tdstore_servers_up=4,
        tdstore_servers_total=4,
        tdstore_reads={0: 10, 1: 20},
        tdstore_writes={0: 7, 1: 3},
        replication_backlog=2,
        topology_executed={"cf-stream": 215},
        topology_restarts={"cf-stream": 1},
        ledger_entries={"itemCount[0]": 8},
        dedup_hits={"itemCount[0]": 2},
        watermark_rejections={"itemCount[0]": 0},
        acker_anomalies={"cf-stream": 0},
        degraded_tdstore_servers=[2],
        breaker_states={"tdstore": "closed"},
        route_epoch=3,
        supervisor_kills=1,
        supervisor_respawns=2,
        heartbeat_miss_streaks={"tdstore-host-1": 2},
        scrub_passes=2,
        scrub_instances_scanned=16,
        scrub_divergent_buckets=1,
        scrub_keys_repaired=1,
        scrub_corruptions_detected=1,
        vq_centroids=5,
        vq_indexed_items=12,
        vq_reassignments=11,
        vq_splits=4,
        vq_merges=2,
        vq_posting_p99=3,
        retrieval_cold_fallbacks=1,
    )


class TestSystemSnapshotSerde:
    def test_round_trip_is_lossless(self):
        snap = populated_snapshot()
        assert SystemSnapshot.from_dict(snap.to_dict()) == snap

    def test_round_trip_through_json(self):
        # JSON stringifies int keys; serde must restore them as ints
        snap = populated_snapshot()
        back = SystemSnapshot.from_dict(json.loads(json.dumps(snap.to_dict())))
        assert back == snap
        assert back.tdstore_reads == {0: 10, 1: 20}
        assert all(isinstance(k, int) for k in back.tdstore_writes)

    def test_schema_version_is_embedded(self):
        data = populated_snapshot().to_dict()
        assert data["schema_version"] == SNAPSHOT_SCHEMA_VERSION

    def test_other_schema_version_is_refused(self):
        data = populated_snapshot().to_dict()
        data["schema_version"] = SNAPSHOT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            SystemSnapshot.from_dict(data)
        with pytest.raises(ValueError, match="schema version"):
            SystemSnapshot.from_dict({"timestamp": 0.0})

    def test_unknown_field_is_refused(self):
        # a field added without a version bump must not silently vanish
        data = populated_snapshot().to_dict()
        data["surprise_counter"] = 7
        with pytest.raises(ValueError, match="surprise_counter"):
            SystemSnapshot.from_dict(data)

    def test_derived_metrics_survive(self):
        back = SystemSnapshot.from_dict(populated_snapshot().to_dict())
        assert back.total_dedup_hits() == 2
        assert back.read_imbalance() == pytest.approx(20 / 15)


class TestClusterMetricsSerde:
    def make_metrics(self) -> ClusterMetrics:
        metrics = ClusterMetrics(
            tuples_transferred=40,
            trees_completed=12,
            trees_failed=1,
            task_restarts=2,
        )
        metrics.task("itemCount", 0).executed = 30
        metrics.task("itemCount", 1).emitted = 9
        metrics.task("simList", 0).acked = 5
        return metrics

    def test_round_trip_through_json(self):
        metrics = self.make_metrics()
        back = ClusterMetrics.from_dict(
            json.loads(json.dumps(metrics.to_dict()))
        )
        assert dict(back.tasks) == dict(metrics.tasks)
        assert back.tuples_transferred == 40
        assert back.trees_completed == 12
        assert back.trees_failed == 1
        assert back.task_restarts == 2
        assert back.total_executed() == metrics.total_executed()

    def test_task_keys_flatten_to_bracket_form(self):
        data = self.make_metrics().to_dict()
        assert data["schema_version"] == METRICS_SCHEMA_VERSION
        assert set(data["tasks"]) == {
            "itemCount[0]",
            "itemCount[1]",
            "simList[0]",
        }

    def test_component_names_containing_brackets_round_trip(self):
        metrics = ClusterMetrics()
        metrics.tasks[("odd[name]", 2)] = TaskMetrics(executed=1)
        back = ClusterMetrics.from_dict(metrics.to_dict())
        assert back.tasks[("odd[name]", 2)].executed == 1

    def test_other_schema_version_is_refused(self):
        data = self.make_metrics().to_dict()
        data["schema_version"] = 99
        with pytest.raises(ValueError, match="schema version"):
            ClusterMetrics.from_dict(data)
