"""Unit coverage for the chaos layer's pure parts, plus substrate
lifecycle regressions that ride this PR (WAL temp-dir leak, hang
deadline plumbing)."""

import os

import pytest

from repro.errors import FaultPlanError
from repro.recovery.faults import Fault
from repro.runtime import ProcessSubstrate
from repro.runtime.chaos import (
    lost_keys,
    percentile,
    seeded_process_plan,
)


class TestFaultValidation:
    def test_valid_process_native_targets(self):
        Fault(1, "host_sigkill", (0,))
        Fault(1, "worker_sigkill", (1, 3, 8))
        Fault(1, "conn_reset", (0, 2))
        Fault(1, "frame_drop", (1, 1))
        Fault(1, "frame_delay", (0, 2, 0.05))
        Fault(1, "one_way_partition", (0, "inbound", 1))
        Fault(1, "torn_write", (0,))
        Fault(1, "disk_full", (0,))
        Fault(1, "fsync_error", (0,))

    @pytest.mark.parametrize(
        "kind, target",
        [
            ("host_sigkill", ()),
            ("host_sigkill", (-1,)),
            ("host_sigkill", ("0",)),
            ("worker_sigkill", (0, 0, 8)),
            ("worker_sigkill", (0, 3)),
            ("conn_reset", (0, 0)),
            ("frame_drop", (0,)),
            ("frame_delay", (0, 1, 0.0)),
            ("one_way_partition", (0, "sideways", 1)),
            ("one_way_partition", (0, "inbound", 0)),
            ("fsync_error", (0, 1)),
        ],
    )
    def test_malformed_targets_are_refused(self, kind, target):
        with pytest.raises(FaultPlanError):
            Fault(1, kind, target)


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 50) is None

    def test_single_sample(self):
        assert percentile([0.3], 50) == 0.3
        assert percentile([0.3], 99) == 0.3

    def test_nearest_rank(self):
        values = [0.1, 0.2, 0.3, 0.4, 0.5]
        assert percentile(values, 0) == 0.1
        assert percentile(values, 50) == 0.3
        assert percentile(values, 100) == 0.5
        assert percentile(values, 99) == 0.5

    def test_unsorted_input(self):
        assert percentile([0.5, 0.1, 0.3], 50) == 0.3


class TestLostKeys:
    def test_identical_states_lose_nothing(self):
        state = {"item_counts": {"i0": 2.0}, "sim_lists": {"i0": [1]}}
        assert lost_keys(state, state) == 0

    def test_missing_keys_are_counted_per_section(self):
        reference = {
            "item_counts": {"i0": 2.0, "i1": 1.0},
            "pair_counts": {("i0", "i1"): 1.0},
        }
        observed = {"item_counts": {"i0": 2.0}, "pair_counts": {}}
        assert lost_keys(reference, observed) == 2

    def test_missing_section_counts_all_its_keys(self):
        reference = {"sim_lists": {"i0": [1], "i1": [2]}}
        assert lost_keys(reference, {}) == 2


class TestSeededProcessPlan:
    def test_deterministic_for_a_seed(self):
        kwargs = dict(
            horizon=10, hosts=2, workers=3,
            disk_faults=("torn_write", "fsync_error"),
            latency_spikes=1, tdstore_servers=[0, 1, 2],
        )
        a = seeded_process_plan(42, **kwargs)
        b = seeded_process_plan(42, **kwargs)
        assert [(f.round, f.kind, f.target) for f in a] == [
            (f.round, f.kind, f.target) for f in b
        ]
        c = seeded_process_plan(43, **kwargs)
        assert [(f.round, f.kind, f.target) for f in a] != [
            (f.round, f.kind, f.target) for f in c
        ]

    def test_plan_is_sorted_and_targets_are_in_range(self):
        plan = seeded_process_plan(
            7, horizon=12, hosts=3, workers=2,
            host_kills=2, worker_kills=2, partitions=2,
        )
        rounds = [f.round for f in plan]
        assert rounds == sorted(rounds)
        for fault in plan:
            if fault.kind == "host_sigkill":
                assert 0 <= fault.target[0] < 3
                assert fault.round >= 2  # state must exist to replay
            if fault.kind == "worker_sigkill":
                assert 0 <= fault.target[0] < 2

    def test_short_horizon_is_refused(self):
        with pytest.raises(FaultPlanError):
            seeded_process_plan(1, horizon=3, hosts=1, workers=1)

    def test_unknown_disk_fault_is_refused(self):
        with pytest.raises(FaultPlanError):
            seeded_process_plan(
                1, horizon=8, hosts=1, workers=1, disk_faults=("bit_rot",)
            )


class TestSubstrateLifecycleRegressions:
    def test_teardown_removes_owned_wal_tempdir(self):
        # regression: the mkdtemp'd WAL dir used to outlive teardown
        substrate = ProcessSubstrate(worker_procs=1, server_procs=1)
        try:
            substrate.build_tdstore(2, 8)
            wal_dir = substrate._wal_dir
            assert wal_dir is not None and os.path.isdir(wal_dir)
            assert os.listdir(wal_dir)  # WALs were really written there
        finally:
            substrate.teardown()
        assert not os.path.exists(wal_dir)
        assert substrate._wal_dir is None

    def test_teardown_preserves_user_supplied_wal_dir(self, tmp_path):
        wal_dir = str(tmp_path / "wal")
        substrate = ProcessSubstrate(
            worker_procs=1, server_procs=1, wal_dir=wal_dir
        )
        try:
            substrate.build_tdstore(2, 8)
        finally:
            substrate.teardown()
        assert os.path.isdir(wal_dir)
        assert os.listdir(wal_dir)

    def test_teardown_is_idempotent_about_the_wal_dir(self):
        substrate = ProcessSubstrate(worker_procs=1, server_procs=1)
        substrate.build_tdstore(2, 8)
        substrate.teardown()
        substrate.teardown()  # second teardown must not blow up

    def test_hang_deadline_reaches_the_supervisor(self):
        substrate = ProcessSubstrate(
            worker_procs=1, server_procs=1, hang_deadline=5.0
        )
        try:
            assert substrate.supervisor.hang_deadline == 5.0
        finally:
            substrate.teardown()

    def test_sim_substrate_has_no_chaos_runtime(self):
        from repro.runtime import SimSubstrate

        assert SimSubstrate().chaos_runtime() is None

    def test_process_substrate_chaos_runtime_is_cached(self):
        substrate = ProcessSubstrate(worker_procs=1, server_procs=1)
        try:
            runtime = substrate.chaos_runtime()
            assert runtime is substrate.chaos_runtime()
        finally:
            substrate.teardown()
