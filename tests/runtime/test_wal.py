"""Group-commit WAL: append/commit accounting, replay, torn tails."""

import os
import time

import pytest

from repro.runtime.wal import (
    DISK_FAULT_KINDS,
    DiskFaultShim,
    GroupCommitWal,
    WalError,
    replay,
)
from repro.runtime.wire import encode_frame


class TestGroupCommitWal:
    def test_records_share_one_commit(self, tmp_path):
        path = str(tmp_path / "host.wal")
        with GroupCommitWal(path) as wal:
            for index in range(5):
                wal.append((0, "put", (1, f"k{index}", index)))
            assert wal.commit() == 5
            assert wal.commit() == 0  # clean log: no fsync issued
        stats_records = list(replay(path))
        assert len(stats_records) == 5
        assert stats_records[2] == (0, "put", (1, "k2", 2))

    def test_stats_track_group_sizes(self, tmp_path):
        wal = GroupCommitWal(str(tmp_path / "host.wal"))
        wal.append("a")
        wal.commit()
        wal.append("b")
        wal.append("c")
        wal.append("d")
        wal.commit()
        stats = wal.stats()
        wal.close()
        assert stats["records"] == 4
        assert stats["commits"] == 2
        assert stats["avg_records_per_commit"] == 2.0

    def test_closed_wal_refuses_appends(self, tmp_path):
        wal = GroupCommitWal(str(tmp_path / "host.wal"))
        wal.close()
        with pytest.raises(WalError):
            wal.append("x")
        with pytest.raises(WalError):
            wal.commit()

    def test_replay_with_apply_returns_count(self, tmp_path):
        path = str(tmp_path / "host.wal")
        with GroupCommitWal(path) as wal:
            wal.append(1)
            wal.append(2)
        seen = []
        assert replay(path, seen.append) == 2
        assert seen == [1, 2]

    def test_torn_tail_is_dropped(self, tmp_path):
        # a crash mid-append leaves a partial frame; it was never acked,
        # so replay must drop it rather than error or mis-decode
        path = str(tmp_path / "host.wal")
        with GroupCommitWal(path) as wal:
            wal.append("whole")
            wal.append("torn")
        with open(path, "rb") as fh:
            intact = fh.read()
        with open(path, "wb") as fh:
            fh.write(intact[:-3])
        assert list(replay(path)) == ["whole"]

    def test_commit_floor_bounds_barrier_latency(self, tmp_path):
        # the modeled barrier makes every non-empty commit take at least
        # the floor — and exactly one floor regardless of group size,
        # which is what makes group-commit amortization measurable on
        # hosts whose fsync is absorbed by a page cache
        wal = GroupCommitWal(
            str(tmp_path / "host.wal"), commit_floor=0.02
        )
        for index in range(10):
            wal.append(index)
        start = time.monotonic()
        assert wal.commit() == 10
        elapsed = time.monotonic() - start
        wal.close()
        assert 0.02 <= elapsed < 0.2
        assert wal.stats()["commit_floor"] == 0.02

    def test_empty_commit_skips_the_floor(self, tmp_path):
        wal = GroupCommitWal(
            str(tmp_path / "host.wal"), commit_floor=0.5
        )
        start = time.monotonic()
        assert wal.commit() == 0
        assert time.monotonic() - start < 0.25
        wal.close()

    def test_missing_file_replays_empty(self, tmp_path):
        assert list(replay(str(tmp_path / "never-written.wal"))) == []
        assert replay(str(tmp_path / "never-written.wal"), lambda r: None) == 0

    def test_append_reopens_after_restart(self, tmp_path):
        # a restarted host reopens the same log and appends after the
        # replayed prefix
        path = str(tmp_path / "host.wal")
        with GroupCommitWal(path) as wal:
            wal.append("before-crash")
        with GroupCommitWal(path) as wal:
            wal.append("after-restart")
        assert list(replay(path)) == ["before-crash", "after-restart"]


class TestTornTailProperty:
    def test_every_truncation_point_recovers_the_committed_prefix(
        self, tmp_path
    ):
        # the torn-tail property, exhaustively: truncate the final
        # record at *every* byte offset — from "nothing of it written"
        # to "one byte short of complete" — and replay must recover
        # exactly the committed prefix, never erroring, never decoding
        # a phantom record
        path = str(tmp_path / "host.wal")
        committed = [(0, "put", (1, f"k{i}", i)) for i in range(4)]
        final = (0, "put", (1, "torn-victim", "x" * 37))
        with GroupCommitWal(path) as wal:
            for record in committed:
                wal.append(record)
            wal.commit()
            wal.append(final)
        with open(path, "rb") as fh:
            full = fh.read()
        prefix_len = len(full) - len(encode_frame(final))
        assert prefix_len > 0
        for cut in range(prefix_len, len(full)):
            with open(path, "wb") as fh:
                fh.write(full[:cut])
            got = list(replay(path))
            assert got == committed, f"cut at byte {cut} diverged"
        # sanity: the untruncated log replays the final record too
        with open(path, "wb") as fh:
            fh.write(full)
        assert list(replay(path)) == committed + [final]


class TestDiskFaultShim:
    def test_unarmed_shim_is_a_passthrough(self, tmp_path):
        path = str(tmp_path / "host.wal")
        with GroupCommitWal(path, io=DiskFaultShim()) as wal:
            wal.append("a")
            assert wal.commit() == 1
        assert list(replay(path)) == ["a"]

    def test_unknown_kind_is_refused(self):
        with pytest.raises(WalError):
            DiskFaultShim().arm("bit_rot")

    def test_disk_full_fails_before_writing(self, tmp_path):
        path = str(tmp_path / "host.wal")
        wal = GroupCommitWal(path)
        wal.append("survives")
        wal.commit()
        wal.io.arm("disk_full")
        with pytest.raises(WalError, match="disk full"):
            wal.append("lost")
        os.close(wal._fd)  # fail-stop: no graceful close
        assert list(replay(path)) == ["survives"]
        assert wal.io.fired == {"disk_full": 1}

    def test_torn_write_leaves_a_replayable_torn_tail(self, tmp_path):
        path = str(tmp_path / "host.wal")
        wal = GroupCommitWal(path)
        wal.append("committed")
        wal.commit()
        wal.io.arm("torn_write")
        with pytest.raises(WalError, match="torn write"):
            wal.append("half-written")
        os.close(wal._fd)
        # the half-written frame is on disk, and replay drops it
        assert os.path.getsize(path) > len(encode_frame("committed"))
        assert list(replay(path)) == ["committed"]

    def test_fsync_error_fails_the_commit_barrier(self, tmp_path):
        path = str(tmp_path / "host.wal")
        wal = GroupCommitWal(path)
        wal.append("staged")
        wal.io.arm("fsync_error")
        with pytest.raises(WalError, match="fsync"):
            wal.commit()
        os.close(wal._fd)
        # the record reached the page cache: replay sees it, and the
        # un-acked-but-durable ambiguity is allowed (op-journal dedup
        # absorbs a re-applied record)
        assert list(replay(path)) == ["staged"]

    def test_faults_are_one_shot(self, tmp_path):
        path = str(tmp_path / "host.wal")
        wal = GroupCommitWal(path)
        wal.io.arm("fsync_error")
        wal.append("x")
        with pytest.raises(WalError):
            wal.commit()
        # disarmed after firing: the retry (fresh host in practice)
        # commits cleanly
        wal.append("y")
        assert wal.commit() >= 1
        wal.close()
        assert wal.io.armed() == []

    def test_kinds_match_the_fault_vocabulary(self):
        from repro.recovery.faults import WAL_FAULT_KINDS

        assert WAL_FAULT_KINDS == DISK_FAULT_KINDS

    def test_bit_flip_is_silent_until_replay(self, tmp_path):
        # the poisoned append *succeeds* — the caller acks — and only
        # the replay-time CRC can tell the record is damaged
        path = str(tmp_path / "host.wal")
        wal = GroupCommitWal(path)
        wal.append("clean")
        wal.io.arm("bit_flip")
        wal.append("silently-damaged")  # no exception: that's the point
        wal.append("after")
        assert wal.commit() == 3
        wal.close()
        assert wal.io.fired == {"bit_flip": 1}
        with pytest.raises(WalError) as info:
            list(replay(path))
        assert info.value.corrupt_records == 1

    def test_wal_corrupt_clobbers_a_byte_run(self, tmp_path):
        path = str(tmp_path / "host.wal")
        wal = GroupCommitWal(path)
        wal.io.arm("wal_corrupt")
        wal.append("garbled-sector-victim" * 4)
        wal.commit()
        wal.close()
        assert wal.io.fired == {"wal_corrupt": 1}
        with pytest.raises(WalError):
            list(replay(path))


class TestMidLogCorruption:
    """Regression: a flipped byte *inside* the log body (not the tail)
    must be rejected with WalError, never replayed as state."""

    def _write_log(self, path, records):
        with GroupCommitWal(path) as wal:
            for record in records:
                wal.append(record)
            wal.commit()

    def _flip_byte_of_record(self, path, records, index):
        # flip one bit in the middle of record ``index``'s body
        frames = [encode_frame(r) for r in records]
        offset = sum(len(f) for f in frames[:index])
        offset += len(frames[index]) // 2
        with open(path, "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([byte[0] ^ 0x01]))

    def test_fresh_start_replay_rejects_mid_log_flip(self, tmp_path):
        path = str(tmp_path / "host.wal")
        records = [(0, "put", (1, f"k{i}", i)) for i in range(6)]
        self._write_log(path, records)
        self._flip_byte_of_record(path, records, 2)
        with pytest.raises(WalError, match="corrupt"):
            list(replay(path))

    def test_crash_recovery_replay_rejects_mid_log_flip(self, tmp_path):
        # the apply-callback path (what a respawned server host runs)
        path = str(tmp_path / "host.wal")
        records = [(0, "put", (1, f"k{i}", i)) for i in range(6)]
        self._write_log(path, records)
        self._flip_byte_of_record(path, records, 3)
        applied = []
        with pytest.raises(WalError) as info:
            replay(path, applied.append)
        # records before the damage may apply; the damaged one and
        # everything after it must not
        assert len(applied) <= 3
        assert records[3] not in applied
        assert info.value.corrupt_records == 1

    def test_every_record_position_is_protected(self, tmp_path):
        records = [f"record-{i}" * 3 for i in range(5)]
        for index in range(len(records)):
            path = str(tmp_path / f"pos{index}.wal")
            self._write_log(path, records)
            self._flip_byte_of_record(path, records, index)
            with pytest.raises(WalError):
                list(replay(path))

    def test_multiple_corrupt_records_are_all_counted(self, tmp_path):
        # framing survives body damage, so the scan can count every
        # corrupt record — the chaos accounting reconciles this number
        # against injected corruption
        path = str(tmp_path / "host.wal")
        records = [f"r{i}" * 10 for i in range(8)]
        self._write_log(path, records)
        for index in (1, 4, 6):
            self._flip_byte_of_record(path, records, index)
        with pytest.raises(WalError) as info:
            list(replay(path))
        assert info.value.corrupt_records == 3

    def test_wal_error_pickles_with_its_count(self):
        import pickle

        exc = pickle.loads(pickle.dumps(WalError("bad log", 4)))
        assert isinstance(exc, WalError)
        assert exc.corrupt_records == 4


class TestQuarantine:
    def test_quarantine_sets_log_aside_and_continues_fresh(self, tmp_path):
        path = str(tmp_path / "host.wal")
        wal = GroupCommitWal(path)
        wal.io.arm("bit_flip")
        wal.append("poisoned")
        wal.commit()
        quarantined = wal.quarantine()
        assert quarantined == path + ".corrupt"
        assert os.path.exists(quarantined)
        # the fresh log at the same path appends and replays cleanly
        wal.append("fresh")
        wal.commit()
        wal.close()
        assert list(replay(path)) == ["fresh"]
        assert wal.stats()["quarantines"] == 1
        # the damaged log is preserved for forensics
        with pytest.raises(WalError):
            list(replay(quarantined))
