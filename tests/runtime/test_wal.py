"""Group-commit WAL: append/commit accounting, replay, torn tails."""

import time

import pytest

from repro.runtime.wal import GroupCommitWal, WalError, replay


class TestGroupCommitWal:
    def test_records_share_one_commit(self, tmp_path):
        path = str(tmp_path / "host.wal")
        with GroupCommitWal(path) as wal:
            for index in range(5):
                wal.append((0, "put", (1, f"k{index}", index)))
            assert wal.commit() == 5
            assert wal.commit() == 0  # clean log: no fsync issued
        stats_records = list(replay(path))
        assert len(stats_records) == 5
        assert stats_records[2] == (0, "put", (1, "k2", 2))

    def test_stats_track_group_sizes(self, tmp_path):
        wal = GroupCommitWal(str(tmp_path / "host.wal"))
        wal.append("a")
        wal.commit()
        wal.append("b")
        wal.append("c")
        wal.append("d")
        wal.commit()
        stats = wal.stats()
        wal.close()
        assert stats["records"] == 4
        assert stats["commits"] == 2
        assert stats["avg_records_per_commit"] == 2.0

    def test_closed_wal_refuses_appends(self, tmp_path):
        wal = GroupCommitWal(str(tmp_path / "host.wal"))
        wal.close()
        with pytest.raises(WalError):
            wal.append("x")
        with pytest.raises(WalError):
            wal.commit()

    def test_replay_with_apply_returns_count(self, tmp_path):
        path = str(tmp_path / "host.wal")
        with GroupCommitWal(path) as wal:
            wal.append(1)
            wal.append(2)
        seen = []
        assert replay(path, seen.append) == 2
        assert seen == [1, 2]

    def test_torn_tail_is_dropped(self, tmp_path):
        # a crash mid-append leaves a partial frame; it was never acked,
        # so replay must drop it rather than error or mis-decode
        path = str(tmp_path / "host.wal")
        with GroupCommitWal(path) as wal:
            wal.append("whole")
            wal.append("torn")
        with open(path, "rb") as fh:
            intact = fh.read()
        with open(path, "wb") as fh:
            fh.write(intact[:-3])
        assert list(replay(path)) == ["whole"]

    def test_commit_floor_bounds_barrier_latency(self, tmp_path):
        # the modeled barrier makes every non-empty commit take at least
        # the floor — and exactly one floor regardless of group size,
        # which is what makes group-commit amortization measurable on
        # hosts whose fsync is absorbed by a page cache
        wal = GroupCommitWal(
            str(tmp_path / "host.wal"), commit_floor=0.02
        )
        for index in range(10):
            wal.append(index)
        start = time.monotonic()
        assert wal.commit() == 10
        elapsed = time.monotonic() - start
        wal.close()
        assert 0.02 <= elapsed < 0.2
        assert wal.stats()["commit_floor"] == 0.02

    def test_empty_commit_skips_the_floor(self, tmp_path):
        wal = GroupCommitWal(
            str(tmp_path / "host.wal"), commit_floor=0.5
        )
        start = time.monotonic()
        assert wal.commit() == 0
        assert time.monotonic() - start < 0.25
        wal.close()

    def test_missing_file_replays_empty(self, tmp_path):
        assert list(replay(str(tmp_path / "never-written.wal"))) == []
        assert replay(str(tmp_path / "never-written.wal"), lambda r: None) == 0

    def test_append_reopens_after_restart(self, tmp_path):
        # a restarted host reopens the same log and appends after the
        # replayed prefix
        path = str(tmp_path / "host.wal")
        with GroupCommitWal(path) as wal:
            wal.append("before-crash")
        with GroupCommitWal(path) as wal:
            wal.append("after-restart")
        assert list(replay(path)) == ["before-crash", "after-restart"]
