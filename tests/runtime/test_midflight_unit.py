"""Unit coverage for non-quiescent chaos scheduling: MidFlightScheduler,
OnlineInvariantMonitor, and barrier-plan re-keying — all against fake
clusters/injectors, no processes."""

import pickle

import pytest

from repro.errors import FaultPlanError
from repro.recovery.faults import Fault
from repro.runtime.chaos import (
    MIDFLIGHT_COUNTERS,
    MIDFLIGHT_POLL_EVERY,
    MidFlightScheduler,
    MidFlightTrigger,
    OnlineInvariantMonitor,
    rekey_plan_midflight,
)
from repro.runtime.rpc import RemoteOpError


class FakeCluster:
    def __init__(self):
        self.hooks = []

    def add_execute_hook(self, hook):
        self.hooks.append(hook)

    def remove_execute_hook(self, hook):
        self.hooks.remove(hook)

    def execute(self, n=1, topology="app"):
        for _ in range(n):
            for hook in list(self.hooks):
                hook(topology)


class FakeInjector:
    def __init__(self):
        self.fired = []

    def fire_now(self, fault):
        self.fired.append(fault)


def kill(host=0):
    return Fault(1, "host_sigkill", (host,))


class TestTriggerValidation:
    def test_counters_are_closed_set(self):
        for counter in MIDFLIGHT_COUNTERS:
            MidFlightTrigger(counter, 5)
        with pytest.raises(FaultPlanError):
            MidFlightTrigger("wall_clock", 5)

    def test_negative_threshold_refused(self):
        with pytest.raises(FaultPlanError):
            MidFlightTrigger("tuples", -1)

    def test_trigger_pickles(self):
        trigger = MidFlightTrigger("wal_records", 40)
        assert pickle.loads(pickle.dumps(trigger)) == trigger


class TestMidFlightScheduler:
    def test_fires_when_tuple_counter_crosses(self):
        cluster, injector = FakeCluster(), FakeInjector()
        fault = kill()
        scheduler = MidFlightScheduler([(MidFlightTrigger("tuples", 3), fault)])
        scheduler.attach(cluster, injector)
        cluster.execute(2)
        assert injector.fired == []
        assert scheduler.pending() == 1
        cluster.execute(1)
        assert injector.fired == [fault]
        assert scheduler.fired_midflight == [fault]
        assert scheduler.pending() == 0
        cluster.execute(5)  # never refires
        assert injector.fired == [fault]

    def test_simulator_fallback_degrades_remote_counters_to_tuples(self):
        cluster, injector = FakeCluster(), FakeInjector()
        scheduler = MidFlightScheduler(
            [
                (MidFlightTrigger("rpcs", 2), kill(0)),
                (MidFlightTrigger("wal_records", 4), kill(1)),
            ]
        )
        scheduler.attach(cluster, injector)  # no counter_source
        cluster.execute(2)
        assert len(injector.fired) == 1
        cluster.execute(2)
        assert len(injector.fired) == 2

    def test_remote_counter_source_is_polled_sparsely(self):
        cluster, injector = FakeCluster(), FakeInjector()
        polls = []

        def source():
            polls.append(len(polls))
            return {"rpcs": 100, "wal_records": 0}

        scheduler = MidFlightScheduler(
            [(MidFlightTrigger("rpcs", 50), kill())]
        )
        scheduler.attach(cluster, injector, counter_source=source)
        cluster.execute(MIDFLIGHT_POLL_EVERY - 1)
        assert polls == []  # below the poll cadence
        assert injector.fired == []
        cluster.execute(1)
        assert len(polls) == 1  # polled once, crossed, fired
        assert injector.fired == [kill()]
        cluster.execute(MIDFLIGHT_POLL_EVERY * 3)
        assert len(polls) == 1  # nothing pending: polling stops

    def test_tuples_trigger_never_polls_remote(self):
        cluster, injector = FakeCluster(), FakeInjector()

        def source():  # pragma: no cover - must not run
            raise AssertionError("polled despite tuples-only plan")

        scheduler = MidFlightScheduler(
            [(MidFlightTrigger("tuples", 2), kill())]
        )
        scheduler.attach(cluster, injector, counter_source=source)
        cluster.execute(8)
        assert injector.fired == [kill()]

    def test_poll_tolerates_host_mid_respawn(self):
        cluster, injector = FakeCluster(), FakeInjector()
        calls = []

        def source():
            calls.append(True)
            if len(calls) == 1:
                raise RemoteOpError("host mid-respawn")
            return {"rpcs": 9, "wal_records": 9}

        scheduler = MidFlightScheduler(
            [(MidFlightTrigger("wal_records", 5), kill())]
        )
        scheduler.attach(cluster, injector, counter_source=source)
        cluster.execute(MIDFLIGHT_POLL_EVERY)  # first poll raises
        assert injector.fired == []
        cluster.execute(MIDFLIGHT_POLL_EVERY)  # second poll succeeds
        assert injector.fired == [kill()]

    def test_flush_fires_unreached_triggers(self):
        cluster, injector = FakeCluster(), FakeInjector()
        near, far = kill(0), kill(1)
        scheduler = MidFlightScheduler(
            [
                (MidFlightTrigger("tuples", 1), near),
                (MidFlightTrigger("tuples", 1000), far),
            ]
        )
        scheduler.attach(cluster, injector)
        cluster.execute(3)
        assert scheduler.fired_midflight == [near]
        assert scheduler.flush() == 1
        assert scheduler.flushed == [far]
        assert injector.fired == [near, far]
        assert scheduler.flush() == 0  # idempotent

    def test_fired_flags_survive_reattach(self):
        # the harness rebuilds its cluster after a crash; a re-attached
        # scheduler must not replay already-fired faults
        cluster, injector = FakeCluster(), FakeInjector()
        scheduler = MidFlightScheduler(
            [(MidFlightTrigger("tuples", 2), kill())]
        )
        scheduler.attach(cluster, injector)
        cluster.execute(2)
        assert len(injector.fired) == 1
        rebuilt = FakeCluster()
        scheduler.attach(rebuilt, injector)
        assert cluster.hooks == []  # detached from the old cluster
        rebuilt.execute(10)
        assert len(injector.fired) == 1

    def test_detach_stops_counting(self):
        cluster, injector = FakeCluster(), FakeInjector()
        scheduler = MidFlightScheduler(
            [(MidFlightTrigger("tuples", 3), kill())]
        )
        scheduler.attach(cluster, injector)
        cluster.execute(2)
        scheduler.detach()
        cluster.execute(10)
        assert injector.fired == []
        assert scheduler.pending() == 1


class FakeRouteConfig:
    def __init__(self):
        self.version = 0

    def route_table(self):
        return self


class FakeHarness:
    def __init__(self):
        self.tdstore = type("S", (), {})()
        self.tdstore.config = FakeRouteConfig()
        self.cluster = self
        self.ledgers = {"count[0]": {"within_bound": True}}

    def exactly_once_stats(self, name):
        if self.ledgers is None:
            raise RemoteOpError("worker mid-respawn")
        return self.ledgers


class TestOnlineInvariantMonitor:
    def test_probes_on_cadence(self):
        harness, cluster = FakeHarness(), FakeCluster()
        monitor = OnlineInvariantMonitor(harness, every=4)
        monitor.attach(cluster)
        cluster.execute(11)
        assert monitor.probes == 2
        assert monitor.violations == []

    def test_route_epoch_regression_is_a_violation(self):
        harness, cluster = FakeHarness(), FakeCluster()
        monitor = OnlineInvariantMonitor(harness, every=1)
        monitor.attach(cluster)
        harness.tdstore.config.version = 5
        cluster.execute(1)
        harness.tdstore.config.version = 3  # regressed
        cluster.execute(1)
        assert any("regressed" in v for v in monitor.violations)

    def test_epoch_advance_is_not_a_violation(self):
        harness, cluster = FakeHarness(), FakeCluster()
        monitor = OnlineInvariantMonitor(harness, every=1)
        monitor.attach(cluster)
        for version in (1, 4, 4, 9):
            harness.tdstore.config.version = version
            cluster.execute(1)
        assert monitor.violations == []

    def test_out_of_bound_ledger_is_a_violation(self):
        harness, cluster = FakeHarness(), FakeCluster()
        monitor = OnlineInvariantMonitor(harness, every=1)
        monitor.attach(cluster)
        harness.ledgers["count[0]"]["within_bound"] = False
        cluster.execute(1)
        assert any("watermark" in v for v in monitor.violations)

    def test_unavailability_is_not_a_violation(self):
        harness, cluster = FakeHarness(), FakeCluster()

        def down():
            raise RemoteOpError("config host dead")

        harness.tdstore.config.route_table = down
        harness.ledgers = None  # exactly_once_stats will raise too
        monitor = OnlineInvariantMonitor(harness, every=1)
        monitor.attach(cluster)
        cluster.execute(4)
        assert monitor.probes == 4
        assert monitor.violations == []

    def test_serve_probe_accumulates(self):
        harness, cluster = FakeHarness(), FakeCluster()
        monitor = OnlineInvariantMonitor(
            harness, every=2, serve_probe=lambda: (3, 2)
        )
        monitor.attach(cluster)
        cluster.execute(4)
        assert (monitor.serve_attempts, monitor.serve_answered) == (6, 4)


class TestRekeyPlanMidflight:
    PLAN = [
        Fault(2, "host_sigkill", (1,)),
        Fault(4, "one_way_partition", (0, "inbound", 1)),
        Fault(7, "worker_sigkill", (0, 3, 8)),
    ]

    def test_deterministic_for_a_seed(self):
        a = rekey_plan_midflight(self.PLAN, 25, seed=3)
        b = rekey_plan_midflight(self.PLAN, 25, seed=3)
        assert [(t, f.kind) for t, f in a] == [(t, f.kind) for t, f in b]
        c = rekey_plan_midflight(self.PLAN, 25, seed=4)
        assert [t for t, _ in a] != [t for t, _ in c]

    def test_triggers_land_inside_their_round(self):
        for trigger, fault in rekey_plan_midflight(self.PLAN, 25, seed=1):
            assert trigger.counter == "tuples"
            lo = (fault.round - 1) * 25
            assert lo < trigger.at <= lo + 25

    def test_ordering_follows_barrier_rounds(self):
        entries = rekey_plan_midflight(self.PLAN, 25, seed=9)
        ats = [t.at for t, _ in entries]
        assert ats == sorted(ats)

    def test_zero_width_rounds_refused(self):
        with pytest.raises(FaultPlanError):
            rekey_plan_midflight(self.PLAN, 0)
