"""SubstrateMismatchError: simulated-clock-only fixtures must fail
loudly — at wiring time — when pointed at the process substrate.

Latency faults advertise extra seconds for clients to charge against a
*simulated* clock; real processes take real wall time, so accepting the
fault would silently measure nothing.
"""

import pytest

from repro.errors import SubstrateMismatchError
from repro.runtime.proxies import ProcessTDStore
from repro.runtime.substrate import ProcessSubstrate


class TestLatencyFaultGuard:
    def test_latency_degradation_is_refused_before_any_rpc(self):
        # no server behind this address: the guard must fire at wiring
        # time, before a connection is even attempted
        facade = ProcessTDStore([("127.0.0.1", 1)], {0: 0})
        with pytest.raises(SubstrateMismatchError, match="simulated clock"):
            facade.set_degradation(0, latency=5.0)

    def test_error_faults_still_work_on_real_processes(self):
        # error_every degradation is clock-free and stays supported
        with ProcessSubstrate(worker_procs=1, server_procs=1) as substrate:
            store = substrate.build_tdstore(2, 4)
            with pytest.raises(SubstrateMismatchError):
                store.set_degradation(0, latency=0.5)
            store.set_degradation(0, error_every=2)
            assert store.degraded_servers() == [0]
            store.clear_degradation(0)
            assert store.degraded_servers() == []

    def test_remote_data_server_advertises_zero_latency(self):
        # resilience budgets charge server.latency against the client's
        # clock; a remote server must never advertise simulated seconds
        with ProcessSubstrate(worker_procs=1, server_procs=1) as substrate:
            store = substrate.build_tdstore(2, 4)
            table = store.config.route_table()
            server = store.config.server(table.route(0).host)
            assert server.latency == 0.0
