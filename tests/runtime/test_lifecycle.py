"""Process lifecycle: hung-worker killing, orphan hygiene, signal
teardown, and crash-restart recovery (worker reload, WAL replay).

These tests spawn real OS processes; each one owns its tree and must
leave ``multiprocessing.active_children()`` free of repro processes.
"""

import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.runtime.rpc import RpcClient
from repro.runtime.substrate import ProcessSubstrate
from repro.runtime.supervisor import ProcessSupervisor
from repro.runtime.wire import Request
from repro.runtime.worker_host import worker_host_main
from repro.utils.clock import SimClock

WORKER_CONFIG = {"worker_index": 0, "num_workers": 1}


def assert_no_repro_children(supervisor):
    """No zombie/orphan children from this supervisor's tree."""
    assert supervisor.reap() == []
    lingering = {
        child.name
        for child in multiprocessing.active_children()
        if child.name in supervisor._ever_spawned
    }
    assert lingering == set()


def wait_for_death(pid: int, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        time.sleep(0.1)
    return False


class TestSupervisorLifecycle:
    def test_spawn_ping_stop_leaves_no_children(self):
        with ProcessSupervisor(spawn_timeout=60.0) as supervisor:
            managed = supervisor.spawn("storm-worker-0", worker_host_main, WORKER_CONFIG)
            assert managed.alive
            assert supervisor.ping("storm-worker-0", timeout=10.0)
            stats = RpcClient(*managed.address).call("_stats")
            assert stats["worker_index"] == 0
            assert stats["pid"] == managed.pid
            supervisor.stop("storm-worker-0")
            assert not managed.alive
        assert_no_repro_children(supervisor)

    def test_kill_hung_worker_after_deadline(self):
        with ProcessSupervisor(spawn_timeout=60.0) as supervisor:
            managed = supervisor.spawn("storm-worker-0", worker_host_main, WORKER_CONFIG)
            hung_pid = managed.pid
            # wedge the single-threaded worker: request a long sleep and
            # never read the response, so heartbeats cannot be served
            wedger = RpcClient(*managed.address)
            wedger.send_request(Request("_sleep", (30.0,)))
            time.sleep(1.2)  # let silence exceed the deadline
            try:
                killed = supervisor.kill_hung(
                    deadline=1.0, ping_timeout=0.5, restart=False
                )
                assert killed == ["storm-worker-0"]
                assert not managed.alive
                assert wait_for_death(hung_pid)
            finally:
                wedger.close()
            # a healthy worker is spared by the same sweep
            revived = supervisor.restart("storm-worker-0")
            assert revived.pid != hung_pid
            assert supervisor.ping("storm-worker-0", timeout=10.0)
            assert supervisor.kill_hung(deadline=1.0, ping_timeout=10.0) == []
        assert_no_repro_children(supervisor)

    def test_kill_hung_with_restart_true_respawns_in_place(self):
        with ProcessSupervisor(spawn_timeout=60.0) as supervisor:
            managed = supervisor.spawn("storm-worker-0", worker_host_main, WORKER_CONFIG)
            wedger = RpcClient(*managed.address)
            wedger.send_request(Request("_sleep", (30.0,)))
            time.sleep(1.2)
            try:
                killed = supervisor.kill_hung(deadline=1.0, ping_timeout=0.5)
            finally:
                wedger.close()
            assert killed == ["storm-worker-0"]
            assert managed.alive  # same handle, respawned process
            assert managed.restarts == 1
            assert supervisor.ping("storm-worker-0", timeout=10.0)
        assert_no_repro_children(supervisor)


class TestSubstrateTeardown:
    def test_teardown_is_idempotent_and_leaves_no_children(self):
        substrate = ProcessSubstrate(worker_procs=2, server_procs=1)
        substrate.build_tdstore(2, 4)
        substrate.build_storm(SimClock())
        supervisor = substrate.supervisor
        assert len(supervisor.names()) == 3  # 1 host + 2 workers
        substrate.teardown()
        substrate.teardown()
        assert_no_repro_children(supervisor)

    def test_sigterm_tears_down_the_whole_tree(self, tmp_path):
        # a driver script that installs the signal handlers, deploys a
        # process substrate, reports every child pid, then idles
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        script = tmp_path / "driver.py"
        script.write_text(textwrap.dedent(f"""
            import sys, time
            sys.path.insert(0, {os.path.abspath(src)!r})
            from repro.runtime.substrate import (
                ProcessSubstrate,
                install_parent_signal_handlers,
            )
            from repro.utils.clock import SimClock

            def main():
                install_parent_signal_handlers()
                substrate = ProcessSubstrate(worker_procs=2, server_procs=1)
                substrate.build_tdstore(2, 4)
                substrate.build_storm(SimClock())
                supervisor = substrate.supervisor
                pids = [supervisor.get(n).pid for n in supervisor.names()]
                print("PIDS " + " ".join(map(str, pids)), flush=True)
                while True:
                    time.sleep(0.2)

            if __name__ == "__main__":
                main()
        """))
        driver = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            line = driver.stdout.readline().strip()
            assert line.startswith("PIDS "), driver.stderr.read()
            child_pids = [int(p) for p in line.split()[1:]]
            assert len(child_pids) == 3
            driver.send_signal(signal.SIGTERM)
            assert driver.wait(timeout=30.0) == 0
        finally:
            driver.kill()
            driver.wait()
        for pid in child_pids:
            assert wait_for_death(pid), f"child {pid} survived SIGTERM teardown"


class TestCrashRecovery:
    def test_worker_crash_triggers_reload_on_next_call(self):
        # SIGKILL a worker after a full run; the next parent->worker call
        # must transparently restart it and reload its topologies
        from repro.runtime import topology_recipe
        from tests.recovery.helpers import TOPIC, make_payloads, make_tdaccess

        with ProcessSubstrate(worker_procs=2, server_procs=1) as substrate:
            clock = SimClock()
            store = substrate.build_tdstore(2, 4)
            cluster = substrate.build_storm(clock, tick_interval=240.0)
            consumer = make_tdaccess(make_payloads(8)).consumer(TOPIC)
            factory = topology_recipe(
                "tests.recovery.helpers", "cf_topology_factory", batch_size=4
            )
            cluster.submit(factory(clock, store.client, consumer))
            cluster.run_until_idle()

            victim = substrate.supervisor.get("storm-worker-0")
            os.kill(victim.pid, signal.SIGKILL)
            victim.process.join(timeout=10.0)
            assert not victim.alive

            stats = cluster._worker_call(0, "_stats")
            assert cluster.worker_recoveries == 1
            assert victim.restarts == 1
            assert stats["topologies"] == ["cf-stream"]
            assert stats["executed"] == 0  # fresh process, state reloaded

    def test_server_host_restart_replays_wal(self, tmp_path):
        # SIGKILL the only TDStore host after durable puts; the restart
        # hook replays its WAL so a fresh client sees every mutation
        with ProcessSubstrate(
            worker_procs=1, server_procs=1, wal_dir=str(tmp_path)
        ) as substrate:
            store = substrate.build_tdstore(2, 4)
            client = store.client()
            for index in range(20):
                client.put(f"key:{index}", {"value": index})

            host = substrate.supervisor.get("tdstore-host-0")
            os.kill(host.pid, signal.SIGKILL)
            host.process.join(timeout=10.0)
            assert not host.alive

            substrate.supervisor.restart("tdstore-host-0")
            fresh = store.client()
            for index in range(20):
                assert fresh.get(f"key:{index}") == {"value": index}
