"""Chaos acceptance on both substrates — the headline guarantee of the
runtime package: the same topology, fault plans and recovery machinery
run unmodified on the simulator and on real processes, and the process
substrate's final state is byte-identical to the simulator's.

Latency faults are excluded by design: they are simulated-clock-only
and the process substrate refuses them (see test_substrate_guard).
"""

import pytest

from repro.recovery import Fault, RecoveryHarness
from repro.runtime import ProcessSubstrate, SimSubstrate, topology_recipe

from tests.recovery.helpers import (
    TOPIC,
    make_payloads,
    make_tdaccess,
    recommendations_bytes,
    state_digest,
)

N_MESSAGES = 48
BATCH = 4

SUBSTRATES = [
    pytest.param(SimSubstrate, id="sim"),
    pytest.param(
        lambda: ProcessSubstrate(worker_procs=2, server_procs=1), id="process"
    ),
]


def make_harness(substrate, payloads, plan=None):
    harness = RecoveryHarness(
        make_tdaccess(payloads),
        TOPIC,
        topology_recipe(
            "tests.recovery.helpers", "cf_topology_factory", batch_size=BATCH
        ),
        tick_interval=240.0,
        checkpoint_every_rounds=2,
        substrate=substrate,
    )
    harness.start(fault_plan=plan)
    return harness


def finish(harness):
    assert harness.run() == "completed"
    return (
        recommendations_bytes(harness.client(), harness.clock.now()),
        state_digest(harness.client()),
    )


@pytest.fixture(scope="module")
def payloads():
    return make_payloads(N_MESSAGES)


@pytest.fixture(scope="module")
def sim_reference(payloads):
    """Fault-free simulator run: the byte-identity baseline."""
    return finish(make_harness(SimSubstrate(), payloads))


@pytest.mark.parametrize("make_substrate", SUBSTRATES)
class TestCrossSubstrateAcceptance:
    def test_fault_free_run_matches_simulator(
        self, make_substrate, payloads, sim_reference
    ):
        with make_substrate() as substrate:
            got = finish(make_harness(substrate, payloads))
        assert got == sim_reference

    def test_duplicate_delivery_chaos(
        self, make_substrate, payloads, sim_reference
    ):
        plan = [
            Fault(2, "duplicate_delivery", ("source", 2 * BATCH)),
            Fault(4, "duplicate_delivery", ("source", 3 * BATCH)),
        ]
        with make_substrate() as substrate:
            harness = make_harness(substrate, payloads, plan)
            got = finish(harness)
            assert harness.injector.rewinds == 2
            dedup = harness.cluster.exactly_once_stats(harness.topology_name)
            assert sum(s["dedup_hits"] for s in dedup.values()) > 0
        assert got == sim_reference

    def test_worker_kill_midtree_chaos(
        self, make_substrate, payloads, sim_reference
    ):
        plan = [
            Fault(3, "worker_kill_midtree", ("userHistory", 0, 3, 2 * BATCH))
        ]
        with make_substrate() as substrate:
            harness = make_harness(substrate, payloads, plan)
            got = finish(harness)
            assert harness.injector.midtree_fired == 1
            assert harness.injector.rewinds >= 1
        assert got == sim_reference
