"""Wire protocol: framing, incremental decode, exception round-trips."""

import pickle

import pytest

from repro.errors import (
    MigrationInProgressError,
    RemoteOpError,
    StaleRouteError,
    VersionConflictError,
)
from repro.runtime.wire import (
    CORRUPTION_STATS,
    HEADER_SIZE,
    FrameCorruptionError,
    FrameError,
    Request,
    Response,
    StreamDecoder,
    corrupt_frame,
    crc32c,
    encode_error,
    encode_frame,
    sanitize_exception,
)


class TestFraming:
    def test_round_trip_one_frame(self):
        frame = encode_frame({"hello": [1, 2, 3]})
        decoder = StreamDecoder()
        assert decoder.feed(frame) == [{"hello": [1, 2, 3]}]
        assert decoder.pending_bytes() == 0

    def test_byte_at_a_time_feed(self):
        payload = Request("put", (3, "k", "v"), target=("data", 1))
        frame = encode_frame(payload)
        decoder = StreamDecoder()
        out = []
        for index in range(len(frame)):
            out.extend(decoder.feed(frame[index : index + 1]))
        assert len(out) == 1
        assert out[0] == payload

    def test_many_frames_in_one_feed(self):
        frames = b"".join(encode_frame(i) for i in range(10))
        assert StreamDecoder().feed(frames) == list(range(10))

    def test_partial_tail_is_buffered(self):
        frame = encode_frame("x" * 100)
        decoder = StreamDecoder()
        assert decoder.feed(frame[:-7]) == []
        assert decoder.pending_bytes() == len(frame) - 7
        assert decoder.feed(frame[-7:]) == ["x" * 100]

    def test_oversized_length_is_a_protocol_error(self):
        # a desynchronized stream yields garbage lengths; refuse them
        bad = b"\xff\xff\xff\xff" + b"junk"
        with pytest.raises(FrameError):
            StreamDecoder().feed(bad)

    def test_header_is_length_plus_checksum(self):
        assert HEADER_SIZE == 8
        assert len(encode_frame(None)) == 8 + len(pickle.dumps(None, 5))


class TestChecksums:
    def test_crc32c_known_vector(self):
        # the canonical Castagnoli check value (RFC 3720 appendix / iSCSI)
        assert crc32c(b"123456789") == 0xE3069283
        assert crc32c(b"") == 0

    def test_flipped_payload_bit_raises_frame_corruption_error(self):
        frame = corrupt_frame(encode_frame({"k": "v"}))
        with pytest.raises(FrameCorruptionError):
            StreamDecoder().feed(frame)

    def test_corruption_anywhere_in_payload_is_caught(self):
        frame = encode_frame(list(range(50)))
        for offset in range(HEADER_SIZE, len(frame)):
            damaged = bytearray(frame)
            damaged[offset] ^= 0x01
            with pytest.raises(FrameCorruptionError):
                StreamDecoder().feed(bytes(damaged))

    def test_detection_is_counted_and_frame_is_consumed(self):
        before = CORRUPTION_STATS["frames_detected"]
        decoder = StreamDecoder()
        with pytest.raises(FrameCorruptionError):
            decoder.feed(corrupt_frame(encode_frame("a")) + encode_frame("b"))
        assert CORRUPTION_STATS["frames_detected"] == before + 1
        # the corrupt frame was consumed: the stream stays scannable and
        # the frame behind it decodes on the next feed
        assert decoder.feed(b"") == ["b"]

    def test_corruption_error_survives_the_wire(self):
        exc = sanitize_exception(FrameCorruptionError("bad crc", 1, 2))
        assert isinstance(exc, FrameCorruptionError)
        assert (exc.expected, exc.actual) == (1, 2)

    def test_corrupt_frame_leaves_header_intact(self):
        frame = encode_frame("payload")
        damaged = corrupt_frame(frame)
        assert damaged != frame
        assert damaged[:HEADER_SIZE] == frame[:HEADER_SIZE]
        run = corrupt_frame(frame, run=8)
        assert run[:HEADER_SIZE] == frame[:HEADER_SIZE]
        assert sum(a != b for a, b in zip(run, frame)) == 8


class TestResponses:
    def test_unwrap_value(self):
        assert Response(value=41).unwrap() == 41

    def test_unwrap_raises_the_carried_error(self):
        with pytest.raises(StaleRouteError):
            Response(error=StaleRouteError("stale")).unwrap()

    def test_control_flow_errors_survive_the_wire(self):
        # client-side failover/fencing dispatches on these exact types
        for exc in (
            StaleRouteError("instance 3 moved"),
            MigrationInProgressError("instance 3 mid-cutover", 3),
            VersionConflictError("key moved on", 7),
        ):
            frame = encode_frame(encode_error(exc))
            (response,) = StreamDecoder().feed(frame)
            with pytest.raises(type(exc)):
                response.unwrap()

    def test_unpicklable_exception_degrades_to_remote_op_error(self):
        class Local(Exception):  # not importable remotely
            pass

        try:
            raise Local("boom")
        except Local as exc:
            sanitized = sanitize_exception(exc)
        assert isinstance(sanitized, RemoteOpError)
        assert "Local" in str(sanitized)
        assert "boom" in str(sanitized)
        # the flattened form itself survives the wire
        (response,) = StreamDecoder().feed(
            encode_frame(Response(error=sanitized))
        )
        with pytest.raises(RemoteOpError):
            response.unwrap()

    def test_picklable_exception_keeps_type_and_message(self):
        sanitized = sanitize_exception(ValueError("fine as-is"))
        assert type(sanitized) is ValueError
        assert str(sanitized) == "fine as-is"
