"""Tests for demographic grouping and the DB recommender (Section 4.2)."""

import pytest

from repro.algorithms.demographic import (
    GLOBAL_GROUP,
    DemographicRecommender,
    DemographicScheme,
    age_band,
)
from repro.errors import ConfigurationError
from repro.types import UserAction, UserProfile

PROFILES = {
    "m20": UserProfile("m20", gender="male", age=22, region="beijing"),
    "m21": UserProfile("m21", gender="male", age=24, region="beijing"),
    "f40": UserProfile("f40", gender="female", age=44, region="shanghai"),
    "f41": UserProfile("f41", gender="female", age=41, region="shanghai"),
    "anon": UserProfile("anon"),
}


def profile_lookup(user_id):
    return PROFILES.get(user_id)


class TestAgeBand:
    def test_bands(self):
        assert age_band(10) == "age<18"
        assert age_band(20) == "age18-24"
        assert age_band(30) == "age25-34"
        assert age_band(40) == "age35-49"
        assert age_band(70) == "age50+"

    def test_none(self):
        assert age_band(None) is None


class TestScheme:
    def test_group_key_combines_attributes(self):
        scheme = DemographicScheme(("gender", "age"))
        assert scheme.group_of(PROFILES["m20"]) == "male|age18-24"

    def test_missing_attribute_degrades_to_global(self):
        scheme = DemographicScheme(("gender", "age"))
        assert scheme.group_of(PROFILES["anon"]) == GLOBAL_GROUP
        assert scheme.group_of(None) == GLOBAL_GROUP

    def test_region_scheme(self):
        scheme = DemographicScheme(("region",))
        assert scheme.group_of(PROFILES["f40"]) == "shanghai"

    def test_unknown_attribute_rejected(self):
        with pytest.raises(ConfigurationError):
            DemographicScheme(("shoe_size",))


class TestDemographicRecommender:
    def make_db(self, **kwargs):
        return DemographicRecommender(profile_lookup, **kwargs)

    def feed(self, db, rows, t0=0.0):
        t = t0
        for user, item in rows:
            db.observe(UserAction(user, item, "click", t))
            t += 1.0
        return t

    def test_group_hot_items_differ(self):
        db = self.make_db()
        self.feed(db, [("m20", "game"), ("m21", "game"), ("f40", "recipe"),
                       ("f41", "recipe")])
        assert db.hot_items("male|age18-24", 1, now=10.0)[0][0] == "game"
        assert db.hot_items("female|age35-49", 1, now=10.0)[0][0] == "recipe"

    def test_new_user_in_group_gets_group_hots(self):
        db = self.make_db()
        self.feed(db, [("m20", "game"), ("m21", "game"), ("f40", "recipe")])
        newcomer = UserProfile("m-new", gender="male", age=23)
        PROFILES["m-new"] = newcomer
        recs = db.recommend("m-new", 2, now=10.0)
        assert recs[0].item_id == "game"

    def test_anonymous_user_gets_global_hots(self):
        db = self.make_db()
        self.feed(db, [("m20", "game"), ("m21", "game"), ("f40", "recipe")])
        recs = db.recommend("anon", 1, now=10.0)
        assert recs[0].item_id == "game"  # globally hottest

    def test_consumed_items_excluded(self):
        db = self.make_db()
        self.feed(db, [("m20", "game"), ("m21", "game"), ("m21", "tool")])
        recs = db.recommend("m21", 5, now=10.0)
        assert all(r.item_id not in ("game", "tool") for r in recs)

    def test_hotness_fades_with_window(self):
        db = self.make_db(session_seconds=10.0, window_sessions=2)
        self.feed(db, [("m20", "old-fad"), ("m21", "old-fad")], t0=0.0)
        self.feed(db, [("m20", "new-fad")], t0=50.0)
        hots = db.hot_items("male|age18-24", 5, now=55.0)
        items = [item for item, __ in hots]
        assert "new-fad" in items
        assert "old-fad" not in items

    def test_complement_fn_shape(self):
        db = self.make_db()
        self.feed(db, [("m20", "game"), ("m21", "game")])
        fn = db.complement_fn("f40", now=10.0)
        recs = fn(3)
        assert isinstance(recs, list)
        assert all(r.source == "db" for r in recs)

    def test_sparsity_motivation_group_denser_than_global(self):
        """The Figure 5 argument: within a demographic group, the rating
        matrix is denser because group members share interests."""
        db = self.make_db()
        rows = []
        # male users click games, female users click recipes
        for n in range(10):
            rows.append((f"m20" if n % 2 == 0 else "m21", f"game{n % 3}"))
            rows.append((f"f40" if n % 2 == 0 else "f41", f"recipe{n % 3}"))
        self.feed(db, rows)
        male_hots = {i for i, __ in db.hot_items("male|age18-24", 10, now=30.0)}
        assert male_hots == {"game0", "game1", "game2"}
