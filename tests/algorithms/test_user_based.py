"""Tests for the user-based CF comparator."""

import math

import pytest

from repro.algorithms.ratings import DEFAULT_ACTION_WEIGHTS
from repro.algorithms.user_based import UserBasedCF
from repro.errors import ConfigurationError
from repro.types import UserAction

BIG = 10**12


def feed(cf, rows, dt=1.0):
    t = 0.0
    for user, item, action in rows:
        cf.observe(UserAction(user, item, action, t))
        t += dt


class TestUserSimilarity:
    def test_co_raters_become_similar(self):
        cf = UserBasedCF(linked_time=BIG)
        feed(cf, [("alice", "A", "click"), ("bob", "A", "click"),
                  ("alice", "B", "click"), ("bob", "B", "click")])
        # pairCount = min co-ratings over both items = 2w;
        # userCounts = 2w each -> sim = 2w / (sqrt(2w)sqrt(2w)) = 1
        assert cf.similarity("alice", "bob") == pytest.approx(1.0)

    def test_disjoint_users_not_similar(self):
        cf = UserBasedCF(linked_time=BIG)
        feed(cf, [("alice", "A", "click"), ("bob", "B", "click")])
        assert cf.similarity("alice", "bob") == 0.0

    def test_partial_overlap(self):
        cf = UserBasedCF(linked_time=BIG)
        feed(cf, [("alice", "A", "click"), ("alice", "B", "click"),
                  ("bob", "A", "click"), ("bob", "C", "click")])
        w = DEFAULT_ACTION_WEIGHTS.weight("click")
        expected = w / (math.sqrt(2 * w) * math.sqrt(2 * w))
        assert cf.similarity("alice", "bob") == pytest.approx(expected)

    def test_linked_time_limits_pairing(self):
        cf = UserBasedCF(linked_time=10.0)
        cf.observe(UserAction("alice", "A", "click", 0.0))
        cf.observe(UserAction("bob", "A", "click", 1000.0))
        assert cf.similarity("alice", "bob") == 0.0

    def test_repeat_action_no_double_count(self):
        cf = UserBasedCF(linked_time=BIG)
        feed(cf, [("alice", "A", "click"), ("bob", "A", "click"),
                  ("alice", "A", "click")])
        assert cf.similarity("alice", "bob") == pytest.approx(1.0)

    def test_neighbour_list_bounded(self):
        cf = UserBasedCF(linked_time=BIG, k=2)
        rows = [("target", "A", "click")]
        for n in range(5):
            rows.append((f"peer{n}", "A", "click"))
        feed(cf, rows)
        assert len(cf.neighbours_of("target")) <= 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UserBasedCF(linked_time=0.0)
        with pytest.raises(ConfigurationError):
            UserBasedCF(max_raters_per_item=1)


class TestUserBasedRecommendation:
    def test_recommends_neighbours_items(self):
        cf = UserBasedCF(linked_time=BIG)
        feed(cf, [("alice", "A", "click"), ("alice", "B", "click"),
                  ("bob", "A", "click"), ("bob", "B", "click"),
                  ("bob", "C", "purchase")])
        recs = cf.recommend("alice", 3, now=100.0)
        assert recs and recs[0].item_id == "C"
        assert recs[0].source == "user-cf"

    def test_own_items_excluded(self):
        cf = UserBasedCF(linked_time=BIG)
        feed(cf, [("alice", "A", "click"), ("bob", "A", "click"),
                  ("bob", "B", "click")])
        recs = cf.recommend("alice", 5, now=100.0)
        assert all(r.item_id != "A" for r in recs)

    def test_cold_user_empty(self):
        cf = UserBasedCF()
        assert cf.recommend("ghost", 5, now=0.0) == []
