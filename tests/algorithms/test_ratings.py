"""Tests for implicit-feedback rating resolution (Section 4.1.2)."""

import pytest

from repro.algorithms.ratings import (
    DEFAULT_ACTION_WEIGHTS,
    ActionWeights,
    co_rating,
    rating_from_actions,
)
from repro.errors import ConfigurationError, UnknownActionError


class TestActionWeights:
    def test_default_weights_order_actions_sensibly(self):
        w = DEFAULT_ACTION_WEIGHTS
        assert w.weight("browse") < w.weight("click") < w.weight("purchase")

    def test_unknown_action_raises_with_known_list(self):
        with pytest.raises(UnknownActionError, match="browse"):
            DEFAULT_ACTION_WEIGHTS.weight("teleport")

    def test_knows(self):
        assert DEFAULT_ACTION_WEIGHTS.knows("click")
        assert not DEFAULT_ACTION_WEIGHTS.knows("teleport")

    def test_custom_weights(self):
        w = ActionWeights.of(view=1.0, buy=3.0)
        assert w.weight("buy") == 3.0
        assert w.max_weight() == 3.0

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            ActionWeights.of(view=0.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ActionWeights(())


class TestRatingResolution:
    def test_rating_is_max_weight(self):
        # a user who browsed, clicked, then purchased rates at purchase level
        rating = rating_from_actions(
            DEFAULT_ACTION_WEIGHTS, ["browse", "click", "purchase"]
        )
        assert rating == DEFAULT_ACTION_WEIGHTS.weight("purchase")

    def test_repeated_weak_actions_do_not_accumulate(self):
        # the max rule suppresses noise from many repeated browses
        rating = rating_from_actions(DEFAULT_ACTION_WEIGHTS, ["browse"] * 100)
        assert rating == DEFAULT_ACTION_WEIGHTS.weight("browse")

    def test_no_actions_is_zero(self):
        assert rating_from_actions(DEFAULT_ACTION_WEIGHTS, []) == 0.0

    def test_co_rating_is_min(self):
        # Equation 3
        assert co_rating(1.0, 5.0) == 1.0
        assert co_rating(5.0, 2.0) == 2.0
        assert co_rating(3.0, 3.0) == 3.0
