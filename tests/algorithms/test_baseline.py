"""Tests for the periodic 'Original' baseline wrapper (Section 6)."""

import pytest

from repro.algorithms.baseline import PeriodicRecommender
from repro.algorithms.itemcf import PracticalItemCF
from repro.errors import ConfigurationError
from repro.types import UserAction


def co_click_rows(prefix, a, b, count, t0):
    rows = []
    t = t0
    for n in range(count):
        rows.append(UserAction(f"{prefix}{n}", a, "click", t))
        rows.append(UserAction(f"{prefix}{n}", b, "click", t + 1))
        t += 2
    return rows


class TestPeriodicRecommender:
    def test_model_is_blind_before_first_boundary(self):
        periodic = PeriodicRecommender(
            PracticalItemCF(linked_time=10**9), update_interval=3600.0
        )
        for action in co_click_rows("u", "A", "B", 10, t0=0.0):
            periodic.observe(action)
        periodic.observe(UserAction("target", "A", "click", 100.0))
        # still inside the first hour: the model has absorbed nothing
        assert periodic.recommend("target", 5, now=200.0) == []

    def test_model_sees_events_after_boundary(self):
        periodic = PeriodicRecommender(
            PracticalItemCF(linked_time=10**9), update_interval=3600.0
        )
        for action in co_click_rows("u", "A", "B", 10, t0=0.0):
            periodic.observe(action)
        periodic.observe(UserAction("target", "A", "click", 100.0))
        recs = periodic.recommend("target", 5, now=3700.0)
        assert recs and recs[0].item_id == "B"
        assert periodic.rebuilds == 1

    def test_events_after_boundary_invisible_until_next(self):
        periodic = PeriodicRecommender(
            PracticalItemCF(linked_time=10**9), update_interval=3600.0
        )
        # old co-click pattern A~B, absorbed at the first boundary
        for action in co_click_rows("u", "A", "B", 10, t0=0.0):
            periodic.observe(action)
        periodic.observe(UserAction("target", "A", "click", 10.0))
        assert periodic.recommend("target", 1, now=3700.0)[0].item_id == "B"
        # fresh trend: A~C co-clicks arrive during hour two
        for action in co_click_rows("v", "A", "C", 50, t0=3700.0):
            periodic.observe(action)
        # still hour two: the frozen model keeps recommending B
        assert periodic.recommend("target", 1, now=7100.0)[0].item_id == "B"
        # after the next boundary the new trend is finally visible
        top = periodic.recommend("target", 2, now=7300.0)
        assert "C" in [r.item_id for r in top]

    def test_staleness(self):
        periodic = PeriodicRecommender(
            PracticalItemCF(), update_interval=3600.0
        )
        periodic.recommend("u", 1, now=4000.0)
        assert periodic.staleness(5000.0) == pytest.approx(5000.0 - 3600.0)

    def test_multiple_boundaries_absorb_in_order(self):
        periodic = PeriodicRecommender(
            PracticalItemCF(linked_time=10**9), update_interval=100.0
        )
        for action in co_click_rows("u", "A", "B", 3, t0=0.0):
            periodic.observe(action)
        for action in co_click_rows("v", "A", "C", 3, t0=150.0):
            periodic.observe(action)
        periodic.observe(UserAction("target", "A", "click", 10.0))
        periodic.recommend("target", 1, now=500.0)
        # both batches absorbed by now
        assert periodic.inner.similarity("A", "B") > 0
        assert periodic.inner.similarity("A", "C") > 0

    def test_invalid_interval(self):
        with pytest.raises(ConfigurationError):
            PeriodicRecommender(PracticalItemCF(), update_interval=0.0)
