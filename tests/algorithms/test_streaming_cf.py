"""Tests for the practical streaming item-based CF (Section 4.1).

The crown invariant: for any action stream, the incrementally maintained
counts equal a from-scratch computation of Equations 3, 6 and 7 over the
final ratings — that is exactly what the delta decomposition of Equation
8 promises.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.itemcf import HoeffdingPruner, PracticalItemCF
from repro.algorithms.ratings import DEFAULT_ACTION_WEIGHTS
from repro.errors import ConfigurationError
from repro.types import UserAction

BIG_LINKED_TIME = 10**9


def actions_strategy(max_size=150):
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),   # user
            st.integers(min_value=0, max_value=9),   # item
            st.sampled_from(["browse", "click", "share", "purchase"]),
        ),
        max_size=max_size,
    )


def replay(cf, rows, dt=1.0):
    t = 0.0
    for user_n, item_n, action in rows:
        cf.observe(UserAction(f"u{user_n}", f"i{item_n}", action, t))
        t += dt
    return t


def reference_counts(rows):
    """Brute-force Eq 3/6/7 from the final max-weight ratings."""
    ratings: dict[str, dict[str, float]] = {}
    for user_n, item_n, action in rows:
        user, item = f"u{user_n}", f"i{item_n}"
        w = DEFAULT_ACTION_WEIGHTS.weight(action)
        ratings.setdefault(user, {})
        ratings[user][item] = max(ratings[user].get(item, 0.0), w)
    item_counts: dict[str, float] = {}
    pair_counts: dict[tuple[str, str], float] = {}
    for items in ratings.values():
        entries = sorted(items.items())
        for idx, (p, rp) in enumerate(entries):
            item_counts[p] = item_counts.get(p, 0.0) + rp
            for q, rq in entries[idx + 1 :]:
                pair_counts[(p, q)] = pair_counts.get((p, q), 0.0) + min(rp, rq)
    return item_counts, pair_counts


class TestIncrementalEqualsBatch:
    @settings(max_examples=80, deadline=None)
    @given(actions_strategy())
    def test_counts_match_reference(self, rows):
        cf = PracticalItemCF(linked_time=BIG_LINKED_TIME)
        replay(cf, rows)
        item_counts, pair_counts = reference_counts(rows)
        for item, expected in item_counts.items():
            assert cf.table.item_count(item) == pytest.approx(expected)
        for (p, q), expected in pair_counts.items():
            assert cf.table.pair_count(p, q) == pytest.approx(expected)

    @settings(max_examples=80, deadline=None)
    @given(actions_strategy())
    def test_similarity_always_in_unit_interval(self, rows):
        cf = PracticalItemCF(linked_time=BIG_LINKED_TIME)
        replay(cf, rows)
        items = cf.table.known_items()
        for i, p in enumerate(items):
            for q in items[i + 1 :]:
                sim = cf.similarity(p, q)
                assert 0.0 <= sim <= 1.0 + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(actions_strategy(max_size=80))
    def test_event_order_does_not_change_final_counts(self, rows):
        forward = PracticalItemCF(linked_time=BIG_LINKED_TIME)
        replay(forward, rows)
        backward = PracticalItemCF(linked_time=BIG_LINKED_TIME)
        replay(backward, list(reversed(rows)))
        for item in forward.table.known_items():
            assert forward.table.item_count(item) == pytest.approx(
                backward.table.item_count(item)
            )


class TestBehaviour:
    def observe_all(self, cf, triples, dt=1.0):
        t = 0.0
        for user, item, action in triples:
            cf.observe(UserAction(user, item, action, t))
            t += dt
        return t

    def test_upgrade_browse_to_purchase_propagates_delta(self):
        cf = PracticalItemCF(linked_time=BIG_LINKED_TIME)
        self.observe_all(
            cf,
            [("u1", "A", "browse"), ("u1", "B", "browse"), ("u1", "A", "purchase")],
        )
        # final ratings: A=5, B=1; itemCount(A)=5, pairCount = min(5,1) = 1
        assert cf.table.item_count("A") == 5.0
        assert cf.table.pair_count("A", "B") == 1.0

    def test_repeated_same_action_changes_nothing(self):
        cf = PracticalItemCF(linked_time=BIG_LINKED_TIME)
        self.observe_all(cf, [("u1", "A", "click")] * 5)
        assert cf.table.item_count("A") == DEFAULT_ACTION_WEIGHTS.weight("click")
        assert cf.stats.rating_increases == 1

    def test_linked_time_blocks_stale_pairs(self):
        cf = PracticalItemCF(linked_time=100.0)
        cf.observe(UserAction("u1", "A", "click", 0.0))
        cf.observe(UserAction("u1", "B", "click", 500.0))  # too late: no pair
        assert cf.table.pair_count("A", "B") == 0.0
        assert cf.stats.linked_time_skips == 1

    def test_linked_time_allows_fresh_pairs(self):
        cf = PracticalItemCF(linked_time=100.0)
        cf.observe(UserAction("u1", "A", "click", 0.0))
        cf.observe(UserAction("u1", "B", "click", 50.0))
        assert cf.table.pair_count("A", "B") > 0.0

    def test_re_engagement_refreshes_linked_time(self):
        cf = PracticalItemCF(linked_time=100.0)
        cf.observe(UserAction("u1", "A", "browse", 0.0))
        cf.observe(UserAction("u1", "A", "browse", 450.0))  # refreshes ts only
        cf.observe(UserAction("u1", "B", "click", 500.0))
        assert cf.table.pair_count("A", "B") > 0.0

    def test_similarity_example_from_scratch(self):
        # two users click both A and B; one more user clicks only B
        cf = PracticalItemCF(linked_time=BIG_LINKED_TIME)
        self.observe_all(
            cf,
            [
                ("u1", "A", "click"), ("u1", "B", "click"),
                ("u2", "A", "click"), ("u2", "B", "click"),
                ("u3", "B", "click"),
            ],
        )
        w = DEFAULT_ACTION_WEIGHTS.weight("click")
        expected = (2 * w) / (math.sqrt(2 * w) * math.sqrt(3 * w))
        assert cf.similarity("A", "B") == pytest.approx(expected)

    def test_recommendation_from_co_click_pattern(self):
        cf = PracticalItemCF(linked_time=BIG_LINKED_TIME)
        rows = []
        for n in range(10):
            rows += [(f"u{n}", "A", "click"), (f"u{n}", "B", "click")]
        rows += [("target", "A", "click")]
        self.observe_all(cf, rows)
        recs = cf.recommend("target", 5, now=100.0)
        assert recs and recs[0].item_id == "B"

    def test_recommendations_exclude_consumed(self):
        cf = PracticalItemCF(linked_time=BIG_LINKED_TIME)
        rows = [("u1", "A", "click"), ("u1", "B", "click"),
                ("u2", "A", "click"), ("u2", "B", "click")]
        self.observe_all(cf, rows)
        recs = cf.recommend("u1", 5, now=100.0)
        assert all(r.item_id not in ("A", "B") for r in recs)

    def test_unknown_user_gets_empty_list(self):
        cf = PracticalItemCF()
        assert cf.recommend("ghost", 5, now=0.0) == []

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            PracticalItemCF(linked_time=0.0)
        with pytest.raises(ConfigurationError):
            PracticalItemCF(session_seconds=10.0)  # missing window_sessions


class TestWindowedStreaming:
    def test_interest_fades_as_sessions_expire(self):
        cf = PracticalItemCF(
            linked_time=BIG_LINKED_TIME,
            session_seconds=100.0,
            window_sessions=2,
        )
        for n in range(5):
            cf.observe(UserAction(f"u{n}", "A", "click", 10.0))
            cf.observe(UserAction(f"u{n}", "B", "click", 20.0))
        assert cf.similarity("A", "B", now=50.0) == pytest.approx(1.0)
        assert cf.similarity("A", "B", now=150.0) == pytest.approx(1.0)
        assert cf.similarity("A", "B", now=500.0) == 0.0


class TestPruningIntegration:
    def build_skewed_stream(self):
        """Two strong clusters {A,B,C} and {X,Y,Z} plus weak cross links.

        With k=2, each item's similar-items list fills with its cluster
        mates at high similarity, so the weak cross-cluster pairs sit far
        below both thresholds — prime pruning targets.
        """
        rows = []
        for n in range(40):
            rows += [
                (f"a{n}", "A", "click"),
                (f"a{n}", "B", "click"),
                (f"a{n}", "C", "click"),
                (f"x{n}", "X", "click"),
                (f"x{n}", "Y", "click"),
                (f"x{n}", "Z", "click"),
            ]
            if n % 3 == 0:
                rows.append((f"a{n}", "X", "browse"))
        return rows

    def test_pruning_reduces_pair_updates(self):
        rows = self.build_skewed_stream()
        unpruned = PracticalItemCF(linked_time=BIG_LINKED_TIME, k=2)
        t = 0.0
        for u, i, a in rows:
            unpruned.observe(UserAction(u, i, a, t))
            t += 1.0
        pruned = PracticalItemCF(
            linked_time=BIG_LINKED_TIME, k=2,
            pruner=HoeffdingPruner(delta=0.05),
        )
        t = 0.0
        for u, i, a in rows:
            pruned.observe(UserAction(u, i, a, t))
            t += 1.0
        assert pruned.pruner.pruned_pairs > 0
        assert pruned.stats.pruned_skips > 0
        total_unpruned = unpruned.stats.pair_updates
        total_pruned = pruned.stats.pair_updates
        assert total_pruned < total_unpruned

    def test_strong_pairs_survive_pruning(self):
        rows = self.build_skewed_stream()
        pruned = PracticalItemCF(
            linked_time=BIG_LINKED_TIME, k=2,
            pruner=HoeffdingPruner(delta=0.05),
        )
        t = 0.0
        for u, i, a in rows:
            pruned.observe(UserAction(u, i, a, t))
            t += 1.0
        assert not pruned.pruner.is_pruned("A", "B")
        top = [item for item, __ in pruned.table.top_similar("A", 1)]
        assert top == ["B"]
