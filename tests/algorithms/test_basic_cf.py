"""Tests for the batch item-based CF reference (Section 4.1.1)."""

import math

import pytest

from repro.algorithms.itemcf import BasicItemCF
from repro.errors import AlgorithmError

RATINGS = {
    "u1": {"A": 5.0, "B": 3.0},
    "u2": {"A": 4.0, "B": 4.0, "C": 2.0},
    "u3": {"B": 5.0, "C": 5.0},
}


class TestCosineSimilarity:
    def test_equation_1(self):
        model = BasicItemCF(method="cosine").fit(RATINGS)
        # sim(A,B) = (5*3 + 4*4) / (sqrt(25+16) * sqrt(9+16+25))
        expected = (5 * 3 + 4 * 4) / (math.sqrt(41) * math.sqrt(50))
        assert model.similarity("A", "B") == pytest.approx(expected)

    def test_symmetric(self):
        model = BasicItemCF().fit(RATINGS)
        assert model.similarity("A", "B") == model.similarity("B", "A")

    def test_unrelated_items_zero(self):
        ratings = {"u1": {"A": 1.0}, "u2": {"B": 1.0}}
        model = BasicItemCF().fit(ratings)
        assert model.similarity("A", "B") == 0.0

    def test_identical_vectors_similarity_one(self):
        ratings = {"u1": {"A": 2.0, "B": 2.0}, "u2": {"A": 3.0, "B": 3.0}}
        model = BasicItemCF().fit(ratings)
        assert model.similarity("A", "B") == pytest.approx(1.0)

    def test_min_method_equation_4(self):
        model = BasicItemCF(method="min").fit(RATINGS)
        # pairCount(A,B) = min(5,3) + min(4,4) = 7
        # itemCount(A) = 9, itemCount(B) = 12
        expected = 7.0 / (math.sqrt(9.0) * math.sqrt(12.0))
        assert model.similarity("A", "B") == pytest.approx(expected)

    def test_unknown_method_rejected(self):
        with pytest.raises(AlgorithmError):
            BasicItemCF(method="pearson")


class TestPrediction:
    def test_equation_2_weighted_average(self):
        model = BasicItemCF().fit(RATINGS)
        sim_ab = model.similarity("A", "B")
        sim_ac = model.similarity("A", "C")
        # u3 rated B=5, C=5; prediction for A is weighted average
        expected = (sim_ab * 5 + sim_ac * 5) / (sim_ab + sim_ac)
        assert model.predict("u3", "A") == pytest.approx(expected)

    def test_prediction_bounded_by_user_ratings(self):
        model = BasicItemCF().fit(RATINGS)
        prediction = model.predict("u3", "A")
        assert 5.0 >= prediction >= 5.0  # all neighbour ratings are 5

    def test_unknown_user_predicts_zero(self):
        model = BasicItemCF().fit(RATINGS)
        assert model.predict("ghost", "A") == 0.0

    def test_recommend_excludes_rated(self):
        model = BasicItemCF().fit(RATINGS)
        recs = model.recommend("u1", 10)
        assert all(r.item_id not in RATINGS["u1"] for r in recs)
        assert [r.item_id for r in recs] == ["C"]

    def test_recommend_ranked_descending(self):
        model = BasicItemCF().fit(RATINGS)
        recs = model.recommend("u3", 10)
        scores = [r.score for r in recs]
        assert scores == sorted(scores, reverse=True)

    def test_k_limits_neighbourhood(self):
        model = BasicItemCF(k=1).fit(RATINGS)
        assert len(model.similar_items("B")) == 1

    def test_query_before_fit_rejected(self):
        with pytest.raises(AlgorithmError, match="fit"):
            BasicItemCF().similarity("A", "B")
