"""Tests for the demographic-clustered CF (Section 4.2)."""

from repro.algorithms.grouped import GroupedItemCF
from repro.types import UserAction, UserProfile

BIG = 10**12

PROFILES = {
    "m1": UserProfile("m1", gender="male", age=22),
    "m2": UserProfile("m2", gender="male", age=23),
    "m3": UserProfile("m3", gender="male", age=24),
    "f1": UserProfile("f1", gender="female", age=22),
    "f2": UserProfile("f2", gender="female", age=23),
    "anon": UserProfile("anon"),
}


def make_cf():
    return GroupedItemCF(PROFILES.get, linked_time=BIG)


def feed(cf, rows):
    t = 0.0
    for user, item in rows:
        cf.observe(UserAction(user, item, "click", t))
        t += 1.0


class TestGroupedModels:
    def test_models_created_per_group(self):
        cf = make_cf()
        feed(cf, [("m1", "game"), ("f1", "recipe")])
        assert "male|age18-24" in cf.groups()
        assert "female|age18-24" in cf.groups()

    def test_group_model_sees_only_its_group(self):
        cf = make_cf()
        feed(cf, [("m1", "game"), ("m1", "gadget"),
                  ("m2", "game"), ("m2", "gadget"),
                  ("f1", "recipe"), ("f1", "game")])
        male = cf.model_for("male|age18-24")
        assert male.similarity("game", "gadget") > 0
        assert male.similarity("game", "recipe") == 0.0

    def test_global_model_sees_everything(self):
        cf = make_cf()
        feed(cf, [("m1", "game"), ("m1", "gadget"),
                  ("f1", "recipe"), ("f1", "game")])
        assert cf.global_model.similarity("game", "recipe") > 0

    def test_anonymous_users_only_update_global(self):
        cf = make_cf()
        feed(cf, [("anon", "thing")])
        assert cf.groups() == ["global"]

    def test_group_signal_beats_global_for_sparse_cross_talk(self):
        """The Figure 5 payoff: the group model's similarity is cleaner
        than the global model's when other groups add cross-noise."""
        cf = make_cf()
        rows = []
        for user in ("m1", "m2", "m3"):
            rows += [(user, "game"), (user, "gadget")]
        # women click game together with recipes: global cross-noise
        for user in ("f1", "f2"):
            rows += [(user, "game"), (user, "recipe")]
        feed(cf, rows)
        group_sim = cf.similarity("game", "gadget", group="male|age18-24")
        global_sim = cf.global_model.similarity("game", "gadget")
        assert group_sim > global_sim

    def test_recommendation_falls_back_to_global(self):
        cf = make_cf()
        # only women generated signal; a man queries
        feed(cf, [("f1", "A"), ("f1", "B"), ("f2", "A"), ("f2", "B"),
                  ("m1", "A")])
        recs = cf.recommend("m1", 3, now=100.0)
        assert [r.item_id for r in recs] == ["B"]  # via the global model

    def test_group_recommendation_preferred(self):
        cf = make_cf()
        rows = []
        for user in ("m1", "m2"):
            rows += [(user, "A"), (user, "male-pick")]
        for user in ("f1", "f2"):
            rows += [(user, "A"), (user, "female-pick")]
        rows += [("m3", "A")]
        feed(cf, rows)
        recs = cf.recommend("m3", 1, now=100.0)
        assert recs[0].item_id == "male-pick"
