"""Property tests tying the windowed streaming CF to Equation 10.

For any action stream, the windowed itemCount at query time must equal
the sum, over sessions still inside the window, of the rating deltas
that occurred in that session — computed independently by a brute-force
replay.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.itemcf import PracticalItemCF
from repro.algorithms.ratings import DEFAULT_ACTION_WEIGHTS
from repro.types import UserAction

SESSION = 50.0
WINDOW = 3


def actions_strategy():
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),   # user
            st.integers(min_value=0, max_value=5),   # item
            st.sampled_from(["browse", "click", "purchase"]),
            st.floats(min_value=0.0, max_value=1000.0),  # timestamp
        ),
        max_size=80,
    )


def reference_windowed_item_counts(rows, query_time):
    """Brute-force Eq 10: per-session delta sums over the live window."""
    ratings: dict[tuple[str, str], float] = {}
    session_deltas: dict[tuple[str, int], float] = {}
    for user_n, item_n, action, ts in rows:
        user, item = f"u{user_n}", f"i{item_n}"
        weight = DEFAULT_ACTION_WEIGHTS.weight(action)
        old = ratings.get((user, item), 0.0)
        new = max(old, weight)
        if new > old:
            session = int(ts // SESSION)
            key = (item, session)
            session_deltas[key] = session_deltas.get(key, 0.0) + (new - old)
            ratings[(user, item)] = new
    current = int(query_time // SESSION)
    floor = current - WINDOW + 1
    counts: dict[str, float] = {}
    for (item, session), delta in session_deltas.items():
        if floor <= session <= current:
            counts[item] = counts.get(item, 0.0) + delta
    return counts


class TestWindowedEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(actions_strategy())
    def test_windowed_item_counts_match_eq10_reference(self, raw_rows):
        rows = sorted(raw_rows, key=lambda row: row[3])  # time-ordered
        cf = PracticalItemCF(
            linked_time=10**9,
            session_seconds=SESSION,
            window_sessions=WINDOW,
        )
        for user_n, item_n, action, ts in rows:
            cf.observe(UserAction(f"u{user_n}", f"i{item_n}", action, ts))
        query_time = rows[-1][3] if rows else 0.0
        expected = reference_windowed_item_counts(rows, query_time)
        for item_n in range(6):
            item = f"i{item_n}"
            assert cf.table.item_count(item, query_time) == pytest.approx(
                expected.get(item, 0.0)
            )

    @settings(max_examples=40, deadline=None)
    @given(actions_strategy(), st.floats(min_value=0, max_value=5000))
    def test_counts_never_negative_and_eventually_expire(self, raw_rows,
                                                         extra_wait):
        rows = sorted(raw_rows, key=lambda row: row[3])
        cf = PracticalItemCF(
            linked_time=10**9, session_seconds=SESSION, window_sessions=WINDOW
        )
        for user_n, item_n, action, ts in rows:
            cf.observe(UserAction(f"u{user_n}", f"i{item_n}", action, ts))
        last = rows[-1][3] if rows else 0.0
        for item_n in range(6):
            count = cf.table.item_count(f"i{item_n}", last)
            assert count >= 0.0
        # far enough in the future, everything is forgotten
        horizon = last + extra_wait + (WINDOW + 1) * SESSION
        for item_n in range(6):
            assert cf.table.item_count(f"i{item_n}", horizon) == 0.0
