"""Tests for the situational CTR algorithm."""

import pytest

from repro.algorithms.ctr import (
    BACKOFF_LEVELS,
    CTRRecommender,
    SituationalCTR,
    situation_key,
)
from repro.errors import ConfigurationError
from repro.types import UserAction, UserProfile

BEIJING_MALE_25 = UserProfile("u1", gender="male", age=25, region="beijing")
SHANGHAI_FEMALE_30 = UserProfile("u2", gender="female", age=30, region="shanghai")
ANON = UserProfile("anon")

PROFILES = {"u1": BEIJING_MALE_25, "u2": SHANGHAI_FEMALE_30, "anon": ANON}


def expose(ctr, item, profile, n_impressions, n_clicks, now=0.0):
    for __ in range(n_impressions):
        ctr.record_impression(item, profile, now)
    for __ in range(n_clicks):
        ctr.record_click(item, profile, now)


class TestSituationKey:
    def test_full_key(self):
        key = situation_key(
            {"region": "beijing", "gender": "male", "age": "age25-34"},
            ("region", "gender", "age"),
        )
        assert key == "region=beijing&gender=male&age=age25-34"

    def test_missing_attribute_gives_none(self):
        assert situation_key({"region": None}, ("region",)) is None

    def test_empty_level_is_any(self):
        assert situation_key({}, ()) == "any"

    def test_backoff_levels_end_with_unconditioned(self):
        assert BACKOFF_LEVELS[-1] == ()


class TestSituationalCTR:
    def test_introduction_query_shape(self):
        """'Last ten seconds, CTR of an ad among male Beijing users 20-30'."""
        ctr = SituationalCTR(session_seconds=1.0, window_sessions=10,
                             min_impressions=10)
        expose(ctr, "ad1", BEIJING_MALE_25, 100, 30, now=5.0)
        impressions, clicks = ctr.raw_counts("ad1", BEIJING_MALE_25, now=5.0)
        assert (impressions, clicks) == (100.0, 30.0)
        # outside the ten-second window the counts are gone
        assert ctr.raw_counts("ad1", BEIJING_MALE_25, now=30.0) == (0.0, 0.0)

    def test_situations_tracked_separately(self):
        ctr = SituationalCTR(min_impressions=10)
        expose(ctr, "ad1", BEIJING_MALE_25, 100, 50)
        expose(ctr, "ad1", SHANGHAI_FEMALE_30, 100, 1)
        male = ctr.predict("ad1", BEIJING_MALE_25, now=0.0)
        female = ctr.predict("ad1", SHANGHAI_FEMALE_30, now=0.0)
        assert male > 5 * female

    def test_backoff_to_coarser_level_when_sparse(self):
        ctr = SituationalCTR(min_impressions=50)
        # only 5 impressions in the exact situation, 200 for males overall
        expose(ctr, "ad1", BEIJING_MALE_25, 5, 5)
        expose(ctr, "ad1", UserProfile("x", gender="male"), 200, 20)
        prediction = ctr.predict("ad1", BEIJING_MALE_25, now=0.0)
        # gender-level CTR ~ 25/205, not the exact-level 100%
        assert prediction < 0.5

    def test_anonymous_user_uses_global_level(self):
        ctr = SituationalCTR(min_impressions=1)
        expose(ctr, "ad1", BEIJING_MALE_25, 100, 10)
        prediction = ctr.predict("ad1", ANON, now=0.0)
        assert prediction > ctr.prior_ctr / 2

    def test_unseen_ad_returns_prior(self):
        ctr = SituationalCTR()
        assert ctr.predict("ghost", BEIJING_MALE_25, now=0.0) == pytest.approx(
            ctr.prior_ctr
        )

    def test_smoothing_tempers_tiny_samples(self):
        ctr = SituationalCTR(min_impressions=1, prior_ctr=0.02,
                             prior_strength=20.0)
        expose(ctr, "lucky", BEIJING_MALE_25, 1, 1)  # raw CTR 100%
        prediction = ctr.predict("lucky", BEIJING_MALE_25, now=0.0)
        assert prediction < 0.1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SituationalCTR(prior_ctr=0.0)
        with pytest.raises(ConfigurationError):
            SituationalCTR(prior_strength=0.0)


class TestCTRRecommender:
    def make(self, **kwargs):
        return CTRRecommender(
            PROFILES.get, SituationalCTR(min_impressions=10, **kwargs)
        )

    def feed(self, rec, rows):
        for user, item, action, ts in rows:
            rec.observe(UserAction(user, item, action, ts))

    def test_ranks_ads_by_situational_ctr(self):
        rec = self.make()
        rows = []
        for i in range(100):
            rows.append(("u1", "ad-good", "impression", 0.0))
            rows.append(("u1", "ad-bad", "impression", 0.0))
        for i in range(40):
            rows.append(("u1", "ad-good", "click", 0.0))
        rows.append(("u1", "ad-bad", "click", 0.0))
        self.feed(rec, rows)
        recs = rec.recommend("u1", 2, now=1.0)
        assert [r.item_id for r in recs] == ["ad-good", "ad-bad"]

    def test_candidate_pool_from_context(self):
        rec = self.make()
        self.feed(rec, [("u1", "ad1", "impression", 0.0),
                        ("u1", "ad2", "impression", 0.0)])
        recs = rec.recommend("u1", 5, now=1.0, context={"candidates": ["ad2"]})
        assert [r.item_id for r in recs] == ["ad2"]

    def test_non_ctr_actions_ignored(self):
        rec = self.make()
        self.feed(rec, [("u1", "item", "purchase", 0.0)])
        assert rec.recommend("u1", 5, now=1.0) == []

    def test_personalisation_differs_by_profile(self):
        rec = self.make()
        rows = []
        for i in range(100):
            rows += [("u1", "gadget", "impression", 0.0),
                     ("u2", "gadget", "impression", 0.0),
                     ("u1", "dress", "impression", 0.0),
                     ("u2", "dress", "impression", 0.0)]
        for i in range(50):
            rows += [("u1", "gadget", "click", 0.0), ("u2", "dress", "click", 0.0)]
        self.feed(rec, rows)
        male_top = rec.recommend("u1", 1, now=1.0)[0].item_id
        female_top = rec.recommend("u2", 1, now=1.0)[0].item_id
        assert male_top == "gadget"
        assert female_top == "dress"
