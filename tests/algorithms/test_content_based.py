"""Tests for the content-based recommender."""

import pytest

from repro.algorithms.content_based import ContentBasedRecommender
from repro.errors import AlgorithmError, ConfigurationError
from repro.types import ItemMeta, UserAction


def news(item_id, tags, publish=0.0, lifetime=None, category="news"):
    return ItemMeta(
        item_id, category=category, tags=tuple(tags),
        publish_time=publish, lifetime=lifetime,
    )


def make_cb(**kwargs):
    cb = ContentBasedRecommender(**kwargs)
    cb.register_item(news("n1", ["sports", "football"]))
    cb.register_item(news("n2", ["sports", "tennis"]))
    cb.register_item(news("n3", ["politics", "election"]))
    return cb


class TestProfiles:
    def test_profile_accumulates_tags(self):
        cb = make_cb()
        cb.observe(UserAction("u", "n1", "click", 0.0))
        profile = cb.profile_of("u", 0.0)
        assert profile["sports"] > 0
        assert profile["football"] > 0
        assert "politics" not in profile

    def test_profile_decays_with_half_life(self):
        cb = make_cb(half_life=100.0)
        cb.observe(UserAction("u", "n1", "click", 0.0))
        fresh = cb.profile_of("u", 0.0)["sports"]
        later = cb.profile_of("u", 100.0)["sports"]
        assert later == pytest.approx(fresh / 2)

    def test_stronger_actions_weigh_more(self):
        cb = make_cb()
        cb.observe(UserAction("u1", "n1", "browse", 0.0))
        cb.observe(UserAction("u2", "n1", "share", 0.0))
        assert cb.profile_of("u2", 0.0)["sports"] > cb.profile_of("u1", 0.0)["sports"]

    def test_unknown_item_ignored(self):
        cb = make_cb()
        cb.observe(UserAction("u", "ghost", "click", 0.0))
        assert cb.profile_of("u", 0.0) == {}


class TestRecommendation:
    def test_recommends_matching_topic(self):
        cb = make_cb()
        cb.observe(UserAction("u", "n1", "click", 0.0))
        recs = cb.recommend("u", 2, now=1.0)
        assert recs[0].item_id == "n2"  # shares the sports tag

    def test_consumed_items_excluded(self):
        cb = make_cb()
        cb.observe(UserAction("u", "n1", "click", 0.0))
        recs = cb.recommend("u", 5, now=1.0)
        assert all(r.item_id != "n1" for r in recs)

    def test_expired_items_excluded(self):
        cb = ContentBasedRecommender()
        cb.register_item(news("old", ["sports"], publish=0.0, lifetime=100.0))
        cb.register_item(news("fresh", ["sports"], publish=500.0, lifetime=100.0))
        cb.observe(UserAction("u", "fresh", "click", 510.0))
        cb.register_item(news("other", ["sports"], publish=550.0, lifetime=100.0))
        recs = cb.recommend("u", 5, now=560.0)
        ids = [r.item_id for r in recs]
        assert "other" in ids
        assert "old" not in ids

    def test_cold_user_gets_nothing(self):
        cb = make_cb()
        assert cb.recommend("ghost", 5, now=0.0) == []

    def test_interest_shift_reorders_recommendations(self):
        # the real-time property: a burst of new-topic clicks dominates
        cb = make_cb(half_life=50.0)
        cb.register_item(news("n4", ["politics", "senate"]))
        cb.observe(UserAction("u", "n1", "click", 0.0))
        cb.observe(UserAction("u", "n3", "click", 500.0))
        recs = cb.recommend("u", 1, now=501.0)
        assert recs[0].item_id == "n4"  # politics now beats sports

    def test_reregistering_item_updates_tags(self):
        cb = make_cb()
        cb.register_item(news("n3", ["sports"]))  # n3 switches topic
        cb.observe(UserAction("u", "n1", "click", 0.0))
        recs = cb.recommend("u", 3, now=1.0)
        assert "n3" in [r.item_id for r in recs]


class TestValidation:
    def test_item_without_content_rejected(self):
        cb = ContentBasedRecommender()
        with pytest.raises(AlgorithmError, match="no tags"):
            cb.register_item(ItemMeta("empty", category=None, tags=()))

    def test_bad_half_life(self):
        with pytest.raises(ConfigurationError):
            ContentBasedRecommender(half_life=0.0)
