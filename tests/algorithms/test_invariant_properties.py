"""Cross-algorithm invariant properties (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.association_rules import AssociationRuleRecommender
from repro.algorithms.ctr import SituationalCTR
from repro.algorithms.itemcf import BasicItemCF
from repro.algorithms.user_based import UserBasedCF
from repro.types import UserAction, UserProfile

action_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),   # user
        st.integers(min_value=0, max_value=6),   # item
        st.sampled_from(["browse", "click", "purchase"]),
    ),
    max_size=80,
)


class TestAssociationRuleProperties:
    @settings(max_examples=60, deadline=None)
    @given(action_rows)
    def test_pair_support_never_exceeds_item_supports(self, rows):
        ar = AssociationRuleRecommender(session_gap=10**9, min_support=1)
        t = 0.0
        for user_n, item_n, action in rows:
            ar.observe(UserAction(f"u{user_n}", f"i{item_n}", action, t))
            t += 1.0
        for p in range(7):
            for q in range(p + 1, 7):
                a, b = f"i{p}", f"i{q}"
                joint = ar.pair_support(a, b)
                assert joint <= ar.support(a)
                assert joint <= ar.support(b)

    @settings(max_examples=60, deadline=None)
    @given(action_rows)
    def test_confidence_in_unit_interval(self, rows):
        ar = AssociationRuleRecommender(session_gap=10**9)
        t = 0.0
        for user_n, item_n, action in rows:
            ar.observe(UserAction(f"u{user_n}", f"i{item_n}", action, t))
            t += 1.0
        for p in range(7):
            for q in range(7):
                if p != q:
                    assert 0.0 <= ar.confidence(f"i{p}", f"i{q}") <= 1.0


profiles_strategy = st.sampled_from(
    [
        UserProfile("a", gender="male", age=25, region="beijing"),
        UserProfile("b", gender="female", age=40, region="shanghai"),
        UserProfile("c"),
        None,
    ]
)


class TestCTRProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), profiles_strategy), max_size=60))
    def test_prediction_always_in_unit_interval(self, events):
        ctr = SituationalCTR(min_impressions=5.0)
        for clicked, profile in events:
            ctr.record_impression("ad", profile, 0.0)
            if clicked:
                ctr.record_click("ad", profile, 0.0)
        for __, profile in events[:5]:
            assert 0.0 <= ctr.predict("ad", profile, 0.0) <= 1.0

    def test_clicks_monotonically_raise_prediction(self):
        base = SituationalCTR(min_impressions=1.0)
        clicky = SituationalCTR(min_impressions=1.0)
        profile = UserProfile("u", gender="male", age=25, region="beijing")
        for __ in range(50):
            base.record_impression("ad", profile, 0.0)
            clicky.record_impression("ad", profile, 0.0)
        for __ in range(10):
            clicky.record_click("ad", profile, 0.0)
        assert clicky.predict("ad", profile, 0.0) > base.predict(
            "ad", profile, 0.0
        )


class TestUserBasedProperties:
    @settings(max_examples=40, deadline=None)
    @given(action_rows)
    def test_user_similarity_bounded_and_symmetric(self, rows):
        cf = UserBasedCF(linked_time=10**9)
        t = 0.0
        for user_n, item_n, action in rows:
            cf.observe(UserAction(f"u{user_n}", f"i{item_n}", action, t))
            t += 1.0
        for a in range(6):
            for b in range(a + 1, 6):
                sim = cf.similarity(f"u{a}", f"u{b}")
                assert 0.0 <= sim <= 1.0 + 1e-9
                assert sim == cf.similarity(f"u{b}", f"u{a}")


class TestBasicCFProperties:
    ratings_matrices = st.dictionaries(
        st.sampled_from([f"u{n}" for n in range(5)]),
        st.dictionaries(
            st.sampled_from([f"i{n}" for n in range(5)]),
            st.floats(min_value=0.5, max_value=5.0),
            max_size=5,
        ),
        max_size=5,
    )

    @settings(max_examples=60, deadline=None)
    @given(ratings_matrices)
    def test_cosine_similarity_bounded(self, ratings):
        model = BasicItemCF(method="cosine").fit(ratings)
        for p in range(5):
            for q in range(5):
                if p != q:
                    sim = model.similarity(f"i{p}", f"i{q}")
                    assert 0.0 <= sim <= 1.0 + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(ratings_matrices)
    def test_prediction_within_user_rating_range(self, ratings):
        model = BasicItemCF().fit(ratings)
        for user, user_ratings in ratings.items():
            if not user_ratings:
                continue
            low, high = min(user_ratings.values()), max(user_ratings.values())
            for item_n in range(5):
                prediction = model.predict(user, f"i{item_n}")
                if prediction > 0.0:  # only when computable
                    assert low - 1e-9 <= prediction <= high + 1e-9