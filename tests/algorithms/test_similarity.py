"""Tests for similarity state: lists, tables, and session windows."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.itemcf.similarity import (
    SessionWindowCounter,
    SimilarItemsList,
    SimilarityTable,
    WindowedSimilarityTable,
    pair_key,
)
from repro.errors import AlgorithmError, ConfigurationError


class TestPairKey:
    def test_canonical_order(self):
        assert pair_key("b", "a") == ("a", "b")
        assert pair_key("a", "b") == ("a", "b")

    def test_self_pair_rejected(self):
        with pytest.raises(AlgorithmError):
            pair_key("a", "a")


class TestSimilarItemsList:
    def test_keeps_top_k(self):
        lst = SimilarItemsList(k=3)
        for item, sim in [("a", 0.9), ("b", 0.5), ("c", 0.7), ("d", 0.8)]:
            lst.update(item, sim)
        assert [i for i, __ in lst.top()] == ["a", "d", "c"]

    def test_threshold_zero_until_full(self):
        lst = SimilarItemsList(k=3)
        lst.update("a", 0.9)
        assert lst.threshold() == 0.0
        lst.update("b", 0.5)
        lst.update("c", 0.7)
        assert lst.threshold() == 0.5

    def test_update_existing_entry_in_place(self):
        lst = SimilarItemsList(k=2)
        lst.update("a", 0.9)
        lst.update("a", 0.3)
        assert lst.similarity_of("a") == 0.3
        assert len(lst) == 1

    def test_weaker_candidate_rejected_when_full(self):
        lst = SimilarItemsList(k=2)
        lst.update("a", 0.9)
        lst.update("b", 0.8)
        lst.update("c", 0.1)
        assert "c" not in lst
        assert len(lst) == 2

    def test_existing_entry_can_decay_below_others(self):
        # an existing entry whose similarity drops must update, not evict
        lst = SimilarItemsList(k=2)
        lst.update("a", 0.9)
        lst.update("b", 0.8)
        lst.update("a", 0.1)  # decay: windowed counts shrink
        assert lst.similarity_of("a") == 0.1
        assert lst.threshold() == 0.1

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            SimilarItemsList(k=0)

    @given(st.lists(st.tuples(st.integers(0, 30), st.floats(0, 1)), max_size=100))
    def test_never_exceeds_k_and_keeps_best(self, updates):
        lst = SimilarItemsList(k=5)
        latest: dict[str, float] = {}
        for item_n, sim in updates:
            item = f"i{item_n}"
            lst.update(item, sim)
            latest[item] = sim
        assert len(lst) <= 5
        top = lst.top()
        assert all(lst.threshold() <= sim for __, sim in top)


class TestSimilarityTable:
    def test_similarity_formula(self):
        # Equation 5: sim = pairCount / (sqrt(ic_p) * sqrt(ic_q))
        table = SimilarityTable()
        table.add_item_delta("p", 4.0)
        table.add_item_delta("q", 9.0)
        table.add_pair_delta("p", "q", 3.0)
        assert table.similarity("p", "q") == pytest.approx(3.0 / (2.0 * 3.0))

    def test_zero_pair_count_is_zero_similarity(self):
        table = SimilarityTable()
        table.add_item_delta("p", 4.0)
        table.add_item_delta("q", 9.0)
        assert table.similarity("p", "q") == 0.0

    def test_incremental_deltas_accumulate(self):
        # Equation 8: counts update by deltas, similarity recomputed
        table = SimilarityTable()
        table.add_item_delta("p", 2.0)
        table.add_item_delta("p", 2.0)
        table.add_item_delta("q", 4.0)
        table.add_pair_delta("p", "q", 1.0)
        table.add_pair_delta("q", "p", 1.0)  # unordered pair
        assert table.item_count("p") == 4.0
        assert table.pair_count("p", "q") == 2.0
        assert table.similarity("p", "q") == pytest.approx(2.0 / 4.0)

    def test_refresh_pair_updates_both_lists(self):
        table = SimilarityTable(k=5)
        table.add_item_delta("p", 1.0)
        table.add_item_delta("q", 1.0)
        table.add_pair_delta("p", "q", 1.0)
        sim = table.refresh_pair("p", "q")
        assert table.top_similar("p") == [("q", sim)]
        assert table.top_similar("q") == [("p", sim)]

    def test_unknown_item_has_empty_list(self):
        assert SimilarityTable().top_similar("ghost") == []


class TestSessionWindowCounter:
    def test_sum_within_window(self):
        counter = SessionWindowCounter(session_seconds=10.0, window_sessions=3)
        counter.add("k", 1.0, now=5.0)    # session 0
        counter.add("k", 2.0, now=15.0)   # session 1
        counter.add("k", 4.0, now=25.0)   # session 2
        assert counter.value("k", now=25.0) == 7.0

    def test_old_sessions_expire(self):
        counter = SessionWindowCounter(session_seconds=10.0, window_sessions=2)
        counter.add("k", 1.0, now=5.0)    # session 0
        counter.add("k", 2.0, now=15.0)   # session 1
        assert counter.value("k", now=15.0) == 3.0
        assert counter.value("k", now=25.0) == 2.0   # session 0 expired
        assert counter.value("k", now=35.0) == 0.0   # all expired

    def test_same_session_accumulates_in_one_bucket(self):
        counter = SessionWindowCounter(session_seconds=10.0, window_sessions=2)
        counter.add("k", 1.0, now=1.0)
        counter.add("k", 1.0, now=9.0)
        assert counter.value("k", now=9.0) == 2.0

    def test_missing_key_is_zero(self):
        counter = SessionWindowCounter(10.0, 2)
        assert counter.value("ghost", now=0.0) == 0.0

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            SessionWindowCounter(0.0, 2)
        with pytest.raises(ConfigurationError):
            SessionWindowCounter(10.0, 0)

    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=500),
                st.floats(min_value=0.1, max_value=5.0),
            ),
            max_size=60,
        ),
        st.integers(min_value=1, max_value=10),
        st.floats(min_value=1.0, max_value=50.0),
    )
    def test_matches_bruteforce_window_sum(self, events, window, session_len):
        counter = SessionWindowCounter(session_len, window)
        events = sorted(events)
        for ts, delta in events:
            counter.add("k", delta, now=ts)
        if events:
            now = events[-1][0]
            current = int(now // session_len)
            expected = sum(
                delta
                for ts, delta in events
                if current - window < int(ts // session_len) <= current
            )
            assert counter.value("k", now) == pytest.approx(expected)


class TestWindowedSimilarityTable:
    def test_equation_10_windowed_similarity(self):
        table = WindowedSimilarityTable(
            k=5, session_seconds=10.0, window_sessions=2
        )
        table.add_item_delta("p", 4.0, now=5.0)
        table.add_item_delta("q", 4.0, now=5.0)
        table.add_pair_delta("p", "q", 4.0, now=5.0)
        assert table.similarity("p", "q", now=5.0) == pytest.approx(1.0)
        # one session later, still inside window W=2
        assert table.similarity("p", "q", now=15.0) == pytest.approx(1.0)
        # two sessions later, contributing session expired -> forgotten
        assert table.similarity("p", "q", now=25.0) == 0.0

    def test_fresh_sessions_replace_old_signal(self):
        table = WindowedSimilarityTable(
            k=5, session_seconds=10.0, window_sessions=2
        )
        table.add_item_delta("p", 2.0, now=0.0)
        table.add_item_delta("q", 2.0, now=0.0)
        table.add_pair_delta("p", "q", 2.0, now=0.0)
        # next session: p trends with r instead
        table.add_item_delta("p", 2.0, now=10.0)
        table.add_item_delta("r", 2.0, now=10.0)
        table.add_pair_delta("p", "r", 2.0, now=10.0)
        now = 25.0  # first session expired
        assert table.similarity("p", "q", now) == 0.0
        assert table.similarity("p", "r", now) > 0.0
