"""Tests for the Hoeffding-bound pruner (Section 4.1.4, Algorithm 1)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.itemcf.pruning import HoeffdingPruner, hoeffding_epsilon
from repro.errors import ConfigurationError


class TestEpsilon:
    def test_equation_9(self):
        # eps = sqrt(R^2 ln(1/delta) / (2n))
        delta, n = 0.01, 50
        expected = math.sqrt(math.log(1.0 / delta) / (2 * n))
        assert hoeffding_epsilon(n, delta) == pytest.approx(expected)

    def test_shrinks_with_observations(self):
        values = [hoeffding_epsilon(n, 0.001) for n in (1, 10, 100, 1000)]
        assert values == sorted(values, reverse=True)

    def test_zero_observations_is_infinite(self):
        assert hoeffding_epsilon(0, 0.001) == math.inf

    @given(
        st.integers(min_value=1, max_value=10**6),
        st.floats(min_value=1e-6, max_value=0.5),
    )
    def test_always_positive_finite(self, n, delta):
        eps = hoeffding_epsilon(n, delta)
        assert 0.0 < eps < math.inf


class TestHoeffdingPruner:
    def test_no_pruning_while_lists_have_room(self):
        # threshold 0 means any pair can still enter a list
        pruner = HoeffdingPruner(delta=0.001)
        for __ in range(1000):
            pruned = pruner.observe("a", "b", 0.0, 0.0, 0.0)
            assert not pruned
        assert not pruner.is_pruned("a", "b")

    def test_prunes_clearly_dissimilar_pair(self):
        pruner = HoeffdingPruner(delta=0.001)
        # similarity 0.01 against a threshold of 0.5: eps must fall below
        # 0.49, i.e. n > ln(1000)/(2*0.49^2) ~ 14.4
        pruned_at = None
        for n in range(1, 100):
            if pruner.observe("a", "b", 0.01, 0.5, 0.5):
                pruned_at = n
                break
        assert pruned_at is not None
        assert 10 <= pruned_at <= 20
        assert pruner.is_pruned("a", "b")
        assert pruner.is_pruned("b", "a")  # bidirectional (lines 15-16)

    def test_does_not_prune_similar_pair(self):
        pruner = HoeffdingPruner(delta=0.001)
        for __ in range(10_000):
            assert not pruner.observe("a", "b", 0.6, 0.5, 0.5)

    def test_uses_min_of_thresholds(self):
        # t = min(t1, t2) (line 12): a roomy list on one side blocks pruning
        pruner = HoeffdingPruner(delta=0.001)
        for __ in range(1000):
            assert not pruner.observe("a", "b", 0.01, 0.9, 0.0)

    def test_observation_counts_tracked_per_pair(self):
        pruner = HoeffdingPruner()
        pruner.observe("a", "b", 0.5, 0.0, 0.0)
        pruner.observe("a", "b", 0.5, 0.0, 0.0)
        pruner.observe("a", "c", 0.5, 0.0, 0.0)
        assert pruner.observations("a", "b") == 2
        assert pruner.observations("b", "a") == 2
        assert pruner.observations("a", "c") == 1

    def test_pruned_pairs_counter(self):
        pruner = HoeffdingPruner(delta=0.001)
        for __ in range(50):
            pruner.observe("a", "b", 0.0, 0.8, 0.8)
        assert pruner.pruned_pairs == 1

    def test_unprune(self):
        pruner = HoeffdingPruner(delta=0.001)
        for __ in range(50):
            pruner.observe("a", "b", 0.0, 0.8, 0.8)
        pruner.unprune("a", "b")
        assert not pruner.is_pruned("a", "b")

    def test_invalid_delta(self):
        with pytest.raises(ConfigurationError):
            HoeffdingPruner(delta=0.0)
        with pytest.raises(ConfigurationError):
            HoeffdingPruner(delta=1.0)

    def test_invalid_range(self):
        with pytest.raises(ConfigurationError):
            HoeffdingPruner(value_range=0.0)

    def test_smaller_delta_prunes_later(self):
        def first_prune(delta):
            pruner = HoeffdingPruner(delta=delta)
            for n in range(1, 10_000):
                if pruner.observe("a", "b", 0.05, 0.4, 0.4):
                    return n
            return None

        lax = first_prune(0.05)
        strict = first_prune(1e-6)
        assert lax is not None and strict is not None
        assert strict > lax
