"""Tests for the association-rule recommender."""

import pytest

from repro.algorithms.association_rules import AssociationRuleRecommender
from repro.errors import ConfigurationError
from repro.types import UserAction


def feed(ar, rows):
    for user, item, ts in rows:
        ar.observe(UserAction(user, item, "click", ts))


class TestCounting:
    def test_supports_counted_per_session(self):
        ar = AssociationRuleRecommender(session_gap=100.0)
        feed(ar, [("u1", "A", 0.0), ("u1", "B", 10.0),
                  ("u2", "A", 0.0), ("u2", "B", 5.0)])
        assert ar.support("A") == 2
        assert ar.pair_support("A", "B") == 2

    def test_repeat_item_in_session_counted_once(self):
        ar = AssociationRuleRecommender(session_gap=100.0)
        feed(ar, [("u1", "A", 0.0), ("u1", "A", 10.0), ("u1", "A", 20.0)])
        assert ar.support("A") == 1

    def test_session_gap_splits_sessions(self):
        ar = AssociationRuleRecommender(session_gap=50.0)
        feed(ar, [("u1", "A", 0.0), ("u1", "B", 500.0)])
        assert ar.pair_support("A", "B") == 0
        assert ar.support("A") == 1
        assert ar.support("B") == 1

    def test_confidence(self):
        ar = AssociationRuleRecommender(session_gap=100.0)
        feed(ar, [("u1", "A", 0.0), ("u1", "B", 1.0),
                  ("u2", "A", 0.0), ("u2", "B", 1.0),
                  ("u3", "A", 0.0), ("u3", "C", 1.0),
                  ("u4", "A", 0.0)])
        assert ar.confidence("A", "B") == pytest.approx(2 / 4)
        assert ar.confidence("B", "A") == pytest.approx(1.0)

    def test_confidence_unknown_item(self):
        ar = AssociationRuleRecommender()
        assert ar.confidence("ghost", "B") == 0.0


class TestRules:
    def test_rules_require_min_support(self):
        ar = AssociationRuleRecommender(session_gap=100.0, min_support=2)
        feed(ar, [("u1", "A", 0.0), ("u1", "B", 1.0)])
        assert ar.rules_from("A") == []
        feed(ar, [("u2", "A", 0.0), ("u2", "B", 1.0)])
        assert [r[0] for r in ar.rules_from("A")] == ["B"]

    def test_rules_require_min_confidence(self):
        ar = AssociationRuleRecommender(
            session_gap=100.0, min_support=1, min_confidence=0.9
        )
        feed(ar, [("u1", "A", 0.0), ("u1", "B", 1.0),
                  ("u2", "A", 0.0)])
        assert ar.rules_from("A") == []  # conf 0.5 < 0.9
        assert [r[0] for r in ar.rules_from("B")] == ["A"]  # conf 1.0

    def test_rules_ranked_by_confidence(self):
        ar = AssociationRuleRecommender(session_gap=100.0, min_support=1)
        feed(ar, [("u1", "A", 0.0), ("u1", "B", 1.0), ("u1", "C", 2.0),
                  ("u2", "A", 0.0), ("u2", "B", 1.0),
                  ("u3", "A", 0.0)])
        rules = ar.rules_from("A")
        assert [r[0] for r in rules] == ["B", "C"]


class TestRecommendation:
    def test_recommends_from_current_session(self):
        ar = AssociationRuleRecommender(session_gap=100.0, min_support=1)
        feed(ar, [("u1", "A", 0.0), ("u1", "B", 1.0),
                  ("u2", "A", 0.0), ("u2", "B", 1.0)])
        ar.observe(UserAction("shopper", "A", "click", 200.0))
        recs = ar.recommend("shopper", 3, now=201.0)
        assert recs and recs[0].item_id == "B"

    def test_expired_session_gives_nothing(self):
        ar = AssociationRuleRecommender(session_gap=50.0, min_support=1)
        feed(ar, [("u1", "A", 0.0), ("u1", "B", 1.0)])
        ar.observe(UserAction("shopper", "A", "click", 100.0))
        assert ar.recommend("shopper", 3, now=1000.0) == []

    def test_session_items_not_recommended_back(self):
        ar = AssociationRuleRecommender(session_gap=100.0, min_support=1)
        feed(ar, [("u1", "A", 0.0), ("u1", "B", 1.0)])
        ar.observe(UserAction("shopper", "A", "click", 200.0))
        ar.observe(UserAction("shopper", "B", "click", 201.0))
        recs = ar.recommend("shopper", 3, now=202.0)
        assert all(r.item_id not in ("A", "B") for r in recs)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AssociationRuleRecommender(session_gap=0.0)
        with pytest.raises(ConfigurationError):
            AssociationRuleRecommender(min_support=0)
        with pytest.raises(ConfigurationError):
            AssociationRuleRecommender(min_confidence=1.5)
