"""Tests for Equation 2 prediction with recent-k filtering (Section 4.3)."""

import pytest

from repro.algorithms.filtering import RecentItemsTracker
from repro.algorithms.itemcf.predictor import ItemCFPredictor
from repro.algorithms.itemcf.similarity import SimilarityTable
from repro.types import Recommendation


def build_table(sims):
    """sims: list of (p, q, pair_count, ic_p, ic_q) -> SimilarityTable."""
    table = SimilarityTable(k=10)
    counts: dict[str, float] = {}
    for p, q, pc, icp, icq in sims:
        counts[p] = max(counts.get(p, 0.0), icp)
        counts[q] = max(counts.get(q, 0.0), icq)
    for item, count in counts.items():
        table.add_item_delta(item, count)
    for p, q, pc, __, ___ in sims:
        table.add_pair_delta(p, q, pc)
        table.refresh_pair(p, q)
    return table


class TestPredictor:
    def setup_method(self):
        # sim(A,B)=0.8, sim(A,C)=0.2 with itemCounts 1 (pairCount == sim)
        self.table = build_table(
            [("A", "B", 0.8, 1.0, 1.0), ("A", "C", 0.2, 1.0, 1.0)]
        )
        self.recent = RecentItemsTracker(k=5)

    def test_equation_2_score(self):
        self.recent.observe("u", "B", rating=2.0, now=0.0)
        self.recent.observe("u", "C", rating=4.0, now=1.0)
        predictor = ItemCFPredictor(self.table, self.recent)
        recs = predictor.predict("u", 5, now=2.0)
        a = next(r for r in recs if r.item_id == "A")
        expected = (0.8 * 2.0 + 0.2 * 4.0) / (0.8 + 0.2)
        assert a.score == pytest.approx(expected)

    def test_excluded_items_never_returned(self):
        self.recent.observe("u", "B", rating=2.0, now=0.0)
        predictor = ItemCFPredictor(self.table, self.recent)
        recs = predictor.predict("u", 5, now=1.0, exclude={"A"})
        assert all(r.item_id != "A" for r in recs)

    def test_no_history_no_recommendations(self):
        predictor = ItemCFPredictor(self.table, self.recent)
        assert predictor.predict("ghost", 5, now=0.0) == []

    def test_complement_fills_remaining_slots(self):
        self.recent.observe("u", "B", rating=2.0, now=0.0)
        predictor = ItemCFPredictor(self.table, self.recent)

        def complement(count):
            return [
                Recommendation(f"hot{i}", 1.0, source="db") for i in range(count)
            ]

        recs = predictor.predict("u", 4, now=1.0, complement=complement)
        assert len(recs) == 4
        sources = [r.source for r in recs]
        assert "cf" in sources and "db" in sources

    def test_complement_never_duplicates_cf_results(self):
        self.recent.observe("u", "B", rating=2.0, now=0.0)
        predictor = ItemCFPredictor(self.table, self.recent)

        def complement(count):
            return [Recommendation("A", 1.0, source="db")] + [
                Recommendation(f"hot{i}", 1.0, source="db") for i in range(count)
            ]

        recs = predictor.predict("u", 3, now=1.0, complement=complement)
        assert len([r for r in recs if r.item_id == "A"]) == 1

    def test_min_similarity_filters_weak_neighbours(self):
        self.recent.observe("u", "C", rating=4.0, now=0.0)
        predictor = ItemCFPredictor(self.table, self.recent, min_similarity=0.5)
        # only neighbour of C is A at sim 0.2 -> filtered out
        assert predictor.predict("u", 5, now=1.0) == []

    def test_only_recent_k_items_contribute(self):
        recent = RecentItemsTracker(k=1)
        recent.observe("u", "B", rating=2.0, now=0.0)
        recent.observe("u", "C", rating=4.0, now=1.0)  # evicts B
        predictor = ItemCFPredictor(self.table, recent)
        recs = predictor.predict("u", 5, now=2.0)
        a = next(r for r in recs if r.item_id == "A")
        # only C contributes: score = (0.2*4)/0.2 = 4
        assert a.score == pytest.approx(4.0)


class TestRecentItemsTracker:
    def test_newest_first(self):
        tracker = RecentItemsTracker(k=3)
        tracker.observe("u", "A", 1.0, 0.0)
        tracker.observe("u", "B", 2.0, 1.0)
        assert [item for item, __, ___ in tracker.recent("u")] == ["B", "A"]

    def test_capacity_evicts_oldest(self):
        tracker = RecentItemsTracker(k=2)
        for i, item in enumerate(["A", "B", "C"]):
            tracker.observe("u", item, 1.0, float(i))
        items = [item for item, __, ___ in tracker.recent("u")]
        assert items == ["C", "B"]

    def test_reobserve_moves_to_front(self):
        tracker = RecentItemsTracker(k=3)
        for i, item in enumerate(["A", "B", "C"]):
            tracker.observe("u", item, 1.0, float(i))
        tracker.observe("u", "A", 5.0, 3.0)
        items = [item for item, __, ___ in tracker.recent("u")]
        assert items == ["A", "C", "B"]
        assert tracker.recent("u")[0][1] == 5.0

    def test_forget_user(self):
        tracker = RecentItemsTracker(k=2)
        tracker.observe("u", "A", 1.0, 0.0)
        tracker.forget_user("u")
        assert not tracker.has_history("u")
