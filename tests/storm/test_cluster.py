"""Integration tests for the simulated local cluster."""

import pytest

from repro.errors import ClusterStateError
from repro.storm import (
    FieldsGrouping,
    GlobalGrouping,
    LocalCluster,
    ShuffleGrouping,
    TopologyBuilder,
)
from repro.utils.clock import SimClock

from tests.storm.helpers import (
    CollectBolt,
    CountBolt,
    ExplodingBolt,
    ListSpout,
    SplitBolt,
)

SENTENCES = [
    ("the cat sat on the mat",),
    ("the dog sat on the log",),
    ("the cat chased the dog",),
]


def wordcount_topology(count_parallelism=3):
    builder = TopologyBuilder("wordcount")
    builder.add_spout("spout", lambda: ListSpout(SENTENCES, ("sentence",)))
    builder.add_bolt("split", SplitBolt, parallelism=2).grouping(
        "spout", ShuffleGrouping()
    )
    builder.add_bolt("count", CountBolt, parallelism=count_parallelism).grouping(
        "split", FieldsGrouping(["word"]), stream_id="words"
    )
    return builder.build()


def merged_counts(cluster, topology_name, component, parallelism):
    merged: dict[str, int] = {}
    for index in range(parallelism):
        bolt = cluster.task_instance(topology_name, component, index)
        for key, value in bolt.counts.items():
            merged[key] = merged.get(key, 0) + value
    return merged


class TestWordCount:
    def test_counts_are_correct(self):
        cluster = LocalCluster()
        cluster.submit(wordcount_topology())
        cluster.run_until_idle()
        counts = merged_counts(cluster, "wordcount", "count", 3)
        assert counts["the"] == 6
        assert counts["cat"] == 2
        assert counts["sat"] == 2
        assert counts["log"] == 1

    def test_fields_grouping_pins_key_to_single_task(self):
        cluster = LocalCluster()
        cluster.submit(wordcount_topology(count_parallelism=4))
        cluster.run_until_idle()
        holders = []
        for index in range(4):
            bolt = cluster.task_instance("wordcount", "count", index)
            if "the" in bolt.counts:
                holders.append(index)
        assert len(holders) == 1
        only = cluster.task_instance("wordcount", "count", holders[0])
        assert only.counts["the"] == 6

    def test_metrics_track_execution(self):
        cluster = LocalCluster()
        metrics = cluster.submit(wordcount_topology())
        cluster.run_until_idle()
        assert metrics.component_executed("split") == 3
        total_words = sum(len(s[0].split()) for s in SENTENCES)
        assert metrics.component_executed("count") == total_words
        assert metrics.component_emitted("spout") == 3

    def test_run_is_deterministic(self):
        results = []
        for _ in range(2):
            cluster = LocalCluster()
            cluster.submit(wordcount_topology())
            cluster.run_until_idle()
            per_task = {
                index: dict(
                    cluster.task_instance("wordcount", "count", index).counts
                )
                for index in range(3)
            }
            results.append(per_task)
        assert results[0] == results[1]


class TestClusterLifecycle:
    def test_double_submit_rejected(self):
        cluster = LocalCluster()
        cluster.submit(wordcount_topology())
        with pytest.raises(ClusterStateError, match="already submitted"):
            cluster.submit(wordcount_topology())

    def test_kill_topology_removes_it(self):
        cluster = LocalCluster()
        cluster.submit(wordcount_topology())
        cluster.kill_topology("wordcount")
        with pytest.raises(KeyError):
            cluster.metrics("wordcount")

    def test_two_topologies_run_independently(self):
        cluster = LocalCluster()
        cluster.submit(wordcount_topology())
        builder = TopologyBuilder("other")
        builder.add_spout("s", lambda: ListSpout([("a",), ("b",)], ("word",)))
        builder.add_bolt("c", CountBolt).grouping("s", GlobalGrouping())
        cluster.submit(builder.build())
        cluster.run_until_idle()
        assert merged_counts(cluster, "wordcount", "count", 3)["the"] == 6
        other = cluster.task_instance("other", "c", 0)
        assert other.counts == {"a": 1, "b": 1}


class TestAcking:
    def ack_topology(self):
        builder = TopologyBuilder("acked")
        builder.add_spout(
            "spout",
            lambda: ListSpout(SENTENCES, ("sentence",), ack_ids=True),
        )
        builder.add_bolt("split", SplitBolt).grouping("spout", ShuffleGrouping())
        builder.add_bolt("count", CountBolt).grouping(
            "split", FieldsGrouping(["word"]), stream_id="words"
        )
        return builder.build()

    def test_spout_receives_acks_for_complete_trees(self):
        cluster = LocalCluster()
        metrics = cluster.submit(self.ack_topology())
        cluster.run_until_idle()
        spout = cluster.task_instance("acked", "spout", 0)
        assert sorted(spout.acked) == [0, 1, 2]
        assert spout.failed == []
        assert metrics.trees_completed == 3
        assert metrics.trees_failed == 0

    def test_exception_fails_tree(self):
        builder = TopologyBuilder("failing")
        builder.add_spout(
            "spout", lambda: ListSpout([("ok",), ("bad",)], ("word",), ack_ids=True)
        )
        builder.add_bolt("boom", lambda: ExplodingBolt("bad")).grouping(
            "spout", ShuffleGrouping()
        )
        cluster = LocalCluster()
        cluster.submit(builder.build())
        with pytest.raises(ValueError, match="boom"):
            cluster.run_until_idle()
        spout = cluster.task_instance("failing", "spout", 0)
        assert 1 in spout.failed


class TestFailureInjection:
    def test_killed_task_loses_local_state(self):
        cluster = LocalCluster()
        cluster.submit(wordcount_topology(count_parallelism=1))
        cluster.run_until_idle()
        before = dict(cluster.task_instance("wordcount", "count", 0).counts)
        assert before
        cluster.kill_task("wordcount", "count", 0)
        after = cluster.task_instance("wordcount", "count", 0).counts
        assert after == {}
        assert cluster.metrics("wordcount").task_restarts == 1

    def test_kill_unknown_task_rejected(self):
        cluster = LocalCluster()
        cluster.submit(wordcount_topology())
        with pytest.raises(ClusterStateError):
            cluster.kill_task("wordcount", "count", 99)

    def test_kill_worker_restarts_all_its_tasks(self):
        cluster = LocalCluster(num_supervisors=1, slots_per_supervisor=1)
        cluster.submit(wordcount_topology(count_parallelism=2))
        cluster.run_until_idle()
        worker = cluster.assignment_of("wordcount", "count", 0)
        cluster.kill_worker(worker)
        # single slot => everything was on it
        assert cluster.metrics("wordcount").task_restarts == 5

    def test_queued_tuples_survive_task_restart(self):
        builder = TopologyBuilder("replay")
        builder.add_spout("s", lambda: ListSpout([("a",), ("b",)], ("word",)))
        builder.add_bolt("c", CollectBolt).grouping("s", GlobalGrouping())
        cluster = LocalCluster()
        cluster.submit(builder.build())
        # poll the spout without draining, then kill the bolt
        for run in cluster._running.values():
            for task in run.tasks.values():
                if task.component_name == "s":
                    task.instance.next_tuple()
                    task.instance.next_tuple()
        cluster.kill_task("replay", "c", 0)
        cluster.run_until_idle()
        bolt = cluster.task_instance("replay", "c", 0)
        assert bolt.seen == [("a",), ("b",)]


class TestTicks:
    def test_ticks_fire_when_clock_crosses_interval(self):
        class TickingBolt(CollectBolt):
            def __init__(self):
                super().__init__()
                self.ticks = []

            def tick(self, now):
                self.ticks.append(now)

        clock = SimClock()

        class AdvancingSpout(ListSpout):
            def next_tuple(self):
                clock.advance(10.0)
                return super().next_tuple()

        builder = TopologyBuilder("ticking")
        builder.add_spout(
            "s", lambda: AdvancingSpout([("a",)] * 5, ("word",))
        )
        builder.add_bolt("t", TickingBolt).grouping("s", GlobalGrouping())
        cluster = LocalCluster(clock=clock, tick_interval=20.0)
        cluster.submit(builder.build())
        cluster.run_until_idle()
        bolt = cluster.task_instance("ticking", "t", 0)
        # 5 polls x 10s = 50s simulated; interval ticks at 20s and 40s,
        # plus the final flush tick at end of stream.
        assert len(bolt.ticks) >= 3
