"""Unit tests for StormTuple and stream declarations."""

import pytest

from repro.errors import TopologyError
from repro.storm.streams import DEFAULT_STREAM, OutputDeclaration, StreamDef
from repro.storm.tuples import StormTuple


def make_tuple(values=(1, "news-1", "click"), fields=("user", "item", "action")):
    return StormTuple(values, fields, "user_action", "spout")


class TestStormTuple:
    def test_field_access_by_name(self):
        tup = make_tuple()
        assert tup.value("user") == 1
        assert tup["item"] == "news-1"
        assert tup["action"] == "click"

    def test_unknown_field_raises(self):
        with pytest.raises(TopologyError, match="nope"):
            make_tuple().value("nope")

    def test_value_count_must_match_fields(self):
        with pytest.raises(TopologyError, match="2 values for 3 fields"):
            StormTuple((1, 2), ("a", "b", "c"), "s", "src")

    def test_select_returns_values_in_requested_order(self):
        tup = make_tuple()
        assert tup.select(("action", "user")) == ("click", 1)

    def test_as_dict_round_trip(self):
        tup = make_tuple()
        assert tup.as_dict() == {"user": 1, "item": "news-1", "action": "click"}

    def test_iteration_and_length(self):
        tup = make_tuple()
        assert list(tup) == [1, "news-1", "click"]
        assert len(tup) == 3

    def test_values_are_immutable_tuple(self):
        assert isinstance(make_tuple().values, tuple)

    def test_repr_mentions_source_and_stream(self):
        rep = repr(make_tuple())
        assert "user_action" in rep
        assert "spout" in rep


class TestStreamDef:
    def test_rejects_empty_stream_id(self):
        with pytest.raises(TopologyError):
            StreamDef("", ("a",))

    def test_rejects_empty_fields(self):
        with pytest.raises(TopologyError):
            StreamDef("s", ())

    def test_rejects_duplicate_fields(self):
        with pytest.raises(TopologyError, match="duplicate"):
            StreamDef("s", ("a", "a"))


class TestOutputDeclaration:
    def test_declare_and_fetch(self):
        decl = OutputDeclaration()
        decl.declare(("user", "item"))
        stream = decl.stream(DEFAULT_STREAM)
        assert stream.fields == ("user", "item")

    def test_duplicate_stream_rejected(self):
        decl = OutputDeclaration()
        decl.declare(("a",), "s")
        with pytest.raises(TopologyError, match="declared twice"):
            decl.declare(("b",), "s")

    def test_missing_stream_raises_with_known_streams(self):
        decl = OutputDeclaration()
        decl.declare(("a",), "known")
        with pytest.raises(TopologyError, match="known"):
            decl.stream("missing")
