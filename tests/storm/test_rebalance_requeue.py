"""Rebalance re-queue tests.

When ``rebalance`` changes a component's task count, the tuples waiting
in the torn-down tasks' queues must be re-routed through the component's
groupings against the *new* parallelism — landing on exactly the task
the grouping names, with nothing lost and nothing duplicated. Covered
for fields grouping (grow and shrink) and shuffle grouping, with the
rebalance fired mid-drain via an execute hook (the autoscaler's timing).
"""

import pytest

from repro.errors import ClusterStateError
from repro.storm import (
    FieldsGrouping,
    LocalCluster,
    ShuffleGrouping,
    TopologyBuilder,
)
from repro.utils.hashing import stable_hash

from tests.storm.helpers import CountBolt, ListSpout, SplitBolt

SENTENCES = [
    ("the quick brown fox jumps over the lazy dog",),
    ("pack my box with five dozen liquor jugs",),
    ("how vexingly quick daft zebras jump",),
    ("sphinx of black quartz judge my vow",),
]
TOTAL_WORDS = sum(len(s[0].split()) for s in SENTENCES)


def build(grouping, parallelism):
    builder = TopologyBuilder("requeue")
    builder.add_spout("spout", lambda: ListSpout(SENTENCES, ("sentence",)))
    builder.add_bolt("split", SplitBolt, parallelism=1).grouping(
        "spout", ShuffleGrouping()
    )
    builder.add_bolt("count", CountBolt, parallelism=parallelism).grouping(
        "split", grouping, stream_id="words"
    )
    return builder.build()


def run_with_midstream_rebalance(grouping, start, end):
    """Run wordcount, rebalancing count start->end while tuples pend."""
    cluster = LocalCluster()
    cluster.submit(build(grouping, start))
    state = {"fired": False, "pending_at_rebalance": 0}

    def fire_once(topology_name):
        if state["fired"]:
            return
        pending = cluster.queue_depths(topology_name).get("count", 0)
        if pending == 0:
            return  # nothing queued yet; wait for the splitter to emit
        state["fired"] = True
        state["pending_at_rebalance"] = pending
        cluster.rebalance(topology_name, "count", end)

    cluster.add_execute_hook(fire_once)
    cluster.run_until_idle()
    assert state["fired"], "rebalance never fired mid-drain"
    assert state["pending_at_rebalance"] > 0
    return cluster


def executed_total(cluster, parallelism):
    metrics = cluster.metrics("requeue")
    return sum(
        metrics.task("count", i).executed for i in range(parallelism)
    )


class TestFieldsGroupingRequeue:
    def test_grow_lands_pending_on_hash_correct_tasks(self):
        cluster = run_with_midstream_rebalance(
            FieldsGrouping(["word"]), start=2, end=8
        )
        # nothing lost, nothing duplicated: every split word executed once
        assert executed_total(cluster, 8) == TOTAL_WORDS
        # surviving instances hold only post-rebalance tuples; each word
        # must be exactly where the grouping maps it at parallelism 8
        for index in range(8):
            bolt = cluster.task_instance("requeue", "count", index)
            for word in bolt.counts:
                assert stable_hash((word,)) % 8 == index, (
                    f"{word!r} misrouted to task {index}"
                )

    def test_shrink_lands_pending_on_hash_correct_tasks(self):
        cluster = run_with_midstream_rebalance(
            FieldsGrouping(["word"]), start=4, end=2
        )
        assert executed_total(cluster, 4) == TOTAL_WORDS
        for index in range(2):
            bolt = cluster.task_instance("requeue", "count", index)
            for word in bolt.counts:
                assert stable_hash((word,)) % 2 == index

    def test_shrink_to_one_routes_everything_to_task_zero(self):
        cluster = run_with_midstream_rebalance(
            FieldsGrouping(["word"]), start=3, end=1
        )
        assert executed_total(cluster, 3) == TOTAL_WORDS
        assert cluster.parallelism_of("requeue", "count") == 1


class TestShuffleGroupingRequeue:
    def test_grow_keeps_every_tuple_exactly_once(self):
        cluster = run_with_midstream_rebalance(
            ShuffleGrouping(), start=2, end=6
        )
        assert executed_total(cluster, 6) == TOTAL_WORDS

    def test_shrink_keeps_every_tuple_exactly_once(self):
        cluster = run_with_midstream_rebalance(
            ShuffleGrouping(), start=4, end=2
        )
        assert executed_total(cluster, 4) == TOTAL_WORDS


class TestRebalanceErrors:
    """Satellite: all rebalance misuse raises ClusterStateError, like
    every sibling state-validation error in LocalCluster."""

    def test_nonpositive_parallelism(self):
        cluster = LocalCluster()
        cluster.submit(build(FieldsGrouping(["word"]), 2))
        for bad in (0, -3):
            with pytest.raises(ClusterStateError, match="positive"):
                cluster.rebalance("requeue", "count", bad)

    def test_unknown_topology_and_component(self):
        cluster = LocalCluster()
        cluster.submit(build(FieldsGrouping(["word"]), 2))
        with pytest.raises(ClusterStateError, match="unknown topology"):
            cluster.rebalance("nope", "count", 4)
        with pytest.raises(ClusterStateError, match="unknown component"):
            cluster.rebalance("requeue", "nope", 4)

    def test_spout_rebalance_rejected(self):
        cluster = LocalCluster()
        cluster.submit(build(FieldsGrouping(["word"]), 2))
        with pytest.raises(ClusterStateError, match="spout"):
            cluster.rebalance("requeue", "spout", 4)
