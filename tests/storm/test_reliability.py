"""Tests for at-least-once delivery with the replaying spout."""

import pytest

from repro.errors import ConfigurationError
from repro.storm import GlobalGrouping, LocalCluster, TopologyBuilder
from repro.storm.component import Bolt
from repro.storm.reliability import ReplayingSpout


class FlakyBolt(Bolt):
    """Manually acks; fails each value a configurable number of times."""

    manual_ack = True

    def __init__(self, failures_per_value=1, poison=None):
        self._failures_per_value = failures_per_value
        self._poison = poison
        self._seen: dict[object, int] = {}
        self.processed: list[object] = []

    def execute(self, tup):
        value = tup["value"]
        count = self._seen.get(value, 0) + 1
        self._seen[value] = count
        always_fails = self._poison is not None and value == self._poison
        if always_fails or count <= self._failures_per_value:
            self.collector.fail(tup)
            return
        self.processed.append(value)
        self.collector.ack(tup)


def run_reliable(rows, bolt_factory, max_retries=3):
    builder = TopologyBuilder("reliable")
    builder.add_spout(
        "spout",
        lambda: ReplayingSpout(rows, ("value",), max_retries=max_retries),
    )
    builder.add_bolt("flaky", bolt_factory).grouping("spout", GlobalGrouping())
    cluster = LocalCluster()
    cluster.submit(builder.build())
    cluster.run_until_idle()
    spout = cluster.task_instance("reliable", "spout", 0)
    bolt = cluster.task_instance("reliable", "flaky", 0)
    return spout, bolt


class TestReplayingSpout:
    def test_failed_tuples_are_replayed_until_processed(self):
        rows = [("a",), ("b",), ("c",)]
        spout, bolt = run_reliable(rows, lambda: FlakyBolt(failures_per_value=2))
        assert sorted(bolt.processed) == ["a", "b", "c"]
        assert spout.replays == 6  # two failures per value
        assert spout.completed == 3
        assert spout.fully_processed()

    def test_poison_message_goes_to_dead_letters(self):
        rows = [("ok",), ("poison",)]
        spout, bolt = run_reliable(
            rows,
            lambda: FlakyBolt(failures_per_value=0, poison="poison"),
            max_retries=2,
        )
        assert bolt.processed == ["ok"]
        assert spout.dead_letters == [("poison",)]
        assert spout.fully_processed()

    def test_clean_stream_no_replays(self):
        rows = [(n,) for n in range(5)]
        spout, bolt = run_reliable(rows, lambda: FlakyBolt(failures_per_value=0))
        assert spout.replays == 0
        assert spout.completed == 5
        assert bolt.processed == [0, 1, 2, 3, 4]

    def test_invalid_retries(self):
        with pytest.raises(ConfigurationError):
            ReplayingSpout([], ("value",), max_retries=-1)
