"""Tests for at-least-once delivery with the replaying spout."""

import pytest

from repro.errors import ConfigurationError
from repro.storm import GlobalGrouping, LocalCluster, TopologyBuilder
from repro.storm.component import Bolt
from repro.storm.reliability import ReplayingSpout


class FlakyBolt(Bolt):
    """Manually acks; fails each value a configurable number of times."""

    manual_ack = True

    def __init__(self, failures_per_value=1, poison=None):
        self._failures_per_value = failures_per_value
        self._poison = poison
        self._seen: dict[object, int] = {}
        self.processed: list[object] = []

    def execute(self, tup):
        value = tup["value"]
        count = self._seen.get(value, 0) + 1
        self._seen[value] = count
        always_fails = self._poison is not None and value == self._poison
        if always_fails or count <= self._failures_per_value:
            self.collector.fail(tup)
            return
        self.processed.append(value)
        self.collector.ack(tup)


def run_reliable(rows, bolt_factory, max_retries=3):
    builder = TopologyBuilder("reliable")
    builder.add_spout(
        "spout",
        lambda: ReplayingSpout(rows, ("value",), max_retries=max_retries),
    )
    builder.add_bolt("flaky", bolt_factory).grouping("spout", GlobalGrouping())
    cluster = LocalCluster()
    cluster.submit(builder.build())
    cluster.run_until_idle()
    spout = cluster.task_instance("reliable", "spout", 0)
    bolt = cluster.task_instance("reliable", "flaky", 0)
    return spout, bolt


class TestReplayingSpout:
    def test_failed_tuples_are_replayed_until_processed(self):
        rows = [("a",), ("b",), ("c",)]
        spout, bolt = run_reliable(rows, lambda: FlakyBolt(failures_per_value=2))
        assert sorted(bolt.processed) == ["a", "b", "c"]
        assert spout.replays == 6  # two failures per value
        assert spout.completed == 3
        assert spout.fully_processed()

    def test_poison_message_goes_to_dead_letters(self):
        rows = [("ok",), ("poison",)]
        spout, bolt = run_reliable(
            rows,
            lambda: FlakyBolt(failures_per_value=0, poison="poison"),
            max_retries=2,
        )
        assert bolt.processed == ["ok"]
        assert [letter.row for letter in spout.dead_letters] == [("poison",)]
        # retry metadata survives: which message, and how many attempts
        letter = spout.dead_letters[0]
        assert letter.message_id == 1
        assert letter.failures == 3  # initial try + max_retries replays
        assert spout.fully_processed()

    def test_clean_stream_no_replays(self):
        rows = [(n,) for n in range(5)]
        spout, bolt = run_reliable(rows, lambda: FlakyBolt(failures_per_value=0))
        assert spout.replays == 0
        assert spout.completed == 5
        assert bolt.processed == [0, 1, 2, 3, 4]

    def test_invalid_retries(self):
        with pytest.raises(ConfigurationError):
            ReplayingSpout([], ("value",), max_retries=-1)


class HoldingBolt(Bolt):
    """Manually acks, but only when told to: holds every tuple it gets."""

    manual_ack = True

    def __init__(self):
        self.held: list = []

    def execute(self, tup):
        self.held.append(tup)

    def release_all(self):
        for tup in self.held:
            self.collector.ack(tup)
        self.held.clear()


def run_capped(rows, bolt_factory, max_in_flight, max_rounds):
    builder = TopologyBuilder("capped")
    builder.add_spout(
        "spout",
        lambda: ReplayingSpout(rows, ("value",), max_in_flight=max_in_flight),
    )
    builder.add_bolt("sink", bolt_factory).grouping("spout", GlobalGrouping())
    cluster = LocalCluster()
    cluster.submit(builder.build())
    cluster.run_until_idle(max_rounds=max_rounds)
    spout = cluster.task_instance("capped", "spout", 0)
    bolt = cluster.task_instance("capped", "sink", 0)
    return cluster, spout, bolt


class TestMaxInFlightBackpressure:
    def test_cap_bounds_pending_while_acks_are_withheld(self):
        rows = [(n,) for n in range(10)]
        cluster, spout, bolt = run_capped(
            rows, HoldingBolt, max_in_flight=2, max_rounds=8
        )
        # the window filled and stayed full: no further emissions, only
        # throttled polls, regardless of how many rounds the cluster ran
        assert spout.in_flight() == 2
        assert len(bolt.held) == 2
        assert spout.max_in_flight_seen == 2
        assert spout.throttled >= 6

        # acking reopens the window two tuples at a time; the stream
        # still finishes completely under the cap
        for _ in range(20):
            bolt.release_all()
            cluster.run_until_idle(max_rounds=4)
            if spout.fully_processed():
                break
        bolt.release_all()
        cluster.run_until_idle(max_rounds=4)
        assert spout.fully_processed()
        assert spout.completed == 10
        assert spout.max_in_flight_seen == 2

    def test_uncapped_pending_grows_with_the_whole_input(self):
        # the regression the cap exists to prevent: with acks withheld
        # and no cap, every remaining row ends up in flight at once
        rows = [(n,) for n in range(10)]
        __, spout, bolt = run_capped(
            rows, HoldingBolt, max_in_flight=None, max_rounds=15
        )
        assert spout.in_flight() == 10
        assert len(bolt.held) == 10
        assert spout.throttled == 0

    def test_cap_with_failures_still_completes(self):
        rows = [("a",), ("b",), ("c",), ("d",)]
        builder = TopologyBuilder("capped-flaky")
        builder.add_spout(
            "spout",
            lambda: ReplayingSpout(rows, ("value",), max_in_flight=1),
        )
        builder.add_bolt(
            "flaky", lambda: FlakyBolt(failures_per_value=1)
        ).grouping("spout", GlobalGrouping())
        cluster = LocalCluster()
        cluster.submit(builder.build())
        cluster.run_until_idle()
        spout = cluster.task_instance("capped-flaky", "spout", 0)
        bolt = cluster.task_instance("capped-flaky", "flaky", 0)
        # fails free the window just like acks: no deadlock under the cap
        assert spout.fully_processed()
        assert sorted(bolt.processed) == ["a", "b", "c", "d"]
        assert spout.replays == 4
        assert spout.max_in_flight_seen == 1

    def test_invalid_max_in_flight(self):
        with pytest.raises(ConfigurationError, match="max_in_flight"):
            ReplayingSpout([], ("value",), max_in_flight=0)

    def test_duplicate_acks_counted_not_completed(self):
        spout = ReplayingSpout([("a",), ("b",)], ("value",))
        emitted = []
        spout.collector = type(
            "Collector", (), {
                "emit": lambda self, row, stream_id, message_id, op_id=None:
                    emitted.append(message_id),
            }
        )()
        while spout.next_tuple():
            pass
        for message_id in emitted:
            spout.on_ack(message_id)
        assert spout.completed == 2
        assert spout.fully_processed()
        # an acker double-delivering (or acking an unknown id) must not
        # inflate the completion count past the rows actually processed
        spout.on_ack(emitted[0])
        spout.on_ack("never-emitted")
        assert spout.completed == 2
        assert spout.duplicate_acks == 2
