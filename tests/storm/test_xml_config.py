"""Tests for the XML topology loader (Figure 7)."""

import pytest

from repro.errors import ConfigurationError
from repro.storm import LocalCluster, topology_from_xml
from repro.storm.xml_config import topology_from_xml_file

from tests.storm.helpers import CountBolt, ListSpout, SplitBolt

REGISTRY = {
    "Spout": lambda: ListSpout(
        [("the cat sat",), ("the dog sat",)], ("sentence",), stream_id="user_action"
    ),
    "Split": SplitBolt,
    "Count": CountBolt,
}

FIGURE7_STYLE_XML = """
<topology name="cf-test">
  <spout name="spout" class="Spout">
    <output_fields>
      <stream_id>user_action</stream_id>
      <fields>sentence</fields>
    </output_fields>
  </spout>
  <bolts>
    <bolt name="split" class="Split" parallelism="2">
      <grouping type="shuffle">
        <stream_id>user_action</stream_id>
      </grouping>
    </bolt>
    <bolt name="count" class="Count" parallelism="3">
      <grouping type="field">
        <fields>word</fields>
        <stream_id>words</stream_id>
      </grouping>
    </bolt>
  </bolts>
</topology>
"""


class TestXmlParsing:
    def test_builds_and_runs(self):
        topo = topology_from_xml(FIGURE7_STYLE_XML, REGISTRY)
        assert topo.name == "cf-test"
        cluster = LocalCluster()
        cluster.submit(topo)
        cluster.run_until_idle()
        merged = {}
        for index in range(3):
            bolt = cluster.task_instance("cf-test", "count", index)
            merged.update(bolt.counts)
        assert merged["the"] == 2
        assert merged["sat"] == 2

    def test_parallelism_attribute_respected(self):
        topo = topology_from_xml(FIGURE7_STYLE_XML, REGISTRY)
        assert topo.specs["split"].parallelism == 2
        assert topo.specs["count"].parallelism == 3

    def test_source_defaults_to_previous_component(self):
        topo = topology_from_xml(FIGURE7_STYLE_XML, REGISTRY)
        subs = topo.specs["count"].subscriptions
        assert subs[0].source == "split"

    def test_unknown_class_reports_registry(self):
        xml = FIGURE7_STYLE_XML.replace('class="Split"', 'class="Nope"')
        with pytest.raises(ConfigurationError, match="Nope"):
            topology_from_xml(xml, REGISTRY)

    def test_wrong_declared_fields_rejected(self):
        xml = FIGURE7_STYLE_XML.replace(
            "<fields>sentence</fields>", "<fields>user, item</fields>"
        )
        with pytest.raises(ConfigurationError, match="disagree"):
            topology_from_xml(xml, REGISTRY)

    def test_unknown_grouping_type_rejected(self):
        xml = FIGURE7_STYLE_XML.replace('type="field"', 'type="rainbow"')
        with pytest.raises(ConfigurationError, match="rainbow"):
            topology_from_xml(xml, REGISTRY)

    def test_missing_topology_name_rejected(self):
        xml = FIGURE7_STYLE_XML.replace(' name="cf-test"', "", 1)
        with pytest.raises(ConfigurationError, match="name"):
            topology_from_xml(xml, REGISTRY)

    def test_no_spout_rejected(self):
        xml = """<topology name="t"><bolts></bolts></topology>"""
        with pytest.raises(ConfigurationError, match="no <spout>"):
            topology_from_xml(xml, REGISTRY)

    def test_malformed_xml_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid topology XML"):
            topology_from_xml("<topology", REGISTRY)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "topo.xml"
        path.write_text(FIGURE7_STYLE_XML, encoding="utf-8")
        topo = topology_from_xml_file(str(path), REGISTRY)
        assert topo.name == "cf-test"
