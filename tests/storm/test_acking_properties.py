"""Property-style tests of the acking machinery.

Random but seeded interleavings of emit / child-emit / ack / fail /
double-ack are driven through a real :class:`Acker` wired to a real
:class:`ReplayingSpout`. Whatever the interleaving, the conservation law
must hold: every row either completes or ends in the dead-letter list,
and no tuple tree is left pending.
"""

import random

from repro.storm.acking import Acker
from repro.storm.reliability import ReplayingSpout


class _Emitted:
    """One live tuple instance: its tree roots and settled flag."""

    def __init__(self, root_ids):
        self.root_ids = root_ids
        self.settled = False


class _SpoutCollector:
    """Stub collector registering each spout emission with the acker."""

    def __init__(self, acker, live):
        self._acker = acker
        self._live = live

    def emit(self, row, stream_id="default", message_id=None, op_id=None):
        root_id = self._acker.register_root(message_id, "spout")
        self._live.append(_Emitted(frozenset({root_id})))


def run_interleaving(seed, n_rows=20, max_retries=3):
    rng = random.Random(seed)
    rows = [(f"r{i}",) for i in range(n_rows)]
    spout = ReplayingSpout(rows, ("value",), max_retries=max_retries)
    acker = Acker()
    live: list[_Emitted] = []
    spout.collector = _SpoutCollector(acker, live)

    def notify(spout_name, message_id, ok):
        if ok:
            spout.on_ack(message_id)
        else:
            spout.on_fail(message_id)

    for _ in range(40 * n_rows * (max_retries + 1)):
        if spout.fully_processed():
            break
        open_tuples = [t for t in live if not t.settled]
        # bias toward settling so the run terminates; a small tail of
        # child-emissions, failures, and double-acks keeps it adversarial
        action = rng.random()
        if action < 0.35 or not open_tuples:
            spout.next_tuple()
        elif action < 0.50:
            parent = rng.choice(open_tuples)
            acker.on_emit(parent.root_ids)
            live.append(_Emitted(parent.root_ids))
        elif action < 0.60:
            victim = rng.choice(open_tuples)
            victim.settled = True
            acker.on_fail(victim.root_ids, notify)
        elif action < 0.65 and any(t.settled for t in live):
            # a buggy bolt re-acking a settled tuple: must be absorbed
            acker.on_ack(rng.choice([t for t in live if t.settled]).root_ids,
                         notify)
        else:
            chosen = rng.choice(open_tuples)
            chosen.settled = True
            acker.on_ack(chosen.root_ids, notify)
    else:
        raise AssertionError(f"seed {seed}: interleaving did not terminate")
    return spout, acker


class TestAckingConservation:
    def test_every_row_completes_or_dead_letters(self):
        for seed in range(12):
            spout, acker = run_interleaving(seed)
            total = spout.completed + len(spout.dead_letters)
            assert total == 20, f"seed {seed}: {total} of 20 rows accounted"
            assert spout.fully_processed(), f"seed {seed}: rows in flight"
            assert acker.pending_trees() == 0, f"seed {seed}: leaked trees"

    def test_double_acks_on_settled_trees_absorbed(self):
        # acking a tree the acker already settled (root gone) must be a
        # silent no-op in every interleaving — never an exception
        for seed in range(12):
            spout, acker = run_interleaving(seed)
            assert spout.duplicate_acks == 0  # acker absorbed them first

    def test_over_acked_tree_counted_not_raised(self):
        # a zero-pending root can only appear through state corruption
        # (e.g. a restored manifest from a buggy build); the acker must
        # count the anomaly and keep draining the healthy roots in the
        # same call instead of wedging mid-notify
        acker = Acker()
        bad = acker.register_root("bad", "spout")
        good = acker.register_root("good", "spout")
        acker._roots[bad].pending = 0
        completed = []
        acker.on_ack(
            frozenset({bad, good}),
            lambda spout_name, message_id, ok: completed.append(message_id),
        )
        assert acker.anomalies == 1
        assert completed == ["good"]
        assert acker.pending_trees() == 1  # the corrupt root stays parked

    def test_zero_retries_routes_failures_to_dead_letters(self):
        for seed in (1, 2, 3):
            spout, acker = run_interleaving(seed, n_rows=10, max_retries=0)
            assert spout.completed + len(spout.dead_letters) == 10
            assert spout.replays == 0
            assert acker.pending_trees() == 0
