"""Tests for the exactly-once layer: dedup ledgers and ExactlyOnceBolt."""

import pytest

from repro.errors import ConfigurationError, DataServerDownError
from repro.storm import GlobalGrouping, LocalCluster, TopologyBuilder
from repro.storm.component import Spout
from repro.storm.reliability import DedupLedger, ExactlyOnceBolt
from repro.storm.tuples import StormTuple


def make_tuple(value, op_id):
    return StormTuple((value,), ("value",), "default", "test", op_id=op_id)


class TestDedupLedger:
    def test_first_seen_then_duplicate(self):
        ledger = DedupLedger()
        assert ledger.observe("actions@0")
        assert not ledger.observe("actions@0")
        assert ledger.first_seen == 1
        assert ledger.duplicates == 1

    def test_derived_suffixes_are_distinct_identities(self):
        ledger = DedupLedger()
        assert ledger.observe("actions@5>history.0:0")
        assert ledger.observe("actions@5>history.0:1")
        assert not ledger.observe("actions@5>history.0:0")
        assert ledger.first_seen == 2
        assert ledger.duplicates == 1

    def test_sources_are_independent(self):
        ledger = DedupLedger()
        assert ledger.observe("topic/0@3")
        assert ledger.observe("topic/1@3")
        assert not ledger.observe("topic/0@3")

    def test_watermark_bounds_memory(self):
        ledger = DedupLedger(retain_depth=4)
        for offset in range(100):
            assert ledger.observe(f"src@{offset}")
            assert ledger.within_bound()
        assert ledger.offsets_retained() <= 4

    def test_below_watermark_treated_as_duplicate(self):
        # an offset the watermark has passed can only be a replay, even
        # if this task never saw its first delivery (e.g. after a rewind
        # deeper than the in-flight window would ever be)
        ledger = DedupLedger(retain_depth=4)
        ledger.observe("src@100")
        assert not ledger.observe("src@1")
        assert ledger.duplicates == 1

    def test_out_of_order_within_window_still_first_seen(self):
        ledger = DedupLedger(retain_depth=8)
        assert ledger.observe("src@10")
        assert ledger.observe("src@7")  # above watermark 10-8=2
        assert not ledger.observe("src@7")

    def test_unparseable_ids_tracked_verbatim(self):
        ledger = DedupLedger()
        assert ledger.observe("hand-crafted")
        assert not ledger.observe("hand-crafted")
        assert ledger.observe("no-offset@abc")
        assert not ledger.observe("no-offset@abc")
        assert ledger.entries() == 2

    def test_invalid_retain_depth(self):
        with pytest.raises(ConfigurationError, match="retain_depth"):
            DedupLedger(retain_depth=0)

    def test_snapshot_restore_preserves_decisions(self):
        ledger = DedupLedger(retain_depth=16)
        for op_id in ("a@1", "a@2>x.0:0", "b@9", "oddball"):
            ledger.observe(op_id)
        restored = DedupLedger()
        restored.restore(ledger.snapshot())
        # every id the original saw is a duplicate to the restored copy
        for op_id in ("a@1", "a@2>x.0:0", "b@9", "oddball"):
            assert not restored.observe(op_id)
        assert restored.observe("a@3")
        assert restored.stats()["retain_depth"] == 16

    def test_stats_shape(self):
        ledger = DedupLedger()
        ledger.observe("s@0")
        ledger.observe("s@0")
        stats = ledger.stats()
        assert stats["sources"] == 1
        assert stats["first_seen"] == 1
        assert stats["duplicates"] == 1
        assert stats["within_bound"] is True
        assert stats["watermark_rejections"] == 0

    def test_seen_is_not_a_commit(self):
        # the two-phase protocol: seen() must not record, so a failure
        # between check and commit leaves the replay processable
        ledger = DedupLedger()
        assert not ledger.seen("src@0")
        assert not ledger.seen("src@0")
        ledger.commit("src@0")
        assert ledger.seen("src@0")
        assert ledger.first_seen == 1

    def test_watermark_rejections_counted_separately(self):
        # a drop decided solely by the watermark could be a late first
        # delivery, not a replay — it must be distinguishable in metrics
        ledger = DedupLedger(retain_depth=4)
        ledger.observe("src@100")
        assert not ledger.observe("src@1")  # below watermark 96
        assert ledger.watermark_rejections == 1
        assert ledger.duplicates == 1
        ledger.observe("src@100")  # exact-detail duplicate, not watermark
        assert ledger.watermark_rejections == 1
        assert ledger.duplicates == 2

    def test_watermark_rejections_survive_snapshot(self):
        ledger = DedupLedger(retain_depth=4)
        ledger.observe("src@100")
        ledger.observe("src@1")
        restored = DedupLedger()
        restored.restore(ledger.snapshot())
        assert restored.watermark_rejections == 1

    def test_legacy_snapshot_without_watermark_rejections(self):
        ledger = DedupLedger()
        ledger.observe("src@0")
        state = ledger.snapshot()
        del state["watermark_rejections"]
        restored = DedupLedger()
        restored.restore(state)
        assert restored.watermark_rejections == 0


class CountingBolt(ExactlyOnceBolt):
    def __init__(self):
        super().__init__()
        self.counts: dict[object, int] = {}

    def process(self, tup):
        value = tup["value"]
        self.counts[value] = self.counts.get(value, 0) + 1


class TestExactlyOnceBolt:
    def test_duplicate_op_ids_dropped_before_state(self):
        bolt = CountingBolt()
        bolt.execute(make_tuple("a", "src@0"))
        bolt.execute(make_tuple("a", "src@0"))
        bolt.execute(make_tuple("a", "src@1"))
        assert bolt.counts == {"a": 2}
        assert bolt.dedup_hits == 1

    def test_unidentified_tuples_fall_back_to_at_least_once(self):
        bolt = CountingBolt()
        bolt.execute(make_tuple("a", None))
        bolt.execute(make_tuple("a", None))
        assert bolt.counts == {"a": 2}
        assert bolt.dedup_hits == 0

    def test_snapshot_state_shape(self):
        bolt = CountingBolt()
        assert bolt.snapshot_state() is None  # nothing seen: nothing to save
        bolt.execute(make_tuple("a", "src@0"))
        state = bolt.snapshot_state()
        assert set(state) == {"exactly_once", "app"}
        restored = CountingBolt()
        restored.restore_state(state)
        restored.execute(make_tuple("a", "src@0"))
        assert restored.counts == {}
        assert restored.dedup_hits == 1

    def test_legacy_restore_without_ledger_wrapper(self):
        # manifests written before the exactly-once layer hand the whole
        # dict to the app hook
        captured = {}

        class Legacy(ExactlyOnceBolt):
            def process(self, tup):
                pass

            def restore_app_state(self, state):
                captured.update(state)

        Legacy().restore_state({"combiner": {"k": 1.0}})
        assert captured == {"combiner": {"k": 1.0}}

    def test_ledger_stats_include_dedup_hits(self):
        bolt = CountingBolt()
        bolt.execute(make_tuple("a", "src@0"))
        bolt.execute(make_tuple("a", "src@0"))
        assert bolt.ledger_stats()["dedup_hits"] == 1

    def test_failed_process_leaves_ledger_unmarked(self):
        # regression: the ledger used to be marked *before* process(),
        # so an exception plus a replay lost the update permanently
        # (exactly-once silently degraded to at-most-once)
        class FlakyBolt(CountingBolt):
            def __init__(self):
                super().__init__()
                self.boom = True

            def process(self, tup):
                if self.boom:
                    self.boom = False
                    raise DataServerDownError("store hiccup mid-process")
                super().process(tup)

        bolt = FlakyBolt()
        with pytest.raises(DataServerDownError):
            bolt.execute(make_tuple("a", "src@0"))
        assert bolt.counts == {}
        # the spout replays the failed tuple: it must be processed, not
        # swallowed as a duplicate
        bolt.execute(make_tuple("a", "src@0"))
        assert bolt.counts == {"a": 1}
        assert bolt.dedup_hits == 0
        # a genuine second delivery still dedups
        bolt.execute(make_tuple("a", "src@0"))
        assert bolt.counts == {"a": 1}
        assert bolt.dedup_hits == 1


class DuplicatingSpout(Spout):
    """Emits every row twice with the same op id — a replaying source."""

    def __init__(self, rows):
        self._rows = list(rows)
        self._cursor = 0

    def declare_outputs(self, declarer):
        declarer.declare(("value",))

    def next_tuple(self):
        if self._cursor >= len(self._rows):
            return False
        row = self._rows[self._cursor]
        op_id = f"dup@{self._cursor}"
        self.collector.emit(row, op_id=op_id)
        self.collector.emit(row, op_id=op_id)
        self._cursor += 1
        return True


class ForwardBolt(ExactlyOnceBolt):
    def declare_outputs(self, declarer):
        declarer.declare(("value",))

    def process(self, tup):
        self.collector.emit((tup["value"],))


class CollectBolt(ExactlyOnceBolt):
    def __init__(self):
        super().__init__()
        self.seen = []

    def process(self, tup):
        self.seen.append(tup["value"])


class TestTopologyDedup:
    def run_chain(self, rows):
        builder = TopologyBuilder("dedup")
        builder.add_spout("spout", lambda: DuplicatingSpout(rows))
        builder.add_bolt("forward", ForwardBolt).grouping(
            "spout", GlobalGrouping()
        )
        builder.add_bolt("collect", CollectBolt).grouping(
            "forward", GlobalGrouping()
        )
        cluster = LocalCluster()
        cluster.submit(builder.build())
        cluster.run_until_idle()
        return cluster

    def test_replays_suppressed_at_first_identified_bolt(self):
        rows = [("a",), ("b",), ("c",)]
        cluster = self.run_chain(rows)
        forward = cluster.task_instance("dedup", "forward", 0)
        collect = cluster.task_instance("dedup", "collect", 0)
        # each row was delivered twice; the first bolt dropped the replica
        # before emitting, so downstream never saw a duplicate at all
        assert forward.dedup_hits == 3
        assert collect.seen == ["a", "b", "c"]
        assert collect.dedup_hits == 0

    def test_cluster_exposes_exactly_once_stats(self):
        cluster = self.run_chain([("a",), ("b",)])
        stats = cluster.exactly_once_stats("dedup")
        assert set(stats) == {"forward[0]", "collect[0]"}
        assert stats["forward[0]"]["dedup_hits"] == 2
        assert all(s["within_bound"] for s in stats.values())
