"""Unit tests for topology building and validation."""

import pytest

from repro.errors import TopologyError, TopologyValidationError
from repro.storm import FieldsGrouping, ShuffleGrouping, TopologyBuilder
from repro.storm.component import Bolt

from tests.storm.helpers import CountBolt, ListSpout, SplitBolt


def simple_builder():
    builder = TopologyBuilder("t")
    builder.add_spout("spout", lambda: ListSpout([("hello world",)], ("sentence",)))
    return builder


class TestTopologyBuilder:
    def test_duplicate_component_name_rejected(self):
        builder = simple_builder()
        with pytest.raises(TopologyError, match="twice"):
            builder.add_spout(
                "spout", lambda: ListSpout([("x",)], ("sentence",))
            )

    def test_zero_parallelism_rejected(self):
        builder = TopologyBuilder("t")
        with pytest.raises(TopologyError, match="parallelism"):
            builder.add_spout(
                "spout", lambda: ListSpout([], ("a",)), parallelism=0
            )

    def test_spout_factory_must_build_spout(self):
        builder = TopologyBuilder("t")
        with pytest.raises(TopologyError, match="expected a Spout"):
            builder.add_spout("s", CountBolt)

    def test_bolt_factory_must_build_bolt(self):
        builder = simple_builder()
        with pytest.raises(TopologyError, match="expected a Bolt"):
            builder.add_bolt("b", lambda: ListSpout([], ("a",)))

    def test_invalid_component_name(self):
        builder = TopologyBuilder("t")
        with pytest.raises(TopologyError, match="invalid component name"):
            builder.add_spout("bad name!", lambda: ListSpout([], ("a",)))


class TestTopologyValidation:
    def test_no_spout_rejected(self):
        builder = TopologyBuilder("t")
        with pytest.raises(TopologyValidationError, match="no spout"):
            builder.build()

    def test_bolt_without_subscription_rejected(self):
        builder = simple_builder()
        builder.add_bolt("orphan", SplitBolt)
        with pytest.raises(TopologyValidationError, match="no input"):
            builder.build()

    def test_unknown_source_rejected(self):
        builder = simple_builder()
        builder.add_bolt("split", SplitBolt).grouping("ghost", ShuffleGrouping())
        with pytest.raises(TopologyValidationError, match="ghost"):
            builder.build()

    def test_undeclared_stream_rejected(self):
        builder = simple_builder()
        builder.add_bolt("split", SplitBolt).grouping(
            "spout", ShuffleGrouping(), stream_id="nope"
        )
        with pytest.raises(TopologyValidationError, match="undeclared stream"):
            builder.build()

    def test_fields_grouping_checked_against_stream_schema(self):
        builder = simple_builder()
        builder.add_bolt("split", SplitBolt).grouping(
            "spout", FieldsGrouping(["user"])
        )
        with pytest.raises(TopologyError, match="user"):
            builder.build()

    def test_cycle_rejected(self):
        class Echo(Bolt):
            def declare_outputs(self, declarer):
                declarer.declare(("sentence",), "echo")

            def execute(self, tup):
                pass

        builder = simple_builder()
        builder.add_bolt("a", Echo).grouping("spout", ShuffleGrouping()).grouping(
            "b", ShuffleGrouping(), stream_id="echo"
        )
        builder.add_bolt("b", Echo).grouping("a", ShuffleGrouping(), "echo")
        with pytest.raises(TopologyValidationError, match="cycle"):
            builder.build()

    def test_valid_pipeline_builds(self):
        builder = simple_builder()
        builder.add_bolt("split", SplitBolt, parallelism=2).grouping(
            "spout", ShuffleGrouping()
        )
        builder.add_bolt("count", CountBolt, parallelism=3).grouping(
            "split", FieldsGrouping(["word"]), stream_id="words"
        )
        topo = builder.build()
        assert topo.total_tasks() == 6
        assert [s.name for s in topo.spouts()] == ["spout"]
        assert sorted(b.name for b in topo.bolts()) == ["count", "split"]
