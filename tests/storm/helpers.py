"""Reusable toy components for storm tests."""

from __future__ import annotations

from repro.storm import Bolt, Spout


class ListSpout(Spout):
    """Emits a fixed list of (field-values) tuples, one per poll."""

    def __init__(self, rows, fields=("word",), stream_id="default", ack_ids=False):
        self._rows = list(rows)
        self._fields = tuple(fields)
        self._stream_id = stream_id
        self._ack_ids = ack_ids
        self._cursor = 0
        self.acked: list[object] = []
        self.failed: list[object] = []

    def declare_outputs(self, declarer):
        declarer.declare(self._fields, self._stream_id)

    def next_tuple(self) -> bool:
        if self._cursor >= len(self._rows):
            return False
        row = self._rows[self._cursor]
        message_id = self._cursor if self._ack_ids else None
        self.collector.emit(row, stream_id=self._stream_id, message_id=message_id)
        self._cursor += 1
        return True

    def on_ack(self, message_id):
        self.acked.append(message_id)

    def on_fail(self, message_id):
        self.failed.append(message_id)


class CountBolt(Bolt):
    """Counts occurrences of one field's values in task-local state."""

    def __init__(self, key_field="word"):
        self._key_field = key_field
        self.counts: dict[object, int] = {}

    def execute(self, tup):
        key = tup[self._key_field]
        self.counts[key] = self.counts.get(key, 0) + 1


class SplitBolt(Bolt):
    """Splits a sentence field into word tuples (classic wordcount)."""

    def declare_outputs(self, declarer):
        declarer.declare(("word",), "words")

    def execute(self, tup):
        for word in tup["sentence"].split():
            self.collector.emit((word,), stream_id="words")


class CollectBolt(Bolt):
    """Appends every received tuple's values to a task-local list."""

    def __init__(self):
        self.seen: list[tuple] = []

    def execute(self, tup):
        self.seen.append(tup.values)


class ExplodingBolt(Bolt):
    """Raises on a configurable trigger value."""

    def __init__(self, trigger, field="word"):
        self._trigger = trigger
        self._field = field

    def execute(self, tup):
        if tup[self._field] == self._trigger:
            raise ValueError(f"boom on {self._trigger!r}")
