"""Unit tests for stream groupings."""

import pytest

from repro.errors import TopologyError
from repro.storm.grouping import (
    AllGrouping,
    FieldsGrouping,
    GlobalGrouping,
    ShuffleGrouping,
)
from repro.storm.tuples import StormTuple


def tup(user, item="i1"):
    return StormTuple((user, item), ("user", "item"), "s", "src")


class TestFieldsGrouping:
    def test_same_key_same_task(self):
        g = FieldsGrouping(["user"])
        first = g.select_tasks(tup("u1"), 8)
        for _ in range(5):
            assert g.select_tasks(tup("u1", item="other"), 8) == first

    def test_different_keys_spread_over_tasks(self):
        g = FieldsGrouping(["user"])
        targets = {g.select_tasks(tup(f"u{i}"), 8)[0] for i in range(200)}
        assert len(targets) == 8

    def test_single_target_per_tuple(self):
        g = FieldsGrouping(["user"])
        assert len(g.select_tasks(tup("u1"), 4)) == 1

    def test_multi_field_key(self):
        g = FieldsGrouping(["user", "item"])
        a = g.select_tasks(tup("u1", "i1"), 16)
        b = g.select_tasks(tup("u1", "i2"), 16)
        # keys differ, may or may not collide, but repeated key is stable
        assert g.select_tasks(tup("u1", "i1"), 16) == a
        assert g.select_tasks(tup("u1", "i2"), 16) == b

    def test_empty_fields_rejected(self):
        with pytest.raises(TopologyError):
            FieldsGrouping([])

    def test_validate_checks_upstream_fields(self):
        g = FieldsGrouping(["missing"])
        with pytest.raises(TopologyError, match="missing"):
            g.validate(("user", "item"))

    def test_deterministic_across_instances(self):
        a = FieldsGrouping(["user"])
        b = FieldsGrouping(["user"])
        for i in range(50):
            t = tup(f"u{i}")
            assert a.select_tasks(t, 7) == b.select_tasks(t, 7)


class TestShuffleGrouping:
    def test_balances_load(self):
        g = ShuffleGrouping()
        counts = [0] * 4
        for i in range(400):
            counts[g.select_tasks(tup(f"u{i}"), 4)[0]] += 1
        assert counts == [100, 100, 100, 100]

    def test_deterministic_given_seed(self):
        a = ShuffleGrouping(seed=7)
        b = ShuffleGrouping(seed=7)
        seq_a = [a.select_tasks(tup("u"), 5)[0] for _ in range(20)]
        seq_b = [b.select_tasks(tup("u"), 5)[0] for _ in range(20)]
        assert seq_a == seq_b


class TestGlobalAndAll:
    def test_global_always_task_zero(self):
        g = GlobalGrouping()
        assert g.select_tasks(tup("u1"), 9) == (0,)
        assert g.select_tasks(tup("u2"), 9) == (0,)

    def test_all_replicates_to_every_task(self):
        g = AllGrouping()
        assert g.select_tasks(tup("u1"), 5) == (0, 1, 2, 3, 4)
