"""Metrics summaries and topology cleanup behaviour."""

from repro.storm import GlobalGrouping, LocalCluster, TopologyBuilder

from tests.storm.helpers import CountBolt, ListSpout


class CleanupTrackingBolt(CountBolt):
    cleaned = []

    def cleanup(self):
        CleanupTrackingBolt.cleaned.append(self.context.component_name)


class TestMetricsSummary:
    def test_summary_lists_components_and_totals(self):
        builder = TopologyBuilder("t")
        builder.add_spout("s", lambda: ListSpout([("a",), ("b",)], ("word",)))
        builder.add_bolt("c", CountBolt).grouping("s", GlobalGrouping())
        cluster = LocalCluster()
        metrics = cluster.submit(builder.build())
        cluster.run_until_idle()
        text = metrics.summary()
        assert "c[0]" in text
        assert "transferred=2" in text
        assert metrics.total_executed() == 2

    def test_executed_by_task(self):
        builder = TopologyBuilder("t")
        builder.add_spout("s", lambda: ListSpout([("a",)] * 6, ("word",)))
        builder.add_bolt("c", CountBolt, parallelism=2).grouping(
            "s", GlobalGrouping()
        )
        cluster = LocalCluster()
        metrics = cluster.submit(builder.build())
        cluster.run_until_idle()
        by_task = metrics.executed_by_task("c")
        assert by_task[0] == 6  # global grouping pins to task zero
        assert by_task.get(1, 0) == 0


class TestKillTopology:
    def test_cleanup_called_on_all_tasks(self):
        CleanupTrackingBolt.cleaned = []
        builder = TopologyBuilder("t")
        builder.add_spout("s", lambda: ListSpout([("a",)], ("word",)))
        builder.add_bolt("c", CleanupTrackingBolt, parallelism=3).grouping(
            "s", GlobalGrouping()
        )
        cluster = LocalCluster()
        cluster.submit(builder.build())
        cluster.run_until_idle()
        cluster.kill_topology("t")
        assert CleanupTrackingBolt.cleaned.count("c") == 3

    def test_resubmit_after_kill(self):
        builder = TopologyBuilder("t")
        builder.add_spout("s", lambda: ListSpout([("a",)], ("word",)))
        builder.add_bolt("c", CountBolt).grouping("s", GlobalGrouping())
        topo = builder.build()
        cluster = LocalCluster()
        cluster.submit(topo)
        cluster.run_until_idle()
        cluster.kill_topology("t")
        cluster.submit(topo)  # no "already submitted" error
        cluster.run_until_idle()
