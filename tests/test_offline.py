"""Tests for the offline computation platform."""

import pytest

from repro.engine import RecommenderEngine
from repro.errors import ConfigurationError
from repro.offline import BatchCFJob, JobScheduler
from repro.tdaccess import TDAccessCluster
from repro.tdstore import TDStoreCluster
from repro.topology import StateKeys
from repro.utils.clock import SimClock


def payload(user, item, action, ts):
    return {"user": user, "item": item, "action": action, "timestamp": ts}


@pytest.fixture
def platform():
    clock = SimClock()
    tdaccess = TDAccessCluster(clock, num_data_servers=2)
    tdaccess.create_topic("actions", 2)
    tdstore = TDStoreCluster(num_data_servers=2, num_instances=8)
    job = BatchCFJob(tdaccess, "actions", tdstore.client())
    return clock, tdaccess, tdstore, job


def co_click_payloads(count=8, t0=0.0):
    rows = []
    t = t0
    for n in range(count):
        rows.append(payload(f"u{n}", "A", "click", t))
        rows.append(payload(f"u{n}", "B", "click", t + 1))
        t += 2
    rows.append(payload("target", "A", "click", t))
    return rows


class TestBatchCFJob:
    def test_publishes_model_into_tdstore(self, platform):
        clock, tdaccess, tdstore, job = platform
        producer = tdaccess.producer()
        for row in co_click_payloads():
            producer.send("actions", row, key=row["user"])
        stats = job.run(now=1000.0)
        assert stats["events"] == 17
        client = tdstore.client()
        sim_list = client.get(StateKeys.sim_list("A"))
        # Eq 4: pairCount 8*2 over sqrt(9*2) * sqrt(8*2)
        assert sim_list["B"] == pytest.approx(16 / (18**0.5 * 4))
        assert client.get(StateKeys.recent("target"))[0][0] == "A"

    def test_engine_serves_from_offline_model(self, platform):
        clock, tdaccess, tdstore, job = platform
        producer = tdaccess.producer()
        for row in co_click_payloads():
            producer.send("actions", row, key=row["user"])
        job.run(now=1000.0)
        engine = RecommenderEngine(tdstore.client())
        recs = engine.recommend_cf("target", 3, now=1000.0)
        assert recs and recs[0].item_id == "B"

    def test_events_after_job_start_excluded(self, platform):
        clock, tdaccess, tdstore, job = platform
        producer = tdaccess.producer()
        producer.send("actions", payload("u1", "A", "click", 0.0), key="u1")
        producer.send("actions", payload("u1", "FUTURE", "click", 999.0),
                      key="u1")
        job.run(now=100.0)
        client = tdstore.client()
        assert client.get(StateKeys.history("u1")) == {"A": (2.0, 0.0)}

    def test_garbage_payloads_skipped(self, platform):
        clock, tdaccess, tdstore, job = platform
        producer = tdaccess.producer()
        producer.send("actions", "not-a-dict")
        producer.send("actions", payload("u1", "A", "teleport", 0.0))
        producer.send("actions", payload("u1", "A", "click", 0.0), key="u1")
        stats = job.run(now=100.0)
        assert stats["events"] == 1

    def test_rerun_reflects_new_data(self, platform):
        clock, tdaccess, tdstore, job = platform
        producer = tdaccess.producer()
        for row in co_click_payloads(count=4):
            producer.send("actions", row, key=row["user"])
        job.run(now=100.0)
        # a new co-click pattern arrives: A with C
        t = 200.0
        for n in range(10):
            producer.send("actions", payload(f"v{n}", "A", "click", t),
                          key=f"v{n}")
            producer.send("actions", payload(f"v{n}", "C", "click", t + 1),
                          key=f"v{n}")
            t += 2
        job.run(now=1000.0)
        sim_list = tdstore.client().get(StateKeys.sim_list("A"))
        assert "C" in sim_list
        assert job.runs == 2


class TestJobScheduler:
    def test_runs_once_per_interval(self, platform):
        clock, tdaccess, tdstore, job = platform
        producer = tdaccess.producer()
        producer.send("actions", payload("u1", "A", "click", 0.0), key="u1")
        scheduler = JobScheduler(interval=3600.0)
        scheduler.register(job)
        assert scheduler.maybe_run(3700.0) == 1
        assert scheduler.maybe_run(3800.0) == 0  # same interval
        assert scheduler.maybe_run(7300.0) == 1  # next boundary
        assert len(scheduler.log) == 2

    def test_invalid_interval(self):
        with pytest.raises(ConfigurationError):
            JobScheduler(interval=0.0)
