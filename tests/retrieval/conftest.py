"""Shared fixtures for the retrieval suite."""

import pytest

from repro.tdstore import TDStoreCluster
from repro.utils.clock import SimClock


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def tdstore():
    return TDStoreCluster(num_data_servers=3, num_instances=16)


@pytest.fixture
def client_factory(tdstore):
    return tdstore.client
