"""Shared fixtures for the retrieval suite.

``retrieval_topology_factory`` is the harness/chaos entry point: the
full CF pipeline with the embedding/VQ bolts riding the same
pretreatment stream, importable by spawn workers through
``topology_recipe``. ``vq_digest`` is the byte-identity fingerprint the
chaos suite compares across substrates — raw floats, no rounding.
"""

from __future__ import annotations

import json

from repro.retrieval import RetrievalConfig, EmbeddingConfig, VQConfig
from repro.retrieval.keys import RetrievalKeys as K
from repro.storm.grouping import FieldsGrouping, ShuffleGrouping
from repro.storm.topology import TopologyBuilder
from repro.topology.bolts_cf import (
    ItemCountBolt,
    PairCountBolt,
    SimListBolt,
    UserHistoryBolt,
)
from repro.topology.bolts_common import PretreatmentBolt
from repro.topology.framework import add_retrieval_bolts
from repro.topology.spouts import TDAccessSpout

from tests.recovery.helpers import ITEMS, USERS  # noqa: F401  (re-export)

# small index so 48 messages over 8 items exercise split *and* merge
TEST_RETRIEVAL = RetrievalConfig(
    embedding=EmbeddingConfig(dim=8),
    vq=VQConfig(
        dim=8,
        seed_centroids=2,
        max_centroids=6,
        split_threshold=3.0,
        merge_floor=1.0,
    ),
    co_window=3600.0,
    co_k=4,
)


def retrieval_topology_factory(batch_size: int = 4, parallelism: int = 2):
    """CF + retrieval topology for the recovery/chaos harness."""

    def factory(clock, client_factory, consumer):
        builder = TopologyBuilder("cf-retrieval-stream")
        builder.add_spout(
            "source", lambda: TDAccessSpout(consumer, clock, batch_size)
        )
        builder.add_bolt(
            "pretreatment", PretreatmentBolt, parallelism=1
        ).grouping("source", ShuffleGrouping(), "raw_action")
        builder.add_bolt(
            "userHistory",
            lambda: UserHistoryBolt(client_factory),
            parallelism=parallelism,
        ).grouping("pretreatment", FieldsGrouping(["user"]), "user_action")
        builder.add_bolt(
            "itemCount",
            lambda: ItemCountBolt(client_factory),
            parallelism=parallelism,
        ).grouping("userHistory", FieldsGrouping(["item"]), "item_delta")
        builder.add_bolt(
            "pairCount",
            lambda: PairCountBolt(client_factory),
            parallelism=parallelism,
        ).grouping(
            "userHistory", FieldsGrouping(["pair_a", "pair_b"]), "pair_delta"
        )
        builder.add_bolt(
            "simList",
            lambda: SimListBolt(client_factory),
            parallelism=parallelism,
        ).grouping(
            "pairCount", FieldsGrouping(["item"]), "sim_update"
        ).grouping("pairCount", FieldsGrouping(["item"]), "prune")
        add_retrieval_bolts(
            builder, "pretreatment", client_factory, TEST_RETRIEVAL
        )
        return builder.build()

    return factory


def vq_digest(client, items=ITEMS, users=USERS) -> bytes:
    """Canonical serialization of every retrieval key: embedding rows,
    co-click windows, centroid set/vectors/counts, posting lists,
    assignments, and the journaled stat counters. Exact floats — the
    cross-substrate contract is byte identity, not tolerance."""
    meta = client.get(K.meta(), None) or {}
    state = {
        "meta": sorted(meta),
        "centroids": {
            cid: client.get(K.centroid(cid), None) for cid in sorted(meta)
        },
        "counts": {
            cid: client.get(K.count(cid), 0.0) for cid in sorted(meta)
        },
        "postings": {
            cid: sorted(client.get(K.posting(cid), None) or {})
            for cid in sorted(meta)
        },
        "assignments": {
            item: client.get(K.assignment(item), None) for item in items
        },
        "rows": {item: client.get(K.embedding(item), None) for item in items},
        "windows": {user: client.get(K.co_window(user), None) for user in users},
        "stats": {
            name: client.get(K.stat(name), 0.0)
            for name in ("indexed", "reassignments", "splits", "merges")
        },
    }
    return json.dumps(state, sort_keys=True).encode()
