"""Unit tests for the streaming VQ index.

The crash-replay class is the heart: every ``observe`` is a multi-key
op, so we cut it off after every possible write prefix, re-execute it
the way a redelivered tuple would, and demand the final state be
byte-identical to a run that never crashed. That is the single-writer +
derived-op-id protocol's whole promise, checked exhaustively at the
unit level (the chaos suite re-checks it end-to-end across substrates).
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.retrieval.embedding import seed_vector
from repro.retrieval.keys import RetrievalKeys as K
from repro.retrieval.vq import (
    StreamingVQIndex,
    VQConfig,
    centroid_snapshots,
    index_integrity,
    sibling_id,
)
from repro.tdstore import TDStoreCluster
from repro.topology.state import CachedStore

CFG = VQConfig(
    dim=4,
    seed_centroids=2,
    max_centroids=8,
    min_centroids=2,
    split_threshold=3.0,
    merge_floor=1.0,
)

ITEMS = [f"x{i}" for i in range(12)]


def make_index(config=CFG):
    cluster = TDStoreCluster(num_data_servers=2, num_instances=8)
    store = CachedStore(cluster.client())
    return cluster, StreamingVQIndex(store, config)


def op_stream(rounds=3):
    """Deterministic (item, vector, op_id) stream that exercises
    assignment, reassignment, split, and merge against ``CFG``."""
    ops = []
    for r in range(rounds):
        for i, item in enumerate(ITEMS):
            vec = seed_vector(f"v{(i + r) % 3}:{r}", CFG.dim, "vqtest")
            ops.append((item, [float(x) for x in vec], f"op{r}:{item}"))
    return ops


def digest(client, items=ITEMS) -> bytes:
    meta = client.get(K.meta(), None) or {}
    state = {
        "meta": sorted(meta),
        "centroids": {c: client.get(K.centroid(c), None) for c in sorted(meta)},
        "counts": {c: client.get(K.count(c), 0.0) for c in sorted(meta)},
        "postings": {
            c: sorted(client.get(K.posting(c), None) or {}) for c in sorted(meta)
        },
        "assignments": {i: client.get(K.assignment(i), None) for i in items},
        "stats": {
            name: client.get(K.stat(name), 0.0)
            for name in ("indexed", "reassignments", "splits", "merges")
        },
    }
    return json.dumps(state, sort_keys=True).encode()


class TestBootstrap:
    def test_seeds_the_configured_centroids(self):
        cluster, index = make_index()
        meta = index.bootstrap()
        assert sorted(meta) == ["g0", "g1"]
        snaps = centroid_snapshots(cluster.client())
        assert all(len(s.vec) == CFG.dim and s.count == 0.0 for s in snaps)

    def test_bootstrap_is_idempotent(self):
        cluster, index = make_index()
        index.bootstrap()
        before = digest(cluster.client())
        index.bootstrap()
        assert digest(cluster.client()) == before


class TestObserve:
    def test_assignment_posting_and_count_agree(self):
        cluster, index = make_index()
        for item, vec, op in op_stream(rounds=1):
            index.observe(item, vec, op)
        report = index_integrity(cluster.client(), ITEMS)
        assert report["assigned_items"] == len(ITEMS)
        assert report["problems"] == []

    def test_stream_exercises_splits_and_merges(self):
        cluster, index = make_index()
        for item, vec, op in op_stream():
            index.observe(item, vec, op)
        client = cluster.client()
        assert client.get(K.stat("splits"), 0.0) > 0
        assert client.get(K.stat("merges"), 0.0) > 0
        assert client.get(K.stat("reassignments"), 0.0) > 0
        assert client.get(K.stat("indexed"), 0.0) == len(ITEMS)
        assert index_integrity(client, ITEMS)["problems"] == []

    def test_chosen_centroid_moves_toward_the_vector(self):
        cluster, index = make_index()
        vec = [1.0, 0.0, 0.0, 0.0]
        op = index.observe("x0", vec, "op-a")
        moved = cluster.client().get(K.centroid(op.assigned), None)
        seeded = seed_vector("cent:0", CFG.dim, CFG.seed_salt)
        base = cluster.client().get(K.centroid("g0"), None)
        # whichever centroid won, its vector is lr-interpolated, not raw
        assert moved != list(seeded) and moved != vec
        assert base is not None

    def test_split_spawns_sibling_at_incoming_vector(self):
        cluster, index = make_index()
        client = cluster.client()
        vec = [1.0, 0.0, 0.0, 0.0]
        ops = [
            index.observe(f"x{i}", vec, f"op{i}")
            for i in range(int(CFG.split_threshold) + 1)
        ]
        split_ops = [o for o in ops if o.split_from is not None]
        assert split_ops, "crowding one centroid must trigger a split"
        first = split_ops[0]
        assert first.assigned == sibling_id(first.split_from, first.op_id)
        assert client.get(K.centroid(first.assigned), None) == vec

    def test_without_op_ids_everything_still_converges(self):
        cluster, index = make_index()
        for item, vec, __ in op_stream():
            index.observe(item, vec, None)
        assert index_integrity(cluster.client(), ITEMS)["problems"] == []


class TestDedup:
    def test_replayed_op_is_skipped_exactly(self):
        cluster, index = make_index()
        ops = op_stream()
        for item, vec, op in ops:
            index.observe(item, vec, op)
        before = digest(cluster.client())
        for item, vec, op in ops:
            result = index.observe(item, vec, op)
            assert result.deduped
        assert index.dedup_skips == len(ops)
        assert digest(cluster.client()) == before


class _Crash(Exception):
    pass


class FlakyStore(CachedStore):
    """A CachedStore that dies before its Nth write — the unit-level
    stand-in for a worker SIGKILL mid-op."""

    def __init__(self, client):
        super().__init__(client)
        self.budget = None

    def _spend(self):
        if self.budget is not None:
            if self.budget <= 0:
                raise _Crash()
            self.budget -= 1

    def put(self, key, value):
        self._spend()
        super().put(key, value)

    def put_once(self, key, op_id, value):
        self._spend()
        return super().put_once(key, op_id, value)

    def incr(self, key, delta):
        self._spend()
        return super().incr(key, delta)

    def apply(self, key, op_id, delta):
        self._spend()
        return super().apply(key, op_id, delta)

    def delete(self, key):
        self._spend()
        super().delete(key)


class TestCrashReplay:
    """Cut every op at every write prefix, then re-execute."""

    def run_chaotic(self):
        cluster = TDStoreCluster(num_data_servers=2, num_instances=8)
        crashes = 0
        for item, vec, op in op_stream():
            budget = 0
            while True:
                # fresh store per attempt: a restarted worker has no cache
                flaky = FlakyStore(cluster.client())
                index = StreamingVQIndex(flaky, CFG)
                flaky.budget = budget
                try:
                    index.observe(item, vec, op)
                except _Crash:
                    crashes += 1
                    budget += 1
                    continue
                break
            # and one full replay of the now-committed op
            replay = StreamingVQIndex(CachedStore(cluster.client()), CFG)
            assert replay.observe(item, vec, op).deduped
        return cluster, crashes

    def test_every_write_prefix_replays_to_identical_state(self):
        clean_cluster, clean_index = make_index()
        for item, vec, op in op_stream():
            clean_index.observe(item, vec, op)
        chaos_cluster, crashes = self.run_chaotic()
        assert crashes > 100  # every op died at every prefix length
        assert digest(chaos_cluster.client()) == digest(clean_cluster.client())
        assert index_integrity(chaos_cluster.client(), ITEMS)["problems"] == []


class TestValidation:
    def test_rejects_seed_below_min(self):
        with pytest.raises(ConfigurationError):
            VQConfig(seed_centroids=1, min_centroids=2)

    def test_rejects_max_below_seed(self):
        with pytest.raises(ConfigurationError):
            VQConfig(seed_centroids=4, max_centroids=2)

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ConfigurationError):
            VQConfig(split_threshold=1.0, merge_floor=2.0)
