"""Unit tests for the online embedding learner.

The load-bearing property is purity: every update must be a function of
(committed row, tuple) alone, so a replayed update recomputes
byte-identical floats. Everything else is schedule hygiene.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.retrieval.embedding import (
    EmbeddingConfig,
    EmbeddingRow,
    normalize,
    seed_vector,
    updated_row,
)

CFG = EmbeddingConfig(dim=8)


class TestSeedVectors:
    def test_deterministic_across_calls(self):
        a = seed_vector("i1", 8)
        b = seed_vector("i1", 8)
        assert a.tobytes() == b.tobytes()

    def test_unit_norm(self):
        assert float(np.linalg.norm(seed_vector("i1", 8))) == pytest.approx(1.0)

    def test_distinct_keys_distinct_vectors(self):
        assert seed_vector("i1", 8).tobytes() != seed_vector("i2", 8).tobytes()

    def test_salt_separates_seed_and_context_spaces(self):
        row = seed_vector("i1", 8, "embseed")
        ctx = seed_vector("i1", 8, "embctx")
        assert row.tobytes() != ctx.tobytes()


class TestRowSerde:
    def test_cold_row_starts_at_seed(self):
        row = EmbeddingRow.from_value("i1", None, CFG)
        assert row.updates == 0
        assert row.array().tobytes() == seed_vector("i1", 8).tobytes()

    def test_round_trip_is_exact(self):
        row = updated_row(EmbeddingRow.from_value("i1", None, CFG), "i2", 1.0, CFG)
        back = EmbeddingRow.from_value("i1", row.to_value(), CFG)
        assert back == row

    def test_vec_is_a_plain_tuple(self):
        row = EmbeddingRow.from_value("i1", None, CFG)
        assert type(row.vec) is tuple
        assert all(type(x) is float for x in row.vec)


class TestUpdates:
    def test_update_is_pure(self):
        row = EmbeddingRow.from_value("i1", None, CFG)
        once = updated_row(row, "i2", 1.0, CFG)
        again = updated_row(row, "i2", 1.0, CFG)
        assert once == again  # exact float equality — the replay contract

    def test_update_normalizes_and_counts(self):
        row = updated_row(EmbeddingRow.from_value("i1", None, CFG), "i2", 1.0, CFG)
        assert row.updates == 1
        assert float(np.linalg.norm(row.array())) == pytest.approx(1.0)

    def test_learning_rate_decays_with_updates(self):
        cold = EmbeddingRow.from_value("i1", None, CFG)
        warm = EmbeddingRow("i1", cold.vec, updates=50)
        ctx = seed_vector("i2", 8, CFG.context_salt)
        cold_step = updated_row(cold, "i2", 1.0, CFG)
        warm_step = updated_row(warm, "i2", 1.0, CFG)
        # the cold row moves further toward the anchor than the warm one
        d_cold = float(np.dot(cold_step.array(), ctx) - np.dot(cold.array(), ctx))
        d_warm = float(np.dot(warm_step.array(), ctx) - np.dot(warm.array(), ctx))
        assert d_cold > d_warm > 0.0

    def test_items_sharing_context_drift_together(self):
        # a and c never co-click each other, but both co-click b: both
        # are pulled toward b's frozen anchor, so they become similar —
        # the clustering geometry the VQ index exploits
        a = EmbeddingRow.from_value("a", None, CFG)
        c = EmbeddingRow.from_value("c", None, CFG)
        before = float(np.dot(a.array(), c.array()))
        for __ in range(20):
            a = updated_row(a, "b", 1.0, CFG)
            c = updated_row(c, "b", 1.0, CFG)
        after = float(np.dot(a.array(), c.array()))
        assert after > before

    def test_normalize_leaves_zero_vector_alone(self):
        z = np.zeros(4)
        assert normalize(z).tobytes() == z.tobytes()


class TestValidation:
    def test_rejects_bad_dim(self):
        with pytest.raises(ConfigurationError):
            EmbeddingConfig(dim=0)

    def test_rejects_bad_lr(self):
        with pytest.raises(ConfigurationError):
            EmbeddingConfig(lr=0.0)
