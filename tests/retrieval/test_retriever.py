"""Unit tests for the VQ read path: probe, re-rank, degradation."""

import numpy as np
import pytest

from repro.errors import ColdIndexError, ConfigurationError
from repro.retrieval.embedding import EmbeddingConfig, EmbeddingRow, updated_row
from repro.retrieval.keys import RetrievalKeys as K
from repro.retrieval.retriever import (
    RetrieverConfig,
    VQIndexProbe,
    VQRetriever,
    brute_force_rank,
)
from repro.retrieval.vq import StreamingVQIndex, VQConfig
from repro.tdstore import TDStoreCluster
from repro.topology.state import CachedStore, StateKeys

ECFG = EmbeddingConfig(dim=8)
VCFG = VQConfig(
    dim=8, seed_centroids=2, max_centroids=8, min_centroids=2,
    split_threshold=4.0, merge_floor=1.0,
)

# three context groups of eight items each — co-click pull clusters them
GROUPS = {"a": 3, "b": 3, "c": 2}
ITEMS = [f"{g}{i}" for g, n in GROUPS.items() for i in range(8)]


def built_store():
    """A store with learned rows for 24 items and a built VQ index."""
    cluster = TDStoreCluster(num_data_servers=2, num_instances=8)
    client = cluster.client()
    index = StreamingVQIndex(CachedStore(cluster.client()), VCFG)
    for item in ITEMS:
        row = EmbeddingRow.from_value(item, None, ECFG)
        for __ in range(10):
            row = updated_row(row, f"ctx-{item[0]}", 1.0, ECFG)
        client.put(K.embedding(item), row.to_value())
        index.observe(item, list(row.vec), None)
    return cluster, client


class TestQueryVector:
    def test_mean_of_recent_rows_normalized(self):
        cluster, client = built_store()
        client.put(
            StateKeys.recent("u1"), [("a0", 5.0, 0.0), ("a1", 3.0, 10.0)]
        )
        q = VQRetriever(client).query_vector("u1")
        assert float(np.linalg.norm(q)) == pytest.approx(1.0)
        # a-group query points at the a-context anchor's direction
        a_row = np.asarray(client.get(K.embedding("a0"))["vec"])
        c_row = np.asarray(client.get(K.embedding("c0"))["vec"])
        assert float(np.dot(q, a_row)) > float(np.dot(q, c_row))

    def test_no_recent_items_is_cold(self):
        cluster, client = built_store()
        with pytest.raises(ColdIndexError) as err:
            VQRetriever(client).query_vector("ghost")
        assert err.value.reason == "no_recent"

    def test_recent_without_rows_is_cold(self):
        cluster = TDStoreCluster(num_data_servers=2, num_instances=8)
        client = cluster.client()
        client.put(StateKeys.recent("u1"), [("never-embedded", 5.0, 0.0)])
        with pytest.raises(ColdIndexError) as err:
            VQRetriever(client).query_vector("u1")
        assert err.value.reason == "unembedded_user"


class TestRetrieve:
    def test_full_probe_equals_brute_force(self):
        cluster, client = built_store()
        retriever = VQRetriever(client, RetrieverConfig(probe_width=10**6))
        q = np.asarray(client.get(K.embedding("b0"))["vec"], dtype=np.float64)
        answer = retriever.retrieve(q, 10)
        assert list(answer.items) == brute_force_rank(client, q, ITEMS, 10)

    def test_recall_grows_with_probe_width(self):
        cluster, client = built_store()
        q = np.asarray(client.get(K.embedding("a0"))["vec"], dtype=np.float64)
        want = set(brute_force_rank(client, q, ITEMS, 8))

        def recall(width):
            retriever = VQRetriever(client, RetrieverConfig(probe_width=width))
            got = set(retriever.retrieve(q, 8).items)
            return len(got & want) / len(want)

        recalls = [recall(w) for w in (1, 2, 4, 10**6)]
        assert recalls == sorted(recalls)  # wider probe never loses recall
        assert recalls[0] > 0.0
        assert recalls[-1] == 1.0  # full probe + re-rank is exact

    def test_empty_index_is_cold(self):
        cluster = TDStoreCluster(num_data_servers=2, num_instances=8)
        retriever = VQRetriever(cluster.client())
        with pytest.raises(ColdIndexError):
            retriever.retrieve(np.ones(8) / np.sqrt(8.0), 5)
        assert retriever.stats.cold_misses == 1

    def test_exclude_drops_candidates(self):
        cluster, client = built_store()
        retriever = VQRetriever(client, RetrieverConfig(probe_width=10**6))
        q = np.asarray(client.get(K.embedding("a0"))["vec"], dtype=np.float64)
        full = retriever.retrieve(q, 5)
        cut = retriever.retrieve(q, 5, exclude={full.items[0]})
        assert full.items[0] not in cut.items

    def test_stats_account_probes_and_candidates(self):
        cluster, client = built_store()
        retriever = VQRetriever(client, RetrieverConfig(probe_width=2))
        q = np.asarray(client.get(K.embedding("a0"))["vec"], dtype=np.float64)
        answer = retriever.retrieve(q, 5)
        assert retriever.stats.queries == 1
        assert retriever.stats.probes == len(answer.probed_centroids) <= 2
        assert retriever.stats.candidates_scored >= len(answer.items)


class TestRecommend:
    def test_consumed_items_are_excluded(self):
        cluster, client = built_store()
        client.put(StateKeys.recent("u1"), [("a0", 5.0, 0.0)])
        client.put(StateKeys.history("u1"), {"a0": 5.0, "a1": 3.0})
        recs = VQRetriever(
            client, RetrieverConfig(probe_width=10**6)
        ).recommend("u1", 10, 0.0)
        items = [r.item_id for r in recs]
        assert recs and "a0" not in items and "a1" not in items
        assert all(r.source == "vq" for r in recs)

    def test_scores_descend(self):
        cluster, client = built_store()
        client.put(StateKeys.recent("u1"), [("b0", 5.0, 0.0)])
        recs = VQRetriever(client).recommend("u1", 10, 0.0)
        scores = [r.score for r in recs]
        assert scores == sorted(scores, reverse=True)


class TestProbeStats:
    def test_index_health_figures(self):
        cluster, client = built_store()
        stats = VQIndexProbe(client).stats()
        assert stats["centroids"] >= 2
        assert stats["indexed_items"] == len(ITEMS)
        assert stats["splits"] > 0
        assert stats["posting_p99"] > 0

    def test_empty_store_reads_as_zeroes(self):
        cluster = TDStoreCluster(num_data_servers=2, num_instances=8)
        stats = VQIndexProbe(cluster.client()).stats()
        assert stats == {
            "centroids": 0, "indexed_items": 0, "reassignments": 0,
            "splits": 0, "merges": 0, "posting_p99": 0,
        }


class TestValidation:
    def test_rejects_bad_probe_width(self):
        with pytest.raises(ConfigurationError):
            RetrieverConfig(probe_width=0)
