"""Integration: retrieval bolts in the CF topology, front-end serving,
and the monitoring surface — the subsystem end to end in the sim."""

import numpy as np
import pytest

from repro.engine.engine import EngineConfig, RecommenderEngine
from repro.engine.front_end import RecommenderFrontEnd
from repro.errors import ConfigurationError, EvaluationError
from repro.monitoring import SystemMonitor
from repro.retrieval import (
    EmbeddingConfig,
    RetrievalConfig,
    RetrieverConfig,
    VQConfig,
    VQIndexProbe,
)
from repro.retrieval.keys import RetrievalKeys as K
from repro.retrieval.vq import index_integrity
from repro.storm import LocalCluster
from repro.topology.framework import (
    CFTopologyConfig,
    build_cf_topology,
    unit_registry,
)
from repro.types import UserAction

RCFG = RetrievalConfig(
    embedding=EmbeddingConfig(dim=8),
    vq=VQConfig(
        dim=8, seed_centroids=2, max_centroids=8,
        split_threshold=3.0, merge_floor=1.0,
    ),
)


def clustered_actions(n_users=9, n_events=220, seed=5):
    """Users confined to one of three item groups — co-clicks stay
    within a group, so embeddings (and the index) separate them."""
    rng = np.random.default_rng(seed)
    actions, t = [], 0.0
    for e in range(n_events):
        u = int(rng.integers(n_users))
        group = u % 3
        item = f"g{group}i{int(rng.integers(4))}"
        actions.append(UserAction(f"u{u}", item, "click", t))
        t += 10.0
    return actions


def run_retrieval_topology(clock, client_factory, actions):
    config = CFTopologyConfig(
        linked_time=10**12, parallelism=2, retrieval=RCFG
    )
    topo = build_cf_topology("cf-vq", actions, clock, client_factory, config)
    cluster = LocalCluster(clock=clock)
    cluster.submit(topo)
    cluster.run_until_idle()
    return cluster


ALL_ITEMS = [f"g{g}i{i}" for g in range(3) for i in range(4)]


class TestTopologyIntegration:
    def test_stream_builds_a_consistent_index(self, clock, client_factory):
        run_retrieval_topology(clock, client_factory, clustered_actions())
        client = client_factory()
        report = index_integrity(client, ALL_ITEMS)
        assert report["assigned_items"] > 0
        assert report["problems"] == []
        stats = VQIndexProbe(client).stats()
        assert stats["centroids"] >= 2
        assert stats["indexed_items"] == report["assigned_items"]

    def test_rows_learn_group_structure(self, clock, client_factory):
        run_retrieval_topology(clock, client_factory, clustered_actions())
        client = client_factory()
        rows = {
            item: client.get(K.embedding(item), None) for item in ALL_ITEMS
        }
        learned = {i: r for i, r in rows.items() if r and r["updates"] > 0}
        assert len(learned) >= 6
        same, cross = [], []
        for a, ra in learned.items():
            for b, rb in learned.items():
                if a >= b:
                    continue
                dot = float(
                    np.dot(np.asarray(ra["vec"]), np.asarray(rb["vec"]))
                )
                (same if a[1] == b[1] else cross).append(dot)
        assert np.mean(same) > np.mean(cross)

    def test_registry_knows_the_retrieval_units(self, clock, client_factory):
        registry = unit_registry(clock, client_factory)
        for unit in ("EmbeddingPair", "EmbeddingUpdate", "VQAssign"):
            assert registry[unit]() is not None

    def test_assign_layer_rejects_parallelism_above_one(self, client_factory):
        from repro.retrieval.bolts import VQAssignBolt
        from repro.storm.component import (
            OutputCollector,
            OutputDeclaration,
            TopologyContext,
        )

        bolt = VQAssignBolt(client_factory, config=RCFG.vq)
        collector = OutputCollector(
            "vqAssign", 0, OutputDeclaration(),
            lambda tup, anchor: None, lambda tup: None, lambda tup: None,
            lambda: 0.0,
        )
        with pytest.raises(ConfigurationError):
            bolt.prepare(TopologyContext("vqAssign", 0, 2, "cf-vq"), collector)


class TestFrontEndServing:
    def serving_stack(self, clock, client_factory, actions):
        run_retrieval_topology(clock, client_factory, actions)
        engine = RecommenderEngine(
            client_factory(),
            EngineConfig(vq=RetrieverConfig(probe_width=8)),
        )
        return engine, RecommenderFrontEnd(engine, algorithm="vq")

    def test_vq_front_end_serves_live(self, clock, client_factory):
        engine, front_end = self.serving_stack(
            clock, client_factory, clustered_actions()
        )
        # pick a user the stream actually touched
        results = front_end.query("u3", 3, 10**6)
        assert results
        assert front_end.log.rungs == {"live": 1}
        assert all(r.source == "vq" for r in results)

    def test_cold_index_falls_back_to_cf_inside_live(
        self, clock, client_factory, monkeypatch
    ):
        from repro.errors import ColdIndexError

        engine, front_end = self.serving_stack(
            clock, client_factory, clustered_actions()
        )

        def cold(user_id, n, now):
            raise ColdIndexError("index not warm yet")

        monkeypatch.setattr(engine, "recommend_vq", cold)
        # a user with one consumed item: CF still has unconsumed
        # neighbours to serve from that item's similarity list
        from repro.topology.state import StateKeys

        client = client_factory()
        client.put(StateKeys.recent("probe-user"), [("g0i0", 5.0, 2000.0)])
        client.put(StateKeys.history("probe-user"), {"g0i0": 5.0})
        results = front_end.query("probe-user", 3, 10**6)
        assert results  # CF answered inside the live rung
        assert front_end.log.vq_fallbacks == 1
        assert front_end.log.rungs == {"live": 1}
        assert all(r.source != "vq" for r in results)

    def test_unseen_user_counts_a_fallback(self, clock, client_factory):
        engine, front_end = self.serving_stack(
            clock, client_factory, clustered_actions()
        )
        front_end.query("never-seen-user", 3, 10**6)
        assert front_end.log.vq_fallbacks == 1

    def test_unknown_algorithm_rejected(self, client_factory):
        engine = RecommenderEngine(client_factory(), EngineConfig())
        with pytest.raises(EvaluationError):
            RecommenderFrontEnd(engine, algorithm="ann")


class TestMonitoringSurface:
    def test_snapshot_carries_index_health(self, clock, client_factory):
        run_retrieval_topology(clock, client_factory, clustered_actions())
        client = client_factory()
        engine = RecommenderEngine(
            client, EngineConfig(vq=RetrieverConfig(probe_width=8))
        )
        front_end = RecommenderFrontEnd(engine, algorithm="vq")
        front_end.query("never-seen-user", 3, 10**6)
        monitor = SystemMonitor(clock.now)
        monitor.watch_front_end(front_end)
        monitor.watch_retrieval(VQIndexProbe(client))
        snap = monitor.snapshot()
        assert snap.vq_centroids >= 2
        assert snap.vq_indexed_items > 0
        assert snap.retrieval_cold_fallbacks == 1
        assert "retrieval:" in monitor.summary()

    def test_cold_fallback_delta_alerts(self, clock, client_factory):
        run_retrieval_topology(clock, client_factory, clustered_actions())
        client = client_factory()
        engine = RecommenderEngine(
            client, EngineConfig(vq=RetrieverConfig())
        )
        front_end = RecommenderFrontEnd(engine, algorithm="vq")
        monitor = SystemMonitor(clock.now)
        monitor.watch_front_end(front_end)
        monitor.watch_retrieval(VQIndexProbe(client))
        monitor.evaluate(monitor.snapshot())
        front_end.query("never-seen-user", 3, 10**6)
        alerts = monitor.evaluate(monitor.snapshot())
        assert any(
            a.component == "retrieval" and "fell back" in a.message
            for a in alerts
        )

    def test_posting_p99_threshold_alerts(self, clock, client_factory):
        run_retrieval_topology(clock, client_factory, clustered_actions())
        client = client_factory()
        monitor = SystemMonitor(clock.now, max_posting_p99=1)
        monitor.watch_retrieval(VQIndexProbe(client))
        alerts = monitor.evaluate(monitor.snapshot())
        assert any(
            a.component == "retrieval" and "posting-list p99" in a.message
            for a in alerts
        )
