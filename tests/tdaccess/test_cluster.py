"""Integration tests for the TDAccess cluster: pub/sub, balance, failover."""

import pytest

from repro.errors import (
    ConsumerGroupError,
    OffsetOutOfRangeError,
    PartitionUnavailableError,
    TDAccessError,
    UnknownTopicError,
)
from repro.tdaccess import TDAccessCluster
from repro.utils.clock import SimClock


def make_cluster(servers=3, partitions=6, topic="actions"):
    cluster = TDAccessCluster(SimClock(), num_data_servers=servers)
    cluster.create_topic(topic, partitions)
    return cluster


class TestPublishSubscribe:
    def test_round_trip(self):
        cluster = make_cluster()
        producer = cluster.producer()
        for i in range(20):
            producer.send("actions", {"n": i})
        consumer = cluster.consumer("actions")
        values = sorted(m.value["n"] for m in consumer.drain())
        assert values == list(range(20))

    def test_keyed_messages_land_in_one_partition(self):
        cluster = make_cluster()
        producer = cluster.producer()
        for i in range(10):
            producer.send("actions", i, key="user-42")
        partitions = {
            m.partition for m in cluster.consumer("actions").drain()
        }
        assert len(partitions) == 1

    def test_unkeyed_messages_round_robin(self):
        cluster = make_cluster(partitions=4)
        producer = cluster.producer()
        for i in range(8):
            producer.send("actions", i)
        by_partition = {}
        for m in cluster.consumer("actions").drain():
            by_partition.setdefault(m.partition, []).append(m.value)
        assert all(len(v) == 2 for v in by_partition.values())

    def test_consumer_resumes_from_offset(self):
        cluster = make_cluster(partitions=1)
        producer = cluster.producer()
        producer.send_batch("actions", [1, 2, 3])
        consumer = cluster.consumer("actions")
        assert [m.value for m in consumer.drain()] == [1, 2, 3]
        producer.send_batch("actions", [4, 5])
        assert [m.value for m in consumer.drain()] == [4, 5]

    def test_late_consumer_replays_history(self):
        cluster = make_cluster(partitions=1)
        cluster.producer().send_batch("actions", list(range(5)))
        late = cluster.consumer("actions")
        assert [m.value for m in late.drain()] == [0, 1, 2, 3, 4]

    def test_lag_reporting(self):
        cluster = make_cluster(partitions=2)
        cluster.producer().send_batch("actions", list(range(10)))
        consumer = cluster.consumer("actions")
        assert consumer.lag() == 10
        consumer.drain()
        assert consumer.lag() == 0

    def test_unknown_topic_raises(self):
        cluster = make_cluster()
        with pytest.raises(UnknownTopicError):
            cluster.producer().send("ghost", 1)


class TestBalanceAndGroups:
    def test_partitions_balanced_across_servers(self):
        cluster = make_cluster(servers=3, partitions=6)
        balance = cluster.partition_balance("actions")
        assert sorted(balance.values()) == [2, 2, 2]

    def test_consumer_group_covers_all_partitions_disjointly(self):
        cluster = make_cluster(partitions=6)
        group = cluster.consumer_group("actions", 3)
        owned = [p for member in group.members for p in member.partitions]
        assert sorted(owned) == list(range(6))

    def test_group_poll_sees_everything_once(self):
        cluster = make_cluster(partitions=6)
        cluster.producer().send_batch("actions", list(range(30)))
        group = cluster.consumer_group("actions", 3)
        values = sorted(m.value for m in group.poll_all(max_per_partition=100))
        assert values == list(range(30))

    def test_too_many_consumers_rejected(self):
        cluster = make_cluster(partitions=2)
        with pytest.raises(ConsumerGroupError, match="idle"):
            cluster.consumer_group("actions", 3)

    def test_duplicate_topic_rejected(self):
        cluster = make_cluster()
        with pytest.raises(TDAccessError, match="already exists"):
            cluster.create_topic("actions", 2)


class TestRetentionTruncatedReplay:
    """Consumer-level view of retention: earliest() and typed reseek."""

    @staticmethod
    def make_retained():
        cluster = TDAccessCluster(SimClock(), num_data_servers=1)
        cluster.create_topic(
            "actions", 1, segment_size=4, retention_segments=1
        )
        cluster.producer().send_batch("actions", list(range(20)))
        return cluster

    def test_earliest_reflects_retention(self):
        cluster = self.make_retained()
        consumer = cluster.consumer("actions")
        earliest = consumer.earliest(0)
        assert earliest is not None and earliest > 0

    def test_poll_below_retention_raises_then_reseek_resumes(self):
        cluster = self.make_retained()
        consumer = cluster.consumer("actions")  # position 0: truncated
        with pytest.raises(OffsetOutOfRangeError) as exc:
            consumer.poll()
        earliest = exc.value.earliest
        assert earliest == consumer.earliest(0)
        consumer.seek(0, earliest)
        values = [m.value for m in consumer.drain()]
        assert values == list(range(earliest, 20))

    def test_earliest_is_none_while_partition_down(self):
        cluster = self.make_retained()
        consumer = cluster.consumer("actions")
        cluster.crash_data_server(cluster.data_servers[0].server_id)
        assert consumer.earliest(0) is None

    def test_earliest_requires_owned_partition(self):
        cluster = self.make_retained()
        consumer = cluster.consumer("actions")
        with pytest.raises(ConsumerGroupError, match="does not own"):
            consumer.earliest(5)


class TestFailures:
    def test_dead_server_partitions_skipped_then_recovered(self):
        cluster = make_cluster(servers=3, partitions=6)
        producer = cluster.producer()
        producer.send_batch("actions", list(range(12)))
        victim = cluster.data_servers[0].server_id
        cluster.crash_data_server(victim)
        consumer = cluster.consumer("actions")
        partial = consumer.drain()
        assert len(partial) < 12
        cluster.recover_data_server(victim)
        rest = consumer.drain()
        assert len(partial) + len(rest) == 12

    def test_producing_to_dead_partition_raises(self):
        cluster = make_cluster(servers=1, partitions=1)
        cluster.crash_data_server(0)
        with pytest.raises(PartitionUnavailableError):
            cluster.producer().send("actions", 1, key="k")

    def test_master_failover_preserves_routing(self):
        cluster = make_cluster()
        producer = cluster.producer()
        producer.send_batch("actions", [1, 2, 3])
        cluster.failover_master()
        producer.send_batch("actions", [4, 5])
        values = sorted(m.value for m in cluster.consumer("actions").drain())
        assert values == [1, 2, 3, 4, 5]
        assert cluster.masters.failovers == 1

    def test_topic_created_after_failover(self):
        cluster = make_cluster()
        cluster.failover_master()
        cluster.create_topic("new-topic", 3)
        cluster.producer().send("new-topic", "x")
        assert len(cluster.consumer("new-topic").drain()) == 1

    def test_revive_returns_old_active_as_standby(self):
        cluster = make_cluster()
        cluster.failover_master()
        cluster.masters.revive()
        cluster.producer().send("actions", 9)
        assert len(cluster.consumer("actions").drain()) == 1
