"""Unit tests for the partition log."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import OffsetOutOfRangeError, TDAccessError
from repro.tdaccess.log import PartitionLog


def filled_log(n, **kwargs):
    log = PartitionLog("t", 0, **kwargs)
    for i in range(n):
        log.append(key=f"k{i}", value=i, timestamp=float(i))
    return log


class TestAppendAndRead:
    def test_offsets_are_dense_from_zero(self):
        log = filled_log(5)
        messages = log.read(0, 10)
        assert [m.offset for m in messages] == [0, 1, 2, 3, 4]

    def test_read_from_middle(self):
        log = filled_log(10)
        messages = log.read(4, 3)
        assert [m.value for m in messages] == [4, 5, 6]

    def test_read_at_head_returns_empty(self):
        log = filled_log(3)
        assert log.read(3, 10) == []

    def test_read_past_head_returns_empty(self):
        log = filled_log(3)
        assert log.read(99, 10) == []

    def test_messages_carry_identity_and_timestamp(self):
        log = filled_log(1)
        msg = log.read(0, 1)[0]
        assert (msg.topic, msg.partition) == ("t", 0)
        assert msg.timestamp == 0.0

    def test_zero_max_messages(self):
        assert filled_log(3).read(0, 0) == []


class TestSegments:
    def test_segments_roll_at_segment_size(self):
        log = filled_log(10, segment_size=4)
        assert log.segment_count() == 3

    def test_read_spans_segment_boundary(self):
        log = filled_log(10, segment_size=4)
        assert [m.value for m in log.read(2, 5)] == [2, 3, 4, 5, 6]

    def test_retention_drops_oldest_segments(self):
        log = filled_log(20, segment_size=4, retention_segments=2)
        assert log.start_offset > 0
        assert log.next_offset == 20

    def test_reading_expired_offset_raises(self):
        log = filled_log(20, segment_size=4, retention_segments=2)
        with pytest.raises(TDAccessError, match="below retained start"):
            log.read(0, 5)

    def test_scan_replays_everything_retained(self):
        log = filled_log(10, segment_size=3)
        assert [m.value for m in log.scan()] == list(range(10))

    def test_invalid_config_rejected(self):
        with pytest.raises(TDAccessError):
            PartitionLog("t", 0, segment_size=0)
        with pytest.raises(TDAccessError):
            PartitionLog("t", 0, retention_segments=0)


class TestTruncatedReplay:
    """The typed error replay callers need to survive retention."""

    def test_error_is_a_tdaccess_error(self):
        assert issubclass(OffsetOutOfRangeError, TDAccessError)

    def test_read_error_carries_earliest_retained_offset(self):
        log = filled_log(20, segment_size=4, retention_segments=2)
        with pytest.raises(OffsetOutOfRangeError) as exc:
            log.read(0, 5)
        assert exc.value.earliest == log.start_offset
        # reseeking at the reported offset succeeds
        resumed = log.read(exc.value.earliest, 5)
        assert resumed[0].offset == log.start_offset

    def test_scan_from_truncated_offset_raises(self):
        log = filled_log(20, segment_size=4, retention_segments=2)
        with pytest.raises(OffsetOutOfRangeError) as exc:
            list(log.scan(1))
        assert exc.value.earliest == log.start_offset

    def test_scan_default_means_everything_retained(self):
        log = filled_log(20, segment_size=4, retention_segments=2)
        values = [m.value for m in log.scan()]
        assert values == list(range(log.start_offset, 20))

    def test_scan_from_exact_start_offset_allowed(self):
        log = filled_log(20, segment_size=4, retention_segments=2)
        offsets = [m.offset for m in log.scan(log.start_offset)]
        assert offsets == list(range(log.start_offset, 20))


class TestLogProperties:
    @given(
        st.lists(st.integers(), min_size=0, max_size=200),
        st.integers(min_value=1, max_value=16),
    )
    def test_scan_equals_appended_sequence(self, values, segment_size):
        log = PartitionLog("t", 0, segment_size=segment_size)
        for i, value in enumerate(values):
            log.append(key=None, value=value, timestamp=float(i))
        assert [m.value for m in log.scan()] == values

    @given(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=1, max_value=50),
    )
    def test_read_window_is_contiguous(self, n, start, width):
        log = filled_log(n, segment_size=7)
        if start > n:
            start = n
        messages = log.read(start, width)
        expected = list(range(start, min(n, start + width)))
        assert [m.offset for m in messages] == expected
