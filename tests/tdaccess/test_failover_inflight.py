"""Master failover with producers and consumers in flight.

The paper's availability claim for TDAccess rests on the master pair:
the standby mirrors placement per mutation, so killing the active master
mid-batch must cost at most one retried request — never a message.
"""

import pytest

from repro.errors import MasterUnavailableError
from repro.resilience import RetryPolicy
from repro.tdaccess.cluster import TDAccessCluster
from repro.utils.clock import SimClock

TOPIC = "actions"


def make_cluster(num_partitions: int = 3) -> TDAccessCluster:
    cluster = TDAccessCluster(SimClock(), num_data_servers=2)
    cluster.create_topic(TOPIC, num_partitions)
    return cluster


def drain(cluster: TDAccessCluster) -> list:
    return cluster.consumer(TOPIC).poll(10_000)


class TestProducerInFlightFailover:
    def test_no_message_lost_across_failover(self):
        cluster = make_cluster()
        producer = cluster.producer()
        for i in range(5):
            producer.send(TOPIC, {"seq": i}, key=f"u{i}")
        cluster.failover_master()
        for i in range(5, 10):
            producer.send(TOPIC, {"seq": i}, key=f"u{i}")

        assert cluster.masters.failovers == 1
        assert producer.sent == 10
        # the cached (dead) master cost exactly one retried send
        assert producer.send_retries == 1
        delivered = sorted(m.value["seq"] for m in drain(cluster))
        assert delivered == list(range(10))

    def test_keyed_partitioning_survives_failover(self):
        cluster = make_cluster()
        producer = cluster.producer()
        before = producer.send(TOPIC, {"seq": 0}, key="sticky")
        cluster.failover_master()
        after = producer.send(TOPIC, {"seq": 1}, key="sticky")
        # the standby mirrors placement, so the key's partition is stable
        assert after.partition == before.partition

    def test_dead_master_without_pair_surfaces(self):
        cluster = make_cluster()
        producer = cluster.producer()
        producer.send(TOPIC, {"seq": 0})
        cluster.masters.active.alive = False  # no standby takeover
        with pytest.raises(MasterUnavailableError):
            producer.send(TOPIC, {"seq": 1})

    def test_retry_policy_absorbs_browned_out_server(self):
        cluster = make_cluster(num_partitions=1)
        clock = cluster.clock
        producer = cluster.producer(
            retry=RetryPolicy(max_attempts=3, base_delay=0.01,
                              sleep=clock.advance)
        )
        # drop every 2nd request on the single hosting server: each
        # failed append is followed by a retried one that lands
        server_id = cluster.masters.active.route(TOPIC, 0).server_id
        cluster.set_degradation(server_id, error_every=2)
        for i in range(6):
            producer.send(TOPIC, {"seq": i})
        assert producer.sent == 6
        assert producer.send_retries > 0
        cluster.clear_degradation(server_id)
        assert sorted(m.value["seq"] for m in drain(cluster)) == list(range(6))


class TestConsumerInFlightFailover:
    def test_poll_straddles_failover(self):
        cluster = make_cluster()
        producer = cluster.producer()
        for i in range(4):
            producer.send(TOPIC, {"seq": i}, key=f"u{i}")
        consumer = cluster.consumer(TOPIC)
        first = consumer.poll()
        cluster.failover_master()
        for i in range(4, 8):
            producer.send(TOPIC, {"seq": i}, key=f"u{i}")
        second = consumer.poll()

        assert cluster.masters.failovers == 1
        got = sorted(m.value["seq"] for m in first + second)
        assert got == list(range(8))
        # the pair redirects routing transparently: no retry needed
        assert consumer.poll_retries == 0

    def test_poll_retries_through_brownout(self):
        cluster = make_cluster(num_partitions=1)
        producer = cluster.producer()
        for i in range(3):
            producer.send(TOPIC, {"seq": i})
        server_id = cluster.masters.active.route(TOPIC, 0).server_id
        cluster.set_degradation(server_id, error_every=2)
        consumer = cluster.consumer(TOPIC)
        # reads alternate fail/succeed; the consumer's one retry per
        # partition is enough to land every batch
        collected = []
        for _ in range(4):
            collected.extend(consumer.poll())
        assert sorted(m.value["seq"] for m in collected) == list(range(3))
        assert consumer.poll_retries > 0

    def test_partition_down_skipped_then_delivered(self):
        cluster = make_cluster(num_partitions=2)
        producer = cluster.producer()
        for i in range(6):
            producer.send(TOPIC, {"seq": i})
        balance = cluster.partition_balance(TOPIC)
        down = sorted(balance)[0]
        cluster.crash_data_server(down)
        consumer = cluster.consumer(TOPIC)
        partial = consumer.poll()
        assert 0 < len(partial) < 6  # live partitions still drain
        cluster.recover_data_server(down)
        rest = consumer.poll()
        got = sorted(m.value["seq"] for m in partial + rest)
        assert got == list(range(6))

    def test_revived_master_rejoins_as_standby(self):
        cluster = make_cluster()
        producer = cluster.producer()
        producer.send(TOPIC, {"seq": 0})
        cluster.failover_master()
        cluster.masters.revive()
        producer.send(TOPIC, {"seq": 1})
        # a second failover now kills the *new* active (the old standby)
        cluster.failover_master()
        producer.send(TOPIC, {"seq": 2})
        assert cluster.masters.failovers == 2
        assert len(drain(cluster)) == 3
