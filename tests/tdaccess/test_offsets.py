"""Tests for server-side committed offsets (consumer crash-resume)."""

import pytest

from repro.errors import ConsumerGroupError
from repro.tdaccess import TDAccessCluster
from repro.tdaccess.consumer import OffsetStore
from repro.utils.clock import SimClock


def make_cluster():
    cluster = TDAccessCluster(SimClock(), num_data_servers=2)
    cluster.create_topic("actions", 2)
    return cluster


class TestOffsetStore:
    def test_commit_and_read(self):
        store = OffsetStore()
        store.commit("g", "t", 0, 42)
        assert store.committed("g", "t", 0) == 42
        assert store.committed("g", "t", 1) is None
        assert store.committed("other", "t", 0) is None


class TestCommittedConsumption:
    def test_restart_resumes_from_commit(self):
        cluster = make_cluster()
        cluster.producer().send_batch("actions", list(range(10)))
        first = cluster.consumer("actions", group_id="etl")
        consumed = first.drain()
        assert len(consumed) == 10
        first.commit()
        # more data arrives; the consumer process "crashes"
        cluster.producer().send_batch("actions", [10, 11, 12])
        del first
        # a replacement in the same group resumes after the commit
        second = cluster.consumer("actions", group_id="etl")
        values = sorted(m.value for m in second.drain())
        assert values == [10, 11, 12]

    def test_uncommitted_progress_lost_on_restart(self):
        cluster = make_cluster()
        cluster.producer().send_batch("actions", list(range(5)))
        first = cluster.consumer("actions", group_id="etl")
        first.drain()  # no commit!
        second = cluster.consumer("actions", group_id="etl")
        assert len(second.drain()) == 5  # replayed: at-least-once

    def test_groups_are_independent(self):
        cluster = make_cluster()
        cluster.producer().send_batch("actions", list(range(4)))
        etl = cluster.consumer("actions", group_id="etl")
        etl.drain()
        etl.commit()
        audit = cluster.consumer("actions", group_id="audit")
        assert len(audit.drain()) == 4

    def test_commit_without_group_rejected(self):
        cluster = make_cluster()
        plain = cluster.consumer("actions")
        with pytest.raises(ConsumerGroupError, match="group_id"):
            plain.commit()

    def test_group_id_requires_store(self):
        from repro.tdaccess.consumer import Consumer

        cluster = make_cluster()
        with pytest.raises(ConsumerGroupError, match="together"):
            Consumer(cluster.masters, "actions", group_id="g")
