"""Tests for the signal-driven autoscaler.

The contract under test: decisions come only from monitor snapshots,
hysteresis (sustain counts) and cooldown prevent flapping, dry-run mode
records without acting, and every decision is observable through the
monitor's own snapshot/alert surface.
"""

from repro.elastic import Autoscaler, InstanceMigrator, ThresholdHysteresisPolicy
from repro.monitoring import SystemMonitor, SystemSnapshot
from repro.tdstore.cluster import TDStoreCluster


class FakeStorm:
    """Duck-typed LocalCluster surface the autoscaler touches."""

    def __init__(self, parallelism, depths):
        self.parallelism = dict(parallelism)
        self.depths = dict(depths)
        self.rebalances = []

    def queue_depths(self, topology):
        return dict(self.depths)

    def parallelism_of(self, topology, component):
        return self.parallelism[component]

    def rebalance(self, topology, component, parallelism):
        self.rebalances.append((component, parallelism))
        self.parallelism[component] = parallelism


def make_monitor():
    return SystemMonitor(clock_now=lambda: 0.0)


def snap(t, **fields):
    return SystemSnapshot(timestamp=t, **fields)


def make_autoscaler(storm, policy=None, **kwargs):
    return Autoscaler(
        make_monitor(),
        storm=storm,
        topology="topo",
        components=["count"],
        policy=policy or ThresholdHysteresisPolicy(
            queue_high_per_task=10, queue_low_per_task=1,
            sustain_up=2, sustain_down=2, cooldown=60.0,
        ),
        **kwargs,
    )


class TestHysteresis:
    def test_single_pressured_snapshot_holds(self):
        storm = FakeStorm({"count": 2}, {"count": 100})
        scaler = make_autoscaler(storm)
        decisions = scaler.evaluate(snap(0.0))
        assert [d.action for d in decisions] == ["hold"]
        assert storm.rebalances == []

    def test_sustained_pressure_doubles_parallelism(self):
        storm = FakeStorm({"count": 2}, {"count": 100})
        scaler = make_autoscaler(storm)
        scaler.evaluate(snap(0.0))
        decisions = scaler.evaluate(snap(10.0))
        assert decisions[-1].action == "scale_up"
        assert decisions[-1].applied
        assert storm.rebalances == [("count", 4)]
        assert "queue depth" in decisions[-1].reason

    def test_pressure_counter_resets_between_watermarks(self):
        storm = FakeStorm({"count": 2}, {"count": 100})
        scaler = make_autoscaler(storm)
        scaler.evaluate(snap(0.0))
        storm.depths["count"] = 10  # back between the watermarks
        scaler.evaluate(snap(10.0))
        storm.depths["count"] = 100
        decisions = scaler.evaluate(snap(20.0))
        # one pressured snapshot after the reset: still holding
        assert decisions[-1].action == "hold"
        assert storm.rebalances == []

    def test_sustained_relief_halves_parallelism(self):
        storm = FakeStorm({"count": 8}, {"count": 0})
        scaler = make_autoscaler(storm)
        scaler.evaluate(snap(0.0))
        decisions = scaler.evaluate(snap(10.0))
        assert decisions[-1].action == "scale_down"
        assert decisions[-1].applied
        assert storm.rebalances == [("count", 4)]

    def test_scale_down_respects_min_parallelism(self):
        storm = FakeStorm({"count": 1}, {"count": 0})
        scaler = make_autoscaler(storm)
        scaler.evaluate(snap(0.0))
        decisions = scaler.evaluate(snap(10.0))
        # already at the floor: no decision at all (nothing to halve)
        assert all(d.action != "scale_down" for d in decisions)
        assert storm.rebalances == []

    def test_scale_up_capped_at_max_parallelism(self):
        policy = ThresholdHysteresisPolicy(
            queue_high_per_task=10, sustain_up=1, max_parallelism=4,
        )
        storm = FakeStorm({"count": 4}, {"count": 1000})
        scaler = make_autoscaler(storm, policy=policy)
        decisions = scaler.evaluate(snap(0.0))
        assert decisions[-1].action == "hold"
        assert "max parallelism" in decisions[-1].reason


class TestCooldown:
    def test_applied_action_starts_cooldown(self):
        storm = FakeStorm({"count": 2}, {"count": 100})
        scaler = make_autoscaler(storm)
        scaler.evaluate(snap(0.0))
        scaler.evaluate(snap(10.0))  # applies scale_up at t=10
        scaler.evaluate(snap(20.0))
        decisions = scaler.evaluate(snap(30.0))
        # still pressured, but inside the 60s cooldown window
        assert decisions[-1].action == "hold"
        assert "cooldown" in decisions[-1].reason
        assert storm.rebalances == [("count", 4)]

    def test_cooldown_expires(self):
        storm = FakeStorm({"count": 2}, {"count": 100})
        scaler = make_autoscaler(storm)
        scaler.evaluate(snap(0.0))
        scaler.evaluate(snap(10.0))    # scale_up 2 -> 4 at t=10
        scaler.evaluate(snap(100.0))   # pressure 1/2 (counters were reset)
        decisions = scaler.evaluate(snap(110.0))
        assert decisions[-1].action == "scale_up"
        assert storm.rebalances == [("count", 4), ("count", 8)]


class TestGlobalPressureSignals:
    def test_shed_rate_counts_as_pressure(self):
        storm = FakeStorm({"count": 2}, {"count": 6})  # 3/task: moderate
        scaler = make_autoscaler(storm)
        scaler.evaluate(snap(0.0, shed_rate=0.2))
        decisions = scaler.evaluate(snap(10.0, shed_rate=0.2))
        assert decisions[-1].action == "scale_up"
        assert "shed rate" in decisions[-1].reason

    def test_open_breaker_counts_as_pressure(self):
        storm = FakeStorm({"count": 2}, {"count": 6})
        scaler = make_autoscaler(storm)
        states = {"tdstore": "open"}
        scaler.evaluate(snap(0.0, breaker_states=states))
        decisions = scaler.evaluate(snap(10.0, breaker_states=states))
        assert decisions[-1].action == "scale_up"
        assert "breaker" in decisions[-1].reason

    def test_no_scale_down_while_global_pressure(self):
        storm = FakeStorm({"count": 8}, {"count": 0})
        scaler = make_autoscaler(storm)
        for t in range(5):
            decisions = scaler.evaluate(snap(float(t), shed_rate=0.5))
            assert all(d.action != "scale_down" for d in decisions)
        assert storm.rebalances == []


class TestDryRun:
    def test_decisions_recorded_but_not_applied(self):
        storm = FakeStorm({"count": 2}, {"count": 100})
        scaler = make_autoscaler(storm, dry_run=True)
        scaler.evaluate(snap(0.0))
        decisions = scaler.evaluate(snap(10.0))
        assert decisions[-1].action == "scale_up"
        assert not decisions[-1].applied
        assert storm.rebalances == []
        assert storm.parallelism["count"] == 2


class TestStoreExpansion:
    def test_sustained_backlog_expands_and_rebalances(self):
        tdstore = TDStoreCluster(num_data_servers=3, num_instances=12)
        client = tdstore.client()
        for i in range(40):
            client.put(f"hist:u{i}", i)
        monitor = make_monitor()
        scaler = Autoscaler(
            monitor,
            tdstore=tdstore,
            migrator=InstanceMigrator(tdstore),
            policy=ThresholdHysteresisPolicy(
                backlog_high=100, sustain_up=2, cooldown=60.0,
            ),
        )
        scaler.evaluate(snap(0.0, replication_backlog=500))
        decisions = scaler.evaluate(snap(10.0, replication_backlog=500))
        assert decisions[-1].action == "expand_store"
        assert decisions[-1].applied
        assert len(tdstore.data_servers) == 4
        assert decisions[-1].detail["migrations"] > 0
        load = tdstore.config.route_table().host_load()
        spread = [load.get(s.server_id, 0) for s in tdstore.data_servers]
        assert max(spread) - min(spread) <= 1
        assert all(client.get(f"hist:u{i}") == i for i in range(40))

    def test_read_imbalance_triggers_expansion(self):
        tdstore = TDStoreCluster(num_data_servers=3, num_instances=12)
        scaler = Autoscaler(
            make_monitor(),
            tdstore=tdstore,
            policy=ThresholdHysteresisPolicy(
                imbalance_high=2.0, sustain_up=1, cooldown=60.0,
            ),
        )
        decisions = scaler.evaluate(
            snap(0.0, tdstore_reads={0: 1000, 1: 10, 2: 10})
        )
        assert decisions[-1].action == "expand_store"
        assert "imbalance" in decisions[-1].reason

    def test_expansion_capped_at_max_pool(self):
        tdstore = TDStoreCluster(num_data_servers=3, num_instances=12)
        scaler = Autoscaler(
            make_monitor(),
            tdstore=tdstore,
            policy=ThresholdHysteresisPolicy(
                backlog_high=100, sustain_up=1, max_store_servers=3,
            ),
        )
        decisions = scaler.evaluate(snap(0.0, replication_backlog=500))
        assert decisions[-1].action == "hold"
        assert "max pool size" in decisions[-1].reason
        assert len(tdstore.data_servers) == 3


class TestMonitorIntegration:
    def test_decisions_surface_in_snapshot_and_alerts(self):
        tdstore = TDStoreCluster(num_data_servers=3, num_instances=12)
        monitor = SystemMonitor(clock_now=lambda: 0.0, tdstore=tdstore)
        scaler = Autoscaler(
            monitor,
            tdstore=tdstore,
            migrator=InstanceMigrator(tdstore),
            policy=ThresholdHysteresisPolicy(backlog_high=100, sustain_up=1),
        )
        baseline = monitor.snapshot()
        assert baseline.autoscaler_decisions == 0
        scaler.evaluate(snap(1.0, replication_backlog=500))
        after = monitor.snapshot()
        assert after.autoscaler_decisions == 1
        assert after.autoscaler_applied == 1
        assert after.autoscaler_last_action == "expand_store:tdstore"
        assert after.migrations_completed > 0
        assert after.route_epoch > 0
        alerts = monitor.evaluate(after)
        messages = [a.message for a in alerts if a.component == "elastic"]
        assert any("autoscaler applied" in m for m in messages)
        assert "autoscaler" in monitor.summary()

    def test_in_flight_migration_alerts(self):
        from repro.elastic import Migration

        tdstore = TDStoreCluster(num_data_servers=3, num_instances=12)
        monitor = SystemMonitor(clock_now=lambda: 0.0, tdstore=tdstore)
        target = tdstore.add_data_server()
        migration = Migration(tdstore.config, 0, target)
        migration.begin()
        snapshot = monitor.snapshot()
        assert snapshot.migrations_in_flight == 1
        alerts = monitor.evaluate(snapshot)
        assert any(
            "migration(s) in flight" in a.message
            for a in alerts
            if a.component == "elastic"
        )
        migration.finish()
