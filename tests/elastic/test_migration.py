"""Unit tests for live TDStore instance migration.

The protocol under test: snapshot-copy → dual-write catch-up →
epoch-bumped cutover, with journals and versions travelling alongside
the data so exactly-once semantics survive the move, and clients
following the move through the existing ``route_epoch`` gate.
"""

import pytest

from repro.elastic import InstanceMigrator, Migration, invalidation_for_key
from repro.errors import MigrationError, MigrationInProgressError, TDStoreError
from repro.tdstore.cluster import TDStoreCluster
from repro.tdstore.data_server import TDStoreDataServer
from repro.tdstore.engines import MDBEngine
from repro.utils.clock import SimClock

INSTANCES = 8


def make_cluster(servers=3):
    return TDStoreCluster(num_data_servers=servers, num_instances=INSTANCES)


def keys_on_instance(cluster, instance, n=5, prefix="hist:u"):
    """Deterministic keys that hash onto ``instance``."""
    table = cluster.config.route_table()
    found = []
    i = 0
    while len(found) < n:
        key = f"{prefix}{i}"
        if table.instance_for_key(key) == instance:
            found.append(key)
        i += 1
    return found


class TestProtocolPhases:
    def test_full_move_preserves_values_and_bumps_epoch(self):
        cluster = make_cluster()
        client = cluster.client()
        for i in range(60):
            client.put(f"hist:u{i}", [i])
        target = cluster.add_data_server()
        epoch_before = cluster.config.route_epoch
        migrator = InstanceMigrator(cluster)
        record = migrator.migrate(0, target)
        assert record.state == "done"
        assert record.keys_copied > 0
        assert cluster.config.route_epoch == epoch_before + 1
        assert cluster.config.route_table().route(0).host == target
        assert all(client.get(f"hist:u{i}") == [i] for i in range(60))

    def test_dual_write_window_catches_up_at_cutover(self):
        cluster = make_cluster()
        client = cluster.client()
        target = cluster.add_data_server()
        migration = Migration(cluster.config, 0, target)
        migration.begin()
        # a write landing on the moving instance inside the window must
        # reach the target's catch-up queue, journal and version included
        keys = keys_on_instance(cluster, 0, n=3)
        for key in keys:
            client.put(key, f"in-window:{key}")
        record = migration.finish()
        assert record.records_caught_up >= len(keys)
        for key in keys:
            assert client.get(key) == f"in-window:{key}"

    def test_journal_travels_so_replays_stay_noops(self):
        cluster = make_cluster()
        client = cluster.client()
        keys = keys_on_instance(cluster, 0, n=4)
        for i, key in enumerate(keys):
            assert client.put_once(key, f"op-{key}", i)
        target = cluster.add_data_server()
        InstanceMigrator(cluster).migrate(0, target)
        # same op ids replayed against the new host: all deduplicated
        for i, key in enumerate(keys):
            assert not client.put_once(key, f"op-{key}", 999)
            assert client.get(key) == i

    def test_fenced_read_awaits_cutover_and_charges_stall(self):
        cluster = make_cluster()
        clock = SimClock()
        client = cluster.client(clock=clock)
        key = keys_on_instance(cluster, 0, n=1)[0]
        client.put(key, "v")
        target = cluster.add_data_server()
        migration = Migration(
            cluster.config, 0, target, clock_now=clock.now
        )
        migration.begin()
        migration.enter_cutover()
        before = clock.now()
        assert client.get(key) == "v"
        assert migration.state == "done"
        assert client.migration_stalls == 1
        assert client.migration_stall_seconds > 0.0
        assert clock.now() > before  # the wait is real simulated time

    def test_fence_raises_for_direct_server_access(self):
        cluster = make_cluster()
        target = cluster.add_data_server()
        migration = Migration(cluster.config, 0, target)
        migration.begin()
        migration.enter_cutover()
        source_id = migration.source_id
        with pytest.raises(MigrationInProgressError) as exc_info:
            cluster.config.server(source_id).get(0, "hist:any", None)
        assert exc_info.value.instance == 0

    def test_stepped_write_through_fence(self):
        cluster = make_cluster()
        client = cluster.client()
        key = keys_on_instance(cluster, 0, n=1)[0]
        target = cluster.add_data_server()
        migration = Migration(cluster.config, 0, target)
        migration.begin()
        migration.enter_cutover()
        client.put(key, "written-through-cutover")
        assert migration.state == "done"  # the writer completed the move
        assert cluster.config.route_table().route(0).host == target
        assert client.get(key) == "written-through-cutover"


class TestValidationAndAborts:
    def test_begin_rejects_dead_target(self):
        cluster = make_cluster(servers=4)
        cluster.crash_data_server(3)
        free = [
            s for s in range(3)
            if s not in (
                cluster.config.route_table().route(0).host,
                cluster.config.route_table().route(0).slave,
            )
        ]
        with pytest.raises(MigrationError, match="down"):
            Migration(cluster.config, 0, 3).begin()
        assert free  # sanity: the topology leaves a legal target too

    def test_begin_rejects_host_and_slave_targets(self):
        cluster = make_cluster()
        route = cluster.config.route_table().route(0)
        with pytest.raises(MigrationError, match="already hosted"):
            Migration(cluster.config, 0, route.host).begin()
        with pytest.raises(MigrationError, match="promote"):
            Migration(cluster.config, 0, route.slave).begin()

    def test_one_migration_per_instance(self):
        cluster = make_cluster()
        t1 = cluster.add_data_server()
        t2 = cluster.add_data_server()
        Migration(cluster.config, 0, t1).begin()
        with pytest.raises(MigrationError, match="in flight"):
            Migration(cluster.config, 0, t2).begin()

    def test_target_death_aborts_and_lowers_fence(self):
        cluster = make_cluster()
        client = cluster.client()
        key = keys_on_instance(cluster, 0, n=1)[0]
        client.put(key, "survives")
        target = cluster.add_data_server()
        migration = Migration(cluster.config, 0, target)
        migration.begin()
        migration.enter_cutover()
        cluster.crash_data_server(target)
        with pytest.raises(MigrationError, match="died mid-move"):
            migration.finish()
        assert migration.state == "aborted"
        assert cluster.config.migrations_aborted == 1
        # fence is down and the source still serves
        assert client.get(key) == "survives"

    def test_source_failover_aborts_in_flight_migration(self):
        cluster = make_cluster()
        client = cluster.client()
        key = keys_on_instance(cluster, 0, n=1)[0]
        client.put(key, "survives-failover")
        target = cluster.add_data_server()
        migration = Migration(cluster.config, 0, target)
        migration.begin()
        source = migration.source_id
        cluster.crash_data_server(source)
        # failover aborts the migration touching the dead source before
        # promoting slaves, so route state is fence-free afterwards
        assert client.get(key) == "survives-failover"
        assert migration.state == "aborted"
        assert cluster.config.migration_target(0) is None

    def test_await_after_abort_is_a_clean_retry(self):
        cluster = make_cluster()
        client = cluster.client()
        key = keys_on_instance(cluster, 0, n=1)[0]
        client.put(key, "v")
        target = cluster.add_data_server()
        migration = Migration(cluster.config, 0, target)
        migration.begin()
        migration.enter_cutover()
        cluster.crash_data_server(target)
        # the client hits the fence; await finds the abort and retries
        # against the (unchanged) authoritative route
        assert client.get(key) == "v"
        assert migration.state == "aborted"

    def test_abort_is_idempotent(self):
        cluster = make_cluster()
        target = cluster.add_data_server()
        migration = Migration(cluster.config, 0, target)
        migration.begin()
        migration.abort()
        migration.abort()
        assert cluster.config.migrations_aborted == 1
        with pytest.raises(MigrationError, match="aborted"):
            migration.finish()


class TestClusterExpansionAndDrain:
    def test_add_server_rejects_duplicates_and_dead(self):
        cluster = make_cluster()
        with pytest.raises(TDStoreError, match="already registered"):
            cluster.config.add_server(TDStoreDataServer(0, MDBEngine))
        dead = TDStoreDataServer(99, MDBEngine)
        dead.crash()
        with pytest.raises(TDStoreError, match="dead"):
            cluster.config.add_server(dead)

    def test_rebalance_spreads_load_onto_new_servers(self):
        cluster = make_cluster(servers=3)
        client = cluster.client()
        for i in range(80):
            client.put(f"hist:u{i}", i)
        cluster.add_data_server()
        cluster.add_data_server()
        moves = InstanceMigrator(cluster).rebalance()
        assert moves
        load = cluster.config.route_table().host_load()
        live = [s.server_id for s in cluster.config.servers() if s.alive]
        spread = [load.get(sid, 0) for sid in live]
        assert max(spread) - min(spread) <= 1
        assert all(client.get(f"hist:u{i}") == i for i in range(80))

    def test_drain_empties_server_and_keeps_data(self):
        cluster = make_cluster(servers=4)
        client = cluster.client()
        for i in range(80):
            client.put(f"hist:u{i}", i)
        records = cluster.drain_data_server(0)
        table = cluster.config.route_table()
        assert table.instances_hosted_by(0) == []
        assert table.instances_backed_by(0) == []
        assert len(records) > 0
        assert all(client.get(f"hist:u{i}") == i for i in range(80))

    def test_drain_refuses_below_replication_minimum(self):
        cluster = make_cluster(servers=3)
        cluster.crash_data_server(2)
        with pytest.raises(MigrationError, match="fewer than two"):
            cluster.drain_data_server(0)

    def test_migration_stats_surface(self):
        cluster = make_cluster()
        target = cluster.add_data_server()
        migration = Migration(cluster.config, 0, target)
        migration.begin()
        stats = cluster.migration_stats()
        assert len(stats["in_flight"]) == 1
        assert stats["in_flight"][0]["instance"] == 0
        assert stats["in_flight"][0]["state"] == "catching_up"
        migration.enter_cutover()
        migration.finish()
        stats = cluster.migration_stats()
        assert stats["completed"] == 1
        assert stats["in_flight"] == []


class TestServingInvalidation:
    def test_key_to_invalidation_mapping(self):
        assert invalidation_for_key("hist:u1") == ("user", "u1")
        assert invalidation_for_key("recent:u2") == ("user", "u2")
        assert invalidation_for_key("consumed:u3") == ("user", "u3")
        assert invalidation_for_key("simlist:i4") == ("item", "i4")
        assert invalidation_for_key("hot:news") == ("group", "news")
        assert invalidation_for_key("ctr:i5|home") == ("ctr", "i5")
        # meta keys and unknown families publish nothing
        assert invalidation_for_key("__ops__:hist:u1") is None
        assert invalidation_for_key("__ver__:hist:u1") is None
        assert invalidation_for_key("itemCount:") is None
        assert invalidation_for_key("pairCount:a|b") is None

    def test_cutover_publishes_invalidations_for_migrated_keys(self):
        from repro.serving import InvalidationBus

        cluster = make_cluster()
        client = cluster.client()
        user_keys = keys_on_instance(cluster, 0, n=3, prefix="hist:u")
        sim_keys = keys_on_instance(cluster, 0, n=2, prefix="simlist:i")
        for key in user_keys + sim_keys:
            client.put(key, "v")
        bus = InvalidationBus()
        events = []
        bus.subscribe(lambda kind, key: events.append((kind, key)))
        target = cluster.add_data_server()
        record = InstanceMigrator(cluster, bus=bus).migrate(0, target)
        assert record.invalidations_published == len(set(events))
        for key in user_keys:
            assert ("user", key.partition(":")[2]) in events
        for key in sim_keys:
            assert ("item", key.partition(":")[2]) in events


class TestMultiGetMigrationRace:
    """Satellite: a route change racing a ``multi_get`` mid-batch does
    exactly one refetch and misroutes no key."""

    def test_cutover_mid_batch_refetches_once(self):
        cluster = TDStoreCluster(num_data_servers=3, num_instances=8)
        writer = cluster.client()
        keys = [f"hist:u{i}" for i in range(64)]
        for i, key in enumerate(keys):
            writer.put(key, i)
        # fence one instance's host before the batched read
        target = cluster.add_data_server()
        migration = Migration(cluster.config, 0, target)
        migration.begin()
        migration.enter_cutover()

        reader = cluster.client()
        refreshes_before = reader.route_refreshes
        results = reader.multi_get(keys, default=None)
        # no misrouted or lost key: every value answered exactly
        assert results == {key: i for i, key in enumerate(keys)}
        assert reader.last_failed_keys == frozenset()
        # the moving shard stalled once; the refetch happened exactly once
        assert reader.migration_stalls == 1
        assert reader.route_refreshes == refreshes_before + 1
        assert migration.state == "done"

    def test_failover_mid_batch_reroutes_without_misses(self):
        cluster = TDStoreCluster(num_data_servers=4, num_instances=8)
        writer = cluster.client()
        keys = [f"hist:u{i}" for i in range(64)]
        for i, key in enumerate(keys):
            writer.put(key, i)
        cluster.sync_replicas()
        reader = cluster.client()
        reader.multi_get(keys[:4])  # warm the table
        refreshes_before = reader.route_refreshes
        cluster.crash_data_server(0)
        results = reader.multi_get(keys, default=None)
        assert results == {key: i for i, key in enumerate(keys)}
        assert reader.last_failed_keys == frozenset()
        assert reader.route_refreshes == refreshes_before + 1
