"""Elastic-scaling acceptance test: expansion under chaos.

The headline guarantee of this layer: a TDStore pool expanding 3 → 5
servers with live instance migrations, plus a Storm bolt rebalanced
2 → 8 mid-stream, under injected faults (duplicate deliveries, a
mid-tree worker kill, a latency spike) produces **byte-identical**
recommendation state to a run with no migration and no rebalance — and
the front end answers 100% of its queries (on some rung) throughout.
"""

from repro.elastic import InstanceMigrator, Migration
from repro.engine import RecommenderEngine
from repro.engine.front_end import RecommenderFrontEnd
from repro.recovery import Fault, RecoveryHarness

from tests.recovery.helpers import (
    ITEMS,
    TOPIC,
    USERS,
    cf_topology_factory,
    make_payloads,
    make_tdaccess,
    recommendations_bytes,
    state_digest,
)

N_MESSAGES = 48
BATCH = 4
SERVERS_BEFORE = 3
SERVERS_AFTER = 5

CHAOS_PLAN = [
    Fault(2, "latency_spike", ("tdstore", 0, 0.05)),
    Fault(2, "duplicate_delivery", ("source", 2 * BATCH)),
    Fault(3, "worker_kill_midtree", ("userHistory", 0, 3, 2 * BATCH)),
    Fault(6, "clear_degradation", ("tdstore", 0)),
]


def make_harness(payloads, plan=None):
    harness = RecoveryHarness(
        make_tdaccess(payloads),
        TOPIC,
        cf_topology_factory(batch_size=BATCH),
        num_tdstore_servers=SERVERS_BEFORE,
        num_tdstore_instances=16,
        tick_interval=240.0,
    )
    harness.start(fault_plan=plan)
    return harness


def run_reference(payloads):
    harness = make_harness(payloads)
    assert harness.run() == "completed"
    now = harness.clock.now()
    return (
        recommendations_bytes(harness.client(), now),
        state_digest(harness.client()),
        now,
    )


def attach_elastic_script(harness, log):
    """Barrier hook driving the scaling script mid-stream.

    round 2: expand the store 3 -> 5 and rebalance instances onto the
    new servers (live migrations, while faults are firing).
    round 4: rebalance pairCount 2 -> 8.
    round 5: open a stepped migration and leave its cutover fence up, so
    in-stream traffic crosses a MigrationInProgress window.
    """
    migrator = InstanceMigrator(harness.tdstore, clock_now=harness.clock.now)

    def script(barrier_round):
        if barrier_round == 2 and "expanded" not in log:
            log["expanded"] = True
            harness.tdstore.add_data_server()
            harness.tdstore.add_data_server()
            log["moves"] = len(migrator.rebalance())
        elif barrier_round == 4 and "rebalanced" not in log:
            log["rebalanced"] = True
            harness.cluster.rebalance(harness.topology_name, "pairCount", 8)
        elif barrier_round == 5 and "fenced" not in log:
            # pick an instance that still has a legal target, fence it,
            # and let the stream's own writes complete the cutover
            table = harness.tdstore.config.route_table()
            for instance in range(table.num_instances):
                route = table.route(instance)
                target = next(
                    (
                        s.server_id
                        for s in harness.tdstore.config.servers()
                        if s.alive
                        and s.server_id not in (route.host, route.slave)
                    ),
                    None,
                )
                if target is None:
                    continue
                migration = Migration(
                    harness.tdstore.config, instance, target,
                    clock_now=harness.clock.now,
                )
                migration.begin()
                migration.enter_cutover()
                log["fenced"] = instance
                break

    harness.cluster.add_barrier_hook(script)


def serve_all_users(harness, now):
    """Query every user through the degradation-ladder front end."""
    front_end = RecommenderFrontEnd(
        RecommenderEngine(harness.client()),
        static_items=list(ITEMS),
    )
    answered = 0
    for user in USERS:
        results = front_end.query(user, 5, now)
        if results:
            answered += 1
    return answered, front_end.log


class TestExpansionUnderChaos:
    def test_scaling_under_faults_is_byte_identical(self):
        payloads = make_payloads(N_MESSAGES)
        want_recs, want_state, ref_now = run_reference(payloads)

        harness = make_harness(payloads, plan=CHAOS_PLAN)
        log = {}
        attach_elastic_script(harness, log)
        assert harness.run() == "completed"

        # the script actually ran mid-stream
        assert log.get("expanded") and log.get("rebalanced")
        assert log["moves"] > 0
        assert "fenced" in log
        assert len(harness.tdstore.data_servers) == SERVERS_AFTER
        # the faults actually fired
        assert harness.injector.rewinds >= 2
        assert harness.injector.midtree_fired == 1
        # every migration settled: fences down, registry empty
        stats = harness.tdstore.migration_stats()
        assert stats["in_flight"] == []
        assert stats["completed"] >= log["moves"]

        # byte-identical store contents and recommendations, evaluated
        # at the reference clock (stalls may shift the chaos clock)
        assert state_digest(harness.client()) == want_state
        got = recommendations_bytes(harness.client(), ref_now)
        assert got == want_recs

        # 100% front-end serve rate (any rung)
        answered, query_log = serve_all_users(harness, ref_now)
        assert answered == len(USERS)
        assert sum(query_log.rungs.values()) == len(USERS)
        assert query_log.shed == 0

    def test_drain_back_down_after_expansion_stays_exact(self):
        # scale up 3 -> 5, then drain the two newest servers back out:
        # the full elasticity round trip must also be invisible
        payloads = make_payloads(N_MESSAGES)
        want_recs, want_state, ref_now = run_reference(payloads)

        harness = make_harness(payloads)
        migrator = InstanceMigrator(
            harness.tdstore, clock_now=harness.clock.now
        )
        log = {}

        def script(barrier_round):
            if barrier_round == 2 and "expanded" not in log:
                log["expanded"] = True
                log["added"] = [
                    harness.tdstore.add_data_server(),
                    harness.tdstore.add_data_server(),
                ]
                migrator.rebalance()
            elif barrier_round == 5 and "drained" not in log:
                log["drained"] = True
                for server_id in log["added"]:
                    harness.tdstore.drain_data_server(
                        server_id, exclude=tuple(log["added"])
                    )

        harness.cluster.add_barrier_hook(script)
        assert harness.run() == "completed"
        assert log.get("drained")
        table = harness.tdstore.config.route_table()
        for server_id in log["added"]:
            assert table.instances_hosted_by(server_id) == []
            assert table.instances_backed_by(server_id) == []
        assert state_digest(harness.client()) == want_state
        assert recommendations_bytes(harness.client(), ref_now) == want_recs

    def test_checkpoint_manifest_records_route_epoch_and_migrations(self):
        payloads = make_payloads(N_MESSAGES)
        harness = RecoveryHarness(
            make_tdaccess(payloads),
            TOPIC,
            cf_topology_factory(batch_size=BATCH),
            num_tdstore_servers=SERVERS_BEFORE,
            num_tdstore_instances=16,
            tick_interval=240.0,
            checkpoint_every_rounds=2,
        )
        harness.start()
        migrator = InstanceMigrator(
            harness.tdstore, clock_now=harness.clock.now
        )
        log = {}

        def script(barrier_round):
            if barrier_round == 1 and "expanded" not in log:
                log["expanded"] = True
                harness.tdstore.add_data_server()
                migrator.rebalance()

        harness.cluster.add_barrier_hook(script)
        assert harness.run() == "completed"
        manifest = harness.store.latest()
        assert manifest is not None
        # the checkpoint saw the post-migration epoch, and no migration
        # was in flight at any (quiescent) barrier
        assert manifest.route_epoch == harness.tdstore.config.route_epoch
        assert manifest.route_epoch > 0
        assert manifest.migrations_in_flight == ()
