"""Tests for the A/B harness."""

import pytest

from repro.errors import EvaluationError
from repro.evaluation import (
    ABTestConfig,
    ABTestRunner,
    TencentRecCBEngine,
    make_original,
)
from repro.simulation import news_scenario, video_scenario


def cb_engines(scenario, interval=3600.0):
    profiles = scenario.population.profile

    def alive(item_id, now):
        return scenario.catalog.get(item_id).meta.is_active(now)

    return {
        "tencentrec": TencentRecCBEngine(profiles, item_alive=alive),
        "original": make_original(
            TencentRecCBEngine(profiles, item_alive=alive), interval
        ),
    }


class TestCohorts:
    def test_assignment_stable_and_total(self):
        scenario = news_scenario(seed=1, num_users=100, initial_items=50,
                                 arrivals_per_day=40)
        runner = ABTestRunner(scenario, cb_engines(scenario))
        for user_id in scenario.population.user_ids():
            assert runner.cohort_of(user_id) == runner.cohort_of(user_id)
        sizes = runner.cohort_sizes()
        assert sum(sizes.values()) == 100
        assert all(size > 20 for size in sizes.values())

    def test_needs_two_engines(self):
        scenario = news_scenario(seed=1, num_users=10, initial_items=50)
        with pytest.raises(EvaluationError):
            ABTestRunner(scenario, {"only": TencentRecCBEngine(
                scenario.population.profile)})

    def test_invalid_days(self):
        with pytest.raises(EvaluationError):
            ABTestConfig(num_days=0)


class TestRun:
    def test_produces_daily_stats(self):
        scenario = news_scenario(seed=2, num_users=60, initial_items=60,
                                 arrivals_per_day=60)
        runner = ABTestRunner(
            scenario, cb_engines(scenario), ABTestConfig(num_days=2)
        )
        result = runner.run()
        assert result.events_processed > 0
        for name in ("tencentrec", "original"):
            series = result.series(name)
            assert len(series.days) == 2
            assert series.days[1].queries > 0
            assert series.days[1].impressions > 0

    def test_paired_evaluation_scores_both_engines_every_query(self):
        scenario = news_scenario(seed=3, num_users=60, initial_items=60,
                                 arrivals_per_day=60)
        runner = ABTestRunner(
            scenario, cb_engines(scenario), ABTestConfig(num_days=1)
        )
        result = runner.run()
        treatment = result.series("tencentrec").days[0].queries
        control = result.series("original").days[0].queries
        assert treatment == control  # both answered every visit

    def test_unpaired_splits_queries_by_cohort(self):
        scenario = news_scenario(seed=3, num_users=60, initial_items=60,
                                 arrivals_per_day=60)
        runner = ABTestRunner(
            scenario, cb_engines(scenario),
            ABTestConfig(num_days=1, paired=False),
        )
        result = runner.run()
        treatment = result.series("tencentrec").days[0].queries
        control = result.series("original").days[0].queries
        assert treatment > 0 and control > 0
        sizes = runner.cohort_sizes()
        assert treatment != control or sizes["tencentrec"] == sizes["original"]

    def test_identical_engines_tie_under_paired_evaluation(self):
        """The calibration check: an engine against a 1-second-periodic
        copy of itself must show ~zero improvement."""
        scenario = news_scenario(seed=4, num_users=80, initial_items=60,
                                 arrivals_per_day=80)
        engines = cb_engines(scenario, interval=1.0)
        runner = ABTestRunner(
            scenario, engines, ABTestConfig(num_days=2)
        )
        result = runner.run()
        improvements = result.daily_improvements("tencentrec", "original")
        assert all(abs(value) < 5.0 for value in improvements)

    def test_deterministic_given_seed(self):
        outcomes = []
        for __ in range(2):
            scenario = news_scenario(seed=5, num_users=50, initial_items=50,
                                     arrivals_per_day=50)
            runner = ABTestRunner(
                scenario, cb_engines(scenario), ABTestConfig(num_days=1)
            )
            result = runner.run()
            outcomes.append(
                (
                    result.events_processed,
                    result.series("tencentrec").days[0].clicks,
                    result.series("original").days[0].clicks,
                )
            )
        assert outcomes[0] == outcomes[1]


class TestAnchoredRuns:
    def test_anchored_queries_reach_engines(self):
        from repro.evaluation import SimilarPurchaseEngine

        from repro.simulation import ecommerce_scenario

        scenario = ecommerce_scenario(seed=6, num_users=50, initial_items=80)
        profiles = scenario.population.profile
        engines = {
            "tencentrec": SimilarPurchaseEngine(profiles),
            "original": make_original(SimilarPurchaseEngine(profiles), 3600.0),
        }
        runner = ABTestRunner(
            scenario, engines, ABTestConfig(num_days=1, anchored=True)
        )
        result = runner.run()
        assert result.series("tencentrec").days[0].queries > 0


class TestStalenessHurts:
    def test_daily_baseline_loses_on_news(self):
        """The headline direction: on a churning news catalog a
        daily-refreshed model must lose clearly to the real-time one."""
        scenario = news_scenario(seed=7, num_users=150, initial_items=80,
                                 arrivals_per_day=120)
        engines = cb_engines(scenario, interval=86400.0)
        runner = ABTestRunner(
            scenario, engines, ABTestConfig(num_days=3)
        )
        result = runner.run()
        # skip day 0 (both engines cold)
        improvements = result.daily_improvements("tencentrec", "original")[1:]
        assert all(value > 0 for value in improvements)
        assert sum(improvements) / len(improvements) > 20.0
