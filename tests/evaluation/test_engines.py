"""Tests for the composite evaluation engines."""

import pytest

from repro.errors import EvaluationError
from repro.evaluation.engines import (
    PriceIndex,
    SimilarPriceEngine,
    SimilarPurchaseEngine,
    TencentRecCBEngine,
    TencentRecCFEngine,
    TencentRecCTREngine,
    make_original,
)
from repro.types import ItemMeta, UserAction, UserProfile

PROFILES = {
    "u1": UserProfile("u1", gender="male", age=25, region="beijing"),
    "u2": UserProfile("u2", gender="male", age=26, region="beijing"),
}


def profile_of(user_id):
    return PROFILES.get(user_id)


def co_clicks(a, b, users=8, t0=0.0):
    actions = []
    t = t0
    for n in range(users):
        actions.append(UserAction(f"co{n}", a, "click", t))
        actions.append(UserAction(f"co{n}", b, "click", t + 1))
        t += 2
    return actions


class TestTencentRecCFEngine:
    def test_learns_and_recommends(self):
        engine = TencentRecCFEngine(profile_of, session_seconds=None,
                                    window_sessions=None)
        for action in co_clicks("A", "B"):
            engine.observe(action)
        engine.observe(UserAction("u1", "A", "click", 100.0))
        recs = engine.recommend("u1", 3, 101.0)
        assert recs and recs[0].item_id == "B"

    def test_unknown_actions_tolerated(self):
        engine = TencentRecCFEngine(profile_of)
        engine.observe(UserAction("u1", "A", "impression", 0.0))  # no crash
        assert engine.recommend("u1", 3, 1.0) == []

    def test_item_alive_filter(self):
        dead = {"B"}
        engine = TencentRecCFEngine(
            profile_of,
            session_seconds=None,
            window_sessions=None,
            item_alive=lambda item, now: item not in dead,
        )
        for action in co_clicks("A", "B"):
            engine.observe(action)
        engine.observe(UserAction("u1", "A", "click", 100.0))
        recs = engine.recommend("u1", 3, 101.0)
        assert all(r.item_id != "B" for r in recs)

    def test_db_complement_for_cold_user(self):
        engine = TencentRecCFEngine(profile_of)
        for action in co_clicks("A", "B"):
            engine.observe(action)
        recs = engine.recommend("u2", 2, 50.0)
        assert recs  # never acted, still served via demographics
        assert all(r.source == "db" for r in recs)


class TestTencentRecCBEngine:
    def make(self):
        engine = TencentRecCBEngine(profile_of, freshness_tau=None)
        engine.on_new_item(ItemMeta("n1", category="news", tags=("sports",)))
        engine.on_new_item(ItemMeta("n2", category="news", tags=("sports",)))
        return engine

    def test_learns_content_profile(self):
        engine = self.make()
        engine.observe(UserAction("u1", "n1", "click", 0.0))
        recs = engine.recommend("u1", 2, 1.0)
        assert [r.item_id for r in recs] == ["n2"]


class TestTencentRecCTREngine:
    def test_ranks_by_ctr(self):
        engine = TencentRecCTREngine(profile_of)
        engine.on_new_item(ItemMeta("ad1"))
        engine.on_new_item(ItemMeta("ad2"))
        for __ in range(100):
            engine.observe(UserAction("u1", "ad1", "impression", 0.0))
            engine.observe(UserAction("u1", "ad2", "impression", 0.0))
        for __ in range(40):
            engine.observe(UserAction("u1", "ad1", "click", 0.0))
        recs = engine.recommend("u2", 2, 1.0)
        assert recs[0].item_id == "ad1"

    def test_browse_counts_as_impression(self):
        engine = TencentRecCTREngine(profile_of)
        engine.on_new_item(ItemMeta("ad1"))
        engine.observe(UserAction("u1", "ad1", "browse", 0.0))
        impressions, __ = engine.ctr.ctr.raw_counts(
            "ad1", PROFILES["u1"], 0.0
        )
        assert impressions == 1.0


class TestAnchoredEngines:
    def test_similar_purchase_needs_anchor(self):
        engine = SimilarPurchaseEngine(profile_of)
        with pytest.raises(EvaluationError, match="anchor"):
            engine.recommend("u1", 3, 0.0)

    def test_similar_purchase_recommends_co_bought(self):
        engine = SimilarPurchaseEngine(profile_of)
        t = 0.0
        for n in range(8):
            engine.observe(UserAction(f"b{n}", "laptop", "purchase", t))
            engine.observe(UserAction(f"b{n}", "mouse", "purchase", t + 1))
            t += 2
        recs = engine.recommend("u1", 3, t, context={"anchor": "laptop"})
        assert recs and recs[0].item_id == "mouse"

    def test_similar_price_restricts_to_band(self):
        index = PriceIndex()
        engine = SimilarPriceEngine(profile_of, index)
        engine.on_new_item(ItemMeta("cheap", price=10.0))
        engine.on_new_item(ItemMeta("mid", price=100.0))
        engine.on_new_item(ItemMeta("mid2", price=110.0))
        engine.on_new_item(ItemMeta("lux", price=1000.0))
        for action in co_clicks("mid", "mid2") + co_clicks("mid", "lux"):
            engine.observe(action)
        recs = engine.recommend("u1", 5, 100.0, context={"anchor": "mid"})
        ids = [r.item_id for r in recs]
        assert "mid2" in ids
        assert "lux" not in ids and "cheap" not in ids

    def test_similar_price_unknown_anchor_price(self):
        engine = SimilarPriceEngine(profile_of, PriceIndex())
        assert engine.recommend("u1", 3, 0.0, context={"anchor": "x"}) == []


class TestPriceIndex:
    def test_near_band(self):
        index = PriceIndex()
        for item, price in [("a", 80.0), ("b", 100.0), ("c", 120.0),
                            ("d", 200.0)]:
            index.add(item, price)
        assert set(index.near(100.0, tolerance=0.25)) == {"a", "b", "c"}

    def test_none_prices_skipped(self):
        index = PriceIndex()
        index.add("a", None)
        assert len(index) == 0

    def test_duplicate_adds_ignored(self):
        index = PriceIndex()
        index.add("a", 10.0)
        index.add("a", 20.0)
        assert index.price_of("a") == 10.0


class TestMakeOriginal:
    def test_serve_time_consumed_filter_is_realtime(self):
        """Even a daily-stale model must not re-show what the user just
        consumed: the display layer filters in real time (Section 6.4)."""
        inner = TencentRecCFEngine(profile_of, session_seconds=None,
                                   window_sessions=None)
        original = make_original(inner, update_interval=86400.0)
        for action in co_clicks("A", "B") + co_clicks("A", "C"):
            original.observe(action)
        original.observe(UserAction("u1", "A", "click", 100.0))
        # past the boundary: the model knows A~B and A~C
        recs = original.recommend("u1", 3, 86500.0)
        assert {r.item_id for r in recs} >= {"B", "C"}
        # the user consumes B *now*; the frozen model cannot know, but
        # the serving layer does
        original.observe(UserAction("u1", "B", "click", 86600.0))
        recs = original.recommend("u1", 3, 86700.0)
        assert all(r.item_id != "B" for r in recs)

    def test_delays_item_announcements(self):
        inner = TencentRecCBEngine(profile_of, freshness_tau=None)
        original = make_original(inner, update_interval=3600.0)
        original.on_new_item(
            ItemMeta("n1", category="news", tags=("sports",), publish_time=0.0)
        )
        original.observe(UserAction("u1", "n1", "click", 10.0))
        # before the boundary: inner knows nothing
        assert original.recommend("u1", 3, 100.0) == []
        assert not inner.cb.knows_item("n1")
        # after the boundary the item and the click are absorbed
        original.recommend("u1", 3, 3700.0)
        assert inner.cb.knows_item("n1")
