"""Tests for evaluation metrics and reporting."""

import pytest

from repro.errors import EvaluationError
from repro.evaluation.metrics import ABResult, CohortSeries, DailyStats
from repro.evaluation.reporting import (
    format_daily_ctr_series,
    format_improvement_table,
    summarize_improvements,
)


def make_result():
    treatment = CohortSeries("tencentrec")
    control = CohortSeries("original")
    # three days: ctr pairs (0.10 vs 0.08), (0.12 vs 0.10), (0.09 vs 0.09)
    for day, (t, c) in enumerate([(0.10, 0.08), (0.12, 0.10), (0.09, 0.09)]):
        t_day = treatment.day(day)
        t_day.impressions, t_day.clicks, t_day.cohort_size = 1000, int(t * 1000), 100
        c_day = control.day(day)
        c_day.impressions, c_day.clicks, c_day.cohort_size = 1000, int(c * 1000), 100
    return ABResult("news", {"tencentrec": treatment, "original": control}, 3)


class TestDailyStats:
    def test_ctr(self):
        stats = DailyStats(impressions=200, clicks=30)
        assert stats.ctr() == pytest.approx(0.15)

    def test_ctr_no_impressions(self):
        assert DailyStats().ctr() == 0.0

    def test_reads_per_user(self):
        stats = DailyStats(clicks=50, cohort_size=25)
        assert stats.reads_per_user() == 2.0

    def test_reads_no_cohort(self):
        assert DailyStats(clicks=5).reads_per_user() == 0.0


class TestABResult:
    def test_daily_improvements(self):
        result = make_result()
        improvements = result.daily_improvements("tencentrec", "original")
        assert improvements[0] == pytest.approx(25.0)
        assert improvements[1] == pytest.approx(20.0)
        assert improvements[2] == pytest.approx(0.0)

    def test_improvement_summary(self):
        avg, low, high = make_result().improvement_summary(
            "tencentrec", "original"
        )
        assert avg == pytest.approx(15.0)
        assert low == pytest.approx(0.0)
        assert high == pytest.approx(25.0)

    def test_zero_control_guarded(self):
        result = make_result()
        result.series("original").days[0].clicks = 0
        improvements = result.daily_improvements("tencentrec", "original")
        assert improvements[0] == 0.0

    def test_reads_metric(self):
        result = make_result()
        improvements = result.daily_improvements(
            "tencentrec", "original", metric="reads"
        )
        assert improvements[0] == pytest.approx(25.0)

    def test_unknown_cohort(self):
        with pytest.raises(EvaluationError):
            make_result().series("ghost")

    def test_unknown_metric(self):
        with pytest.raises(EvaluationError):
            make_result().daily_improvements("tencentrec", "original", "mse")

    def test_overall_ctr(self):
        result = make_result()
        assert result.series("tencentrec").overall_ctr() == pytest.approx(
            (100 + 120 + 90) / 3000
        )


class TestReporting:
    def test_daily_series_format(self):
        text = format_daily_ctr_series(make_result(), "tencentrec", "original")
        assert "news" in text
        assert "+25.00%" in text
        lines = text.splitlines()
        assert len(lines) == 2 + 3  # header rows + three days

    def test_summary(self):
        summary = summarize_improvements(make_result(), "tencentrec", "original")
        assert summary["avg"] == pytest.approx(15.0)

    def test_table1_format(self):
        rows = [
            ("News", "CB", {"avg": 6.62, "min": 3.22, "max": 14.5}),
            ("Videos", "CF", {"avg": 18.17, "min": 7.27, "max": 30.52}),
        ]
        text = format_improvement_table(rows)
        assert "News" in text
        assert "18.17" in text
