"""Tests for the system monitor (Figure 9's Monitor box)."""

import pytest

from repro.engine.engine import RecommenderEngine
from repro.engine.front_end import RecommenderFrontEnd
from repro.monitoring import SystemMonitor
from repro.resilience import CircuitBreaker, LoadShedder
from repro.storm import GlobalGrouping, LocalCluster, TopologyBuilder
from repro.tdaccess import TDAccessCluster
from repro.tdstore import TDStoreCluster
from repro.utils.clock import SimClock

from tests.storm.helpers import CountBolt, ListSpout


@pytest.fixture
def deployment():
    clock = SimClock()
    tdaccess = TDAccessCluster(clock, num_data_servers=2)
    tdaccess.create_topic("actions", 2)
    tdstore = TDStoreCluster(num_data_servers=3, num_instances=8)
    storm = LocalCluster(clock=clock)
    builder = TopologyBuilder("app")
    builder.add_spout("s", lambda: ListSpout([("a",), ("b",)], ("word",)))
    builder.add_bolt("c", CountBolt).grouping("s", GlobalGrouping())
    storm.submit(builder.build())
    storm.run_until_idle()
    monitor = SystemMonitor(
        clock.now, tdaccess=tdaccess, tdstore=tdstore, storm=storm,
        max_consumer_lag=5,
    )
    return clock, tdaccess, tdstore, storm, monitor


class TestSnapshot:
    def test_healthy_deployment_no_alerts(self, deployment):
        __, ___, ____, _____, monitor = deployment
        assert monitor.evaluate() == []

    def test_snapshot_counts_servers_and_executions(self, deployment):
        __, tdaccess, tdstore, ____, monitor = deployment
        snap = monitor.snapshot()
        assert snap.tdaccess_servers_up == 2
        assert snap.tdstore_servers_total == 3
        assert snap.topology_executed["app"] == 2

    def test_consumer_lag_tracked(self, deployment):
        __, tdaccess, ___, ____, monitor = deployment
        consumer = tdaccess.consumer("actions")
        monitor.watch_consumer("etl", consumer)
        tdaccess.producer().send_batch("actions", list(range(10)))
        snap = monitor.snapshot()
        assert snap.consumer_lag["etl"] == 10


class TestAlerts:
    def test_tdaccess_server_down_is_critical(self, deployment):
        __, tdaccess, ___, ____, monitor = deployment
        tdaccess.crash_data_server(0)
        alerts = monitor.evaluate()
        assert any(
            a.severity == "critical" and a.component == "tdaccess"
            for a in alerts
        )

    def test_consumer_lag_warning(self, deployment):
        __, tdaccess, ___, ____, monitor = deployment
        monitor.watch_consumer("etl", tdaccess.consumer("actions"))
        tdaccess.producer().send_batch("actions", list(range(20)))
        alerts = monitor.evaluate()
        assert any("lag" in a.message for a in alerts)

    def test_tdstore_server_down_is_critical(self, deployment):
        __, ___, tdstore, ____, monitor = deployment
        tdstore.crash_data_server(1)
        alerts = monitor.evaluate()
        assert any(
            a.severity == "critical" and a.component == "tdstore"
            for a in alerts
        )

    def test_task_restart_warning_fires_once(self, deployment):
        __, ___, ____, storm, monitor = deployment
        monitor.snapshot()  # baseline
        storm.kill_task("app", "c", 0)
        alerts = monitor.evaluate()
        assert any("restart" in a.message for a in alerts)
        # next evaluation: no new restarts, no repeated alert
        assert not any("restart" in a.message for a in monitor.evaluate())

    def test_replication_backlog_warning(self, deployment):
        __, ___, tdstore, ____, monitor = deployment
        monitor.max_replication_backlog = 3
        client = tdstore.client()
        for index in range(10):
            client.put(f"k{index}", index)
        alerts = monitor.evaluate()
        assert any("backlog" in a.message for a in alerts)
        tdstore.sync_replicas()
        assert not any("backlog" in a.message for a in monitor.evaluate())


class TestExactlyOnceSignals:
    def test_acker_anomalies_surface_and_warn_once(self, deployment):
        __, ___, ____, storm, monitor = deployment
        monitor.snapshot()
        storm._running["app"].acker.anomalies += 2
        snap = monitor.snapshot()
        assert snap.acker_anomalies["app"] == 2
        alerts = [
            a for a in monitor.evaluate(snap) if "over-acked" in a.message
        ]
        assert len(alerts) == 1
        assert "2" in alerts[0].message
        # no new anomalies: the delta-based alert clears
        snap = monitor.snapshot()
        assert not [
            a for a in monitor.evaluate(snap) if "over-acked" in a.message
        ]

    def test_acker_stats_accessor(self, deployment):
        __, ___, ____, storm, _____ = deployment
        stats = storm.acker_stats("app")
        assert stats["anomalies"] == 0
        assert stats["pending"] == 0
        assert stats["completed"] >= 0

    def test_watermark_rejections_surface_and_warn(self):
        from repro.storm.reliability import ExactlyOnceBolt

        class EchoBolt(ExactlyOnceBolt):
            def process(self, tup):
                pass

        clock = SimClock()
        storm = LocalCluster(clock=clock)
        builder = TopologyBuilder("eo")
        builder.add_spout("s", lambda: ListSpout([("a",)], ("word",)))
        builder.add_bolt("c", EchoBolt).grouping("s", GlobalGrouping())
        storm.submit(builder.build())
        storm.run_until_idle()
        monitor = SystemMonitor(clock.now, storm=storm)
        monitor.snapshot()
        bolt = storm.task_instance("eo", "c", 0)
        bolt.ledger.observe("src@10000")
        bolt.ledger.observe("src@1")  # dropped below the watermark
        snap = monitor.snapshot()
        assert snap.total_watermark_rejections() == 1
        alerts = [
            a for a in monitor.evaluate(snap) if "watermark" in a.message
        ]
        assert len(alerts) == 1
        assert alerts[0].severity == "warning"

    def test_journal_evictions_surface_and_warn(self, deployment):
        from repro.tdstore.engines import JOURNAL_LIMIT

        __, ___, tdstore, ____, monitor = deployment
        monitor.snapshot()
        client = tdstore.client()
        for i in range(JOURNAL_LIMIT + 3):
            client.apply("itemCount:i1", f"actions@{i}", 1.0)
        snap = monitor.snapshot()
        assert snap.journal_evictions == 3
        alerts = [
            a for a in monitor.evaluate(snap) if "op-journal" in a.message
        ]
        assert len(alerts) == 1
        assert "double-apply" in alerts[0].message
        # steady state: no further trims, no alert
        snap = monitor.snapshot()
        assert not [
            a for a in monitor.evaluate(snap) if "op-journal" in a.message
        ]


class TestScrubSignals:
    """Anti-entropy scrub counters flowing into the monitor."""

    def test_clean_scrub_counts_without_alerting(self, deployment):
        __, ___, tdstore, ____, monitor = deployment
        tdstore.client().put("item:1", {"count": 3})
        tdstore.scrub_replicas()
        snap = monitor.snapshot()
        assert snap.scrub_passes == 1
        assert snap.scrub_instances_scanned == 8
        assert snap.scrub_divergent_buckets == 0
        assert not [
            a for a in monitor.evaluate(snap) if a.message.startswith("scrub")
        ]

    def test_divergence_and_corruption_alert_on_delta(self, deployment):
        __, ___, tdstore, ____, monitor = deployment
        client = tdstore.client()
        client.put("item:1", {"count": 3})
        tdstore.sync_replicas()
        monitor.snapshot()
        # silently corrupt the slave's copy behind replication's back
        route = tdstore.config.route_table().route_for_key("item:1")
        slave = tdstore.config.server(route.slave)
        slave.engine(route.instance).put("item:1", {"count": 99})
        tdstore.scrub_replicas()
        snap = monitor.snapshot()
        assert snap.scrub_divergent_buckets == 1
        assert snap.scrub_keys_repaired == 1
        assert snap.scrub_corruptions_detected == 1
        alerts = [
            a for a in monitor.evaluate(snap) if a.message.startswith("scrub")
        ]
        assert {a.severity for a in alerts} == {"warning", "critical"}
        # repaired: next pass is clean, deltas are zero, alerts clear
        tdstore.scrub_replicas()
        snap = monitor.snapshot()
        assert snap.scrub_divergent_buckets == 1  # cumulative, unchanged
        assert not [
            a for a in monitor.evaluate(snap) if a.message.startswith("scrub")
        ]
        assert "scrub" in monitor.summary()


class TestRecoverySignals:
    """Checkpoint age and recovery status flowing into the monitor."""

    @staticmethod
    def _harness(**kwargs):
        from repro.recovery import RecoveryHarness
        from tests.recovery.helpers import (
            TOPIC, cf_topology_factory, make_payloads, make_tdaccess,
        )

        return RecoveryHarness(
            make_tdaccess(make_payloads(32)),
            TOPIC,
            cf_topology_factory(batch_size=4),
            **kwargs,
        )

    def test_checkpoint_signals_flow_into_snapshot(self):
        harness = self._harness(checkpoint_every_rounds=2)
        harness.start()
        assert harness.run() == "completed"
        monitor = SystemMonitor(harness.clock.now, max_checkpoint_age=1e9)
        monitor.watch_recovery(harness.coordinator, harness.recovery)
        snap = monitor.snapshot()
        assert snap.checkpoints_taken >= 1
        assert snap.checkpoint_age is not None and snap.checkpoint_age >= 0
        assert snap.recoveries == 0
        assert not snap.recovery_in_progress
        assert not any(a.component == "recovery" for a in monitor.evaluate(snap))

    def test_stale_checkpoint_warns(self):
        harness = self._harness(checkpoint_every_rounds=2)
        harness.start()
        harness.run()
        monitor = SystemMonitor(
            lambda: harness.clock.now() + 10_000.0, max_checkpoint_age=60.0
        )
        monitor.watch_recovery(coordinator=harness.coordinator)
        alerts = monitor.evaluate()
        assert any(
            a.component == "recovery" and "checkpoint age" in a.message
            for a in alerts
        )

    def test_never_checkpointed_warns(self):
        harness = self._harness()  # no checkpoint policy: never checkpoints
        harness.start()
        harness.run()
        monitor = SystemMonitor(
            lambda: harness.clock.now() + 10_000.0, max_checkpoint_age=60.0
        )
        monitor.watch_recovery(coordinator=harness.coordinator)
        alerts = monitor.evaluate()
        assert any("no checkpoint has ever been taken" in a.message for a in alerts)

    def test_recovery_in_progress_warning_clears_after_replay(self):
        from repro.recovery import Fault

        harness = self._harness(checkpoint_every_rounds=2)
        harness.start(fault_plan=[Fault(4, "crash_process")])
        assert harness.run() == "crashed"
        harness.recover()
        monitor = SystemMonitor(harness.clock.now)
        monitor.watch_recovery(harness.coordinator, harness.recovery)
        alerts = monitor.evaluate()
        assert any("replay in progress" in a.message for a in alerts)
        assert "replaying" in monitor.summary()

        assert harness.run() == "completed"
        snap = monitor.snapshot()
        assert snap.recoveries == 1
        assert not snap.recovery_in_progress
        assert snap.last_recovery_duration is not None
        assert not any(
            "replay in progress" in a.message for a in monitor.evaluate(snap)
        )
        assert "steady" in monitor.summary()


class TestSummary:
    def test_summary_mentions_every_layer(self, deployment):
        __, tdaccess, ___, ____, monitor = deployment
        monitor.watch_consumer("etl", tdaccess.consumer("actions"))
        text = monitor.summary()
        assert "tdaccess" in text
        assert "tdstore" in text
        assert "topology app" in text


class TestResilienceSignals:
    def test_breaker_lifecycle_alerts(self, deployment):
        clock, __, ___, ____, monitor = deployment
        breaker = CircuitBreaker(
            clock.now, failure_threshold=1, recovery_time=5.0, name="tdstore"
        )
        monitor.watch_breaker("tdstore", breaker)
        assert monitor.evaluate() == []
        breaker.record_failure()
        alerts = monitor.evaluate()
        assert any(
            a.severity == "critical" and a.component == "resilience"
            and "open" in a.message
            for a in alerts
        )
        clock.advance(5.0)
        alerts = monitor.evaluate()
        assert any(
            a.severity == "warning" and "half-open" in a.message
            for a in alerts
        )
        assert breaker.allow()
        breaker.record_success()
        assert monitor.evaluate() == []

    def test_shed_delta_warns_then_clears(self, deployment):
        clock, __, tdstore, ____, monitor = deployment
        engine = RecommenderEngine(tdstore.client())
        shedder = LoadShedder(clock.now, capacity=1, window=1.0)
        front_end = RecommenderFrontEnd(
            engine, static_items=("s1",), shedder=shedder
        )
        monitor.watch_shedder(shedder)
        monitor.watch_front_end(front_end)
        monitor.snapshot()  # baseline
        front_end.query("u1", 1, 0.0)
        front_end.query("u1", 1, 0.0)  # second query of the window: shed
        alerts = monitor.evaluate()
        assert any(
            a.component == "resilience" and "shed" in a.message
            for a in alerts
        )
        # no new sheds since the last snapshot: the warning clears
        assert not any("shed" in a.message for a in monitor.evaluate())

    def test_below_live_serves_warn(self, deployment):
        clock, __, tdstore, ____, monitor = deployment
        breaker = CircuitBreaker(clock.now, failure_threshold=1, name="store")
        breaker.record_failure()
        engine = RecommenderEngine(tdstore.client(breaker=breaker))
        front_end = RecommenderFrontEnd(engine, static_items=("s1",))
        monitor.watch_front_end(front_end)
        monitor.snapshot()  # baseline
        front_end.query("u1", 1, 0.0)
        alerts = monitor.evaluate()
        assert any(
            a.component == "serving" and "below the live rung" in a.message
            for a in alerts
        )

    def test_degraded_servers_warn_per_layer(self, deployment):
        __, tdaccess, tdstore, ____, monitor = deployment
        tdstore.set_degradation(0, latency=0.2)
        tdaccess.set_degradation(1, error_every=2)
        alerts = monitor.evaluate()
        assert any(
            a.component == "tdstore" and "degraded" in a.message
            for a in alerts
        )
        assert any(
            a.component == "tdaccess" and "degraded" in a.message
            for a in alerts
        )
        snap = monitor.history[-1]
        assert snap.degraded_tdstore_servers == [0]
        assert snap.degraded_tdaccess_servers == [1]
        tdstore.clear_degradation(0)
        tdaccess.clear_degradation(1)
        assert monitor.evaluate() == []

    def test_summary_mentions_resilience_state(self, deployment):
        clock, __, tdstore, ____, monitor = deployment
        breaker = CircuitBreaker(clock.now, name="store")
        shedder = LoadShedder(clock.now, capacity=4)
        engine = RecommenderEngine(tdstore.client())
        front_end = RecommenderFrontEnd(engine, shedder=shedder)
        monitor.watch_breaker("store", breaker)
        monitor.watch_shedder(shedder)
        monitor.watch_front_end(front_end)
        front_end.query("u1", 1, 0.0)
        text = monitor.summary()
        assert "breaker store: closed" in text
        assert "shedder" in text
        assert "rungs" in text


class StubSupervisor:
    """Anything with ``robustness_stats()`` qualifies — the monitor is
    duck-typed so simulator tests don't spawn real processes."""

    def __init__(self):
        self.stats = {
            "kills": 0,
            "respawns": 0,
            "heartbeat_miss_streaks": {},
        }

    def robustness_stats(self):
        return {
            "kills": self.stats["kills"],
            "respawns": self.stats["respawns"],
            "heartbeat_miss_streaks": dict(
                self.stats["heartbeat_miss_streaks"]
            ),
        }


class TestSupervisorSignals:
    def test_robustness_counters_flow_into_snapshot(self):
        supervisor = StubSupervisor()
        monitor = SystemMonitor(clock_now=lambda: 0.0)
        monitor.watch_supervisor(supervisor)
        supervisor.stats["kills"] = 1
        supervisor.stats["respawns"] = 2
        supervisor.stats["heartbeat_miss_streaks"] = {"tdstore-host-0": 2}
        snap = monitor.snapshot()
        assert snap.supervisor_kills == 1
        assert snap.supervisor_respawns == 2
        assert snap.heartbeat_miss_streaks == {"tdstore-host-0": 2}

    def test_hang_kill_delta_is_critical(self):
        supervisor = StubSupervisor()
        monitor = SystemMonitor(clock_now=lambda: 0.0)
        monitor.watch_supervisor(supervisor)
        assert monitor.evaluate() == []
        supervisor.stats["kills"] = 1
        alerts = monitor.evaluate()
        assert any(
            a.severity == "critical" and a.component == "runtime"
            and "force-killed 1 hung" in a.message
            for a in alerts
        )
        # delta-based: no new kills, the alert clears
        assert monitor.evaluate() == []

    def test_respawn_delta_warns_then_clears(self):
        supervisor = StubSupervisor()
        monitor = SystemMonitor(clock_now=lambda: 0.0)
        monitor.watch_supervisor(supervisor)
        monitor.snapshot()  # baseline
        supervisor.stats["respawns"] = 3
        alerts = monitor.evaluate()
        assert any(
            a.severity == "warning" and a.component == "runtime"
            and "respawned 3 child" in a.message
            for a in alerts
        )
        assert monitor.evaluate() == []

    def test_heartbeat_miss_streak_warns_at_threshold(self):
        supervisor = StubSupervisor()
        monitor = SystemMonitor(
            clock_now=lambda: 0.0, max_heartbeat_misses=3
        )
        monitor.watch_supervisor(supervisor)
        supervisor.stats["heartbeat_miss_streaks"] = {"storm-worker-1": 2}
        assert monitor.evaluate() == []  # below threshold
        supervisor.stats["heartbeat_miss_streaks"] = {"storm-worker-1": 3}
        alerts = monitor.evaluate()
        assert any(
            a.severity == "warning" and a.component == "runtime"
            and "storm-worker-1" in a.message
            and "3 consecutive" in a.message
            for a in alerts
        )

    def test_summary_mentions_supervisor(self):
        supervisor = StubSupervisor()
        monitor = SystemMonitor(clock_now=lambda: 0.0)
        monitor.watch_supervisor(supervisor)
        supervisor.stats["kills"] = 1
        supervisor.stats["respawns"] = 4
        supervisor.stats["heartbeat_miss_streaks"] = {"tdstore-host-1": 2}
        text = monitor.summary()
        assert "supervisor: 1 hang kill(s)" in text
        assert "4 respawn(s)" in text
        assert "tdstore-host-1=2" in text
