"""Shared fixtures for the checkpoint/recovery test suite.

Builds the Figure-6 stack the harness expects: a TDAccess topic filled
with a deterministic action stream, and a topology factory wiring
TDAccessSpout -> Pretreatment -> the multi-layer CF pipeline.
"""

from __future__ import annotations

import json

from repro.engine import RecommenderEngine
from repro.storm.grouping import FieldsGrouping, ShuffleGrouping
from repro.storm.topology import TopologyBuilder
from repro.tdaccess.cluster import TDAccessCluster
from repro.topology.bolts_cf import (
    ItemCountBolt,
    PairCountBolt,
    SimListBolt,
    UserHistoryBolt,
)
from repro.topology.bolts_common import PretreatmentBolt
from repro.topology.spouts import TDAccessSpout
from repro.topology.state import StateKeys
from repro.utils.clock import SimClock
from repro.utils.rng import SeedSequenceFactory

TOPIC = "user_actions"

USERS = [f"u{i}" for i in range(6)]
ITEMS = [f"i{i}" for i in range(8)]


def make_payloads(n: int, seed: int = 7, step_seconds: float = 30.0):
    """Deterministic raw action payloads with increasing timestamps."""
    rng = SeedSequenceFactory(seed).generator("actions")
    payloads = []
    now = 0.0
    for _ in range(n):
        now += step_seconds
        payloads.append(
            {
                "user": USERS[int(rng.integers(0, len(USERS)))],
                "item": ITEMS[int(rng.integers(0, len(ITEMS)))],
                "action": "click",
                "timestamp": now,
            }
        )
    return payloads


def make_tdaccess(
    payloads,
    num_partitions: int = 2,
    segment_size: int = 1024,
    retention_segments: int | None = None,
) -> TDAccessCluster:
    """A TDAccess cluster whose topic already holds ``payloads``."""
    clock = SimClock()
    tdaccess = TDAccessCluster(clock, num_data_servers=2)
    tdaccess.create_topic(
        TOPIC, num_partitions,
        segment_size=segment_size,
        retention_segments=retention_segments,
    )
    producer = tdaccess.producer()
    for payload in payloads:
        clock.advance_to(payload["timestamp"])
        producer.send(TOPIC, payload, key=payload["user"])
    return tdaccess


def cf_topology_factory(
    batch_size: int = 4,
    use_combiner: bool = False,
    pruning_delta: float | None = None,
    parallelism: int = 2,
):
    """A harness-compatible topology factory for the CF pipeline."""

    def factory(clock, client_factory, consumer):
        builder = TopologyBuilder("cf-stream")
        builder.add_spout(
            "source", lambda: TDAccessSpout(consumer, clock, batch_size)
        )
        builder.add_bolt(
            "pretreatment", PretreatmentBolt, parallelism=1
        ).grouping("source", ShuffleGrouping(), "raw_action")
        builder.add_bolt(
            "userHistory",
            lambda: UserHistoryBolt(client_factory),
            parallelism=parallelism,
        ).grouping("pretreatment", FieldsGrouping(["user"]), "user_action")
        builder.add_bolt(
            "itemCount",
            lambda: ItemCountBolt(client_factory, use_combiner=use_combiner),
            parallelism=parallelism,
        ).grouping("userHistory", FieldsGrouping(["item"]), "item_delta")
        builder.add_bolt(
            "pairCount",
            lambda: PairCountBolt(client_factory, pruning_delta=pruning_delta),
            parallelism=parallelism,
        ).grouping(
            "userHistory", FieldsGrouping(["pair_a", "pair_b"]), "pair_delta"
        )
        builder.add_bolt(
            "simList",
            lambda: SimListBolt(client_factory),
            parallelism=parallelism,
        ).grouping(
            "pairCount", FieldsGrouping(["item"]), "sim_update"
        ).grouping("pairCount", FieldsGrouping(["item"]), "prune")
        return builder.build()

    return factory


def recommendations_bytes(client, now: float) -> bytes:
    """Serialized top-5 CF recommendations for every user — the
    byte-identity check of the headline recovery test.

    Canonical JSON, not pickle: pickle memoizes by object identity, so
    two value-identical result sets can pickle to different bytes when
    one run happens to share float objects and the other does not.
    """
    engine = RecommenderEngine(client)
    recs = {
        user: [
            [r.item_id, r.score, r.source]
            for r in engine.recommend_cf(user, 5, now)
        ]
        for user in USERS
    }
    return json.dumps(recs, sort_keys=True).encode()


def state_digest(client) -> dict:
    """The raw incremental state (Eq 6-8 counts + similarity lists)."""
    digest = {
        "item_counts": {
            item: client.get(StateKeys.item_count(item), 0.0)
            for item in ITEMS
        },
        "sim_lists": {
            item: client.get(StateKeys.sim_list(item), None) for item in ITEMS
        },
        "pair_counts": {},
    }
    for i, a in enumerate(ITEMS):
        for b in ITEMS[i + 1 :]:
            value = client.get(StateKeys.pair_count(a, b), None)
            if value is not None:
                digest["pair_counts"][(a, b)] = value
    return digest
