"""Tests for the checkpoint coordinator over a live deployment."""

import pytest

from repro.errors import CheckpointError
from repro.recovery import CONSUMER_NAME, RecoveryHarness
from repro.topology.state import StateKeys

from tests.recovery.helpers import (
    TOPIC,
    cf_topology_factory,
    make_payloads,
    make_tdaccess,
)


def make_harness(n_messages=24, every_rounds=2, **harness_kwargs):
    tdaccess = make_tdaccess(make_payloads(n_messages))
    return RecoveryHarness(
        tdaccess,
        TOPIC,
        cf_topology_factory(batch_size=4),
        checkpoint_every_rounds=every_rounds,
        **harness_kwargs,
    )


class TestCheckpointPolicy:
    def test_barrier_hook_takes_periodic_checkpoints(self):
        harness = make_harness(every_rounds=2)
        harness.start()
        assert harness.run() == "completed"
        coordinator = harness.coordinator
        assert coordinator.checkpoints_taken >= 2
        assert len(harness.store) == coordinator.checkpoints_taken
        rounds = [
            harness.store.load(i).barrier_round
            for i in harness.store.checkpoint_ids()
        ]
        assert all(r % 2 == 0 for r in rounds)
        assert rounds == sorted(rounds)

    def test_interval_policy_uses_simulated_time(self):
        # one partition so message timestamps reach the clock in order
        tdaccess = make_tdaccess(
            make_payloads(24, step_seconds=30.0), num_partitions=1
        )
        harness = RecoveryHarness(
            tdaccess,
            TOPIC,
            cf_topology_factory(batch_size=4),
            checkpoint_interval_seconds=120.0,
        )
        harness.start()
        harness.run()
        times = [
            harness.store.load(i).clock_time
            for i in harness.store.checkpoint_ids()
        ]
        assert len(times) >= 2
        assert all(b - a >= 120.0 for a, b in zip(times, times[1:]))

    def test_invalid_policies_rejected(self):
        from repro.recovery import CheckpointCoordinator, CheckpointStore
        from repro.utils.clock import SimClock

        store, clock = CheckpointStore(), SimClock()
        with pytest.raises(CheckpointError, match="every_rounds"):
            CheckpointCoordinator(
                store, None, "t", None, {}, clock, every_rounds=0
            )
        with pytest.raises(CheckpointError, match="interval_seconds"):
            CheckpointCoordinator(
                store, None, "t", None, {}, clock, interval_seconds=-1.0
            )

    def test_checkpoint_age_tracks_clock(self):
        harness = make_harness()
        harness.start()
        coordinator = harness.coordinator
        assert coordinator.checkpoint_age() is None
        harness.run()
        assert coordinator.checkpoint_age() is not None
        later = harness.clock.now() + 500.0
        age = coordinator.checkpoint_age(later)
        assert age == pytest.approx(
            later - coordinator.last_checkpoint_time
        )

    def test_detach_stops_checkpointing(self):
        harness = make_harness(every_rounds=1)
        harness.start()
        harness.coordinator.detach()
        harness.run()
        assert len(harness.store) == 0


class TestCheckpointContents:
    def test_manifest_captures_offsets_and_state(self):
        harness = make_harness(n_messages=24, every_rounds=2)
        harness.start()
        harness.run()
        manifest = harness.store.latest()
        # all 24 messages were consumed by the time of the last checkpoint
        # or earlier; offsets must be non-decreasing and within the log
        saved = manifest.offsets[CONSUMER_NAME]
        assert sum(saved.values()) <= 24
        assert manifest.topology == "cf-stream"
        assert manifest.clock_time <= harness.clock.now()
        # some item counts made it into the checkpointed TDStore contents
        all_keys = set()
        for data in manifest.tdstore_contents.values():
            all_keys.update(data)
        assert any(key.startswith("itemCount:") for key in all_keys)

    def test_combiner_buffers_are_checkpointed(self):
        tdaccess = make_tdaccess(make_payloads(24, step_seconds=30.0))
        harness = RecoveryHarness(
            tdaccess,
            TOPIC,
            cf_topology_factory(batch_size=4, use_combiner=True),
            tick_interval=10_000.0,  # never ticks: buffers stay unflushed
            checkpoint_every_rounds=1,
        )
        harness.start()
        harness.run()
        manifests = [
            harness.store.load(i) for i in harness.store.checkpoint_ids()
        ]
        buffered = [
            state["app"]["combiner"]
            for manifest in manifests
            for (component, _), state in manifest.bolt_states.items()
            if component == "itemCount"
        ]
        assert any(buffer for buffer in buffered)
        assert all(
            key.startswith("itemCount:")
            for buffer in buffered
            for key in buffer
        )

    def test_checkpoint_does_not_perturb_the_run(self):
        # identical inputs with and without checkpointing must produce
        # identical TDStore state: capture is strictly read-only
        results = {}
        for label, every in (("with", 1), ("without", None)):
            tdaccess = make_tdaccess(make_payloads(24))
            harness = RecoveryHarness(
                tdaccess,
                TOPIC,
                cf_topology_factory(batch_size=4),
                checkpoint_every_rounds=every,
            )
            harness.start()
            harness.run()
            client = harness.client()
            results[label] = {
                key: client.get(StateKeys.item_count(key), 0.0)
                for key in [f"i{i}" for i in range(8)]
            }
        assert results["with"] == results["without"]
