"""Tests for checkpoint manifests and the sealing store."""

import pytest

from repro.errors import CheckpointError
from repro.recovery import (
    MANIFEST_FORMAT_VERSION,
    CheckpointManifest,
    CheckpointStore,
)


def make_manifest(checkpoint_id=0, **overrides):
    base = dict(
        checkpoint_id=checkpoint_id,
        topology="topo",
        clock_time=12.5,
        next_tick=20.0,
        barrier_round=3,
        offsets={"source": {0: 7, 1: 4}},
        bolt_states={("itemCount", 0): {"combiner": {"itemCount:a": 1.0}}},
        tdstore_contents={0: {"itemCount:a": 3.0}, 1: {}},
    )
    base.update(overrides)
    return CheckpointManifest(**base)


class TestCheckpointStore:
    def test_save_and_load_round_trip(self):
        store = CheckpointStore()
        store.save(make_manifest())
        loaded = store.load(0)
        assert loaded.offsets == {"source": {0: 7, 1: 4}}
        assert loaded.bolt_states[("itemCount", 0)] == {
            "combiner": {"itemCount:a": 1.0}
        }
        assert loaded.format_version == MANIFEST_FORMAT_VERSION

    def test_sealing_isolates_from_later_mutation(self):
        # the manifest references live dicts; mutating them after save()
        # must not leak into what load() returns
        contents = {0: {"k": 1.0}}
        store = CheckpointStore()
        store.save(make_manifest(tdstore_contents=contents))
        contents[0]["k"] = 999.0
        assert store.load(0).tdstore_contents[0]["k"] == 1.0

    def test_loads_are_independent_copies(self):
        store = CheckpointStore()
        store.save(make_manifest())
        first = store.load(0)
        first.tdstore_contents[0]["itemCount:a"] = -1.0
        assert store.load(0).tdstore_contents[0]["itemCount:a"] == 3.0

    def test_ids_are_monotonic(self):
        store = CheckpointStore()
        assert store.next_checkpoint_id() == 0
        store.save(make_manifest(0))
        store.save(make_manifest(1))
        assert store.next_checkpoint_id() == 2
        assert store.checkpoint_ids() == [0, 1]
        assert store.latest().checkpoint_id == 1

    def test_duplicate_id_rejected(self):
        store = CheckpointStore()
        store.save(make_manifest(0))
        with pytest.raises(CheckpointError, match="already saved"):
            store.save(make_manifest(0))

    def test_missing_checkpoint_raises(self):
        store = CheckpointStore()
        with pytest.raises(CheckpointError, match="no checkpoint 5"):
            store.load(5)
        assert store.latest() is None

    def test_corruption_fails_fingerprint_verification(self):
        store = CheckpointStore()
        store.save(make_manifest())
        store.corrupt(0)
        with pytest.raises(CheckpointError, match="fingerprint"):
            store.load(0)

    def test_keep_prunes_oldest(self):
        store = CheckpointStore(keep=2)
        for checkpoint_id in range(5):
            store.save(make_manifest(checkpoint_id))
        assert store.checkpoint_ids() == [3, 4]
        assert store.latest().checkpoint_id == 4

    def test_keep_must_be_positive(self):
        with pytest.raises(CheckpointError, match="keep"):
            CheckpointStore(keep=0)

    def test_directory_persistence_survives_restart(self, tmp_path):
        directory = str(tmp_path / "checkpoints")
        store = CheckpointStore(directory=directory)
        store.save(make_manifest(0))
        store.save(make_manifest(1, clock_time=99.0))
        # a brand-new store over the same directory sees both manifests
        reopened = CheckpointStore(directory=directory)
        assert reopened.checkpoint_ids() == [0, 1]
        assert reopened.latest().clock_time == 99.0
        assert reopened.next_checkpoint_id() == 2

    def test_directory_pruning_removes_files(self, tmp_path):
        directory = str(tmp_path / "checkpoints")
        store = CheckpointStore(directory=directory, keep=1)
        store.save(make_manifest(0))
        store.save(make_manifest(1))
        reopened = CheckpointStore(directory=directory)
        assert reopened.checkpoint_ids() == [1]

    def test_sealed_size_reports_bytes(self):
        store = CheckpointStore()
        store.save(make_manifest())
        assert store.sealed_size(0) > 0
        with pytest.raises(CheckpointError):
            store.sealed_size(9)


class TestReplaySpan:
    def test_counts_messages_between_checkpoint_and_head(self):
        manifest = make_manifest()
        head = {"source": {0: 10, 1: 4}}
        assert manifest.replay_span(head) == 3

    def test_missing_partitions_contribute_nothing(self):
        manifest = make_manifest()
        assert manifest.replay_span({}) == 0
        assert manifest.replay_span({"source": {0: 5}}) == 0
