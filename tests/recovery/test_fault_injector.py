"""Tests for the fault-injection chaos driver."""

import pytest

from repro.errors import FaultPlanError, SimulatedCrash
from repro.recovery import Fault, FaultInjector, RecoveryHarness, seeded_plan

from tests.recovery.helpers import (
    TOPIC,
    cf_topology_factory,
    make_payloads,
    make_tdaccess,
)


def make_harness(n_messages=24, **kwargs):
    tdaccess = make_tdaccess(make_payloads(n_messages))
    return RecoveryHarness(
        tdaccess,
        TOPIC,
        cf_topology_factory(batch_size=4),
        checkpoint_every_rounds=2,
        **kwargs,
    )


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            Fault(1, "set_fire_to_rack")

    def test_round_zero_rejected(self):
        with pytest.raises(FaultPlanError, match="rounds start at 1"):
            Fault(0, "crash_process")


class TestScriptedInjection:
    def test_faults_fire_at_their_rounds(self):
        harness = make_harness()
        plan = [
            Fault(1, "kill_task", ("userHistory", 0)),
            Fault(2, "crash_tdstore", (0,)),
            Fault(3, "recover_tdstore", (0,)),
        ]
        harness.start(fault_plan=plan)
        assert harness.run() == "completed"
        injector = harness.injector
        assert [f.kind for f in injector.injected] == [
            "kill_task", "crash_tdstore", "recover_tdstore",
        ]
        assert injector.exhausted
        metrics = harness.cluster.metrics("cf-stream")
        assert metrics.task_restarts == 1

    def test_crash_process_aborts_the_run(self):
        harness = make_harness()
        harness.start(fault_plan=[Fault(2, "crash_process")])
        assert harness.run() == "crashed"
        assert harness.crashes == 1
        assert harness.injector.injected[-1].kind == "crash_process"
        # the computation layer is gone until recover() rebuilds it
        with pytest.raises(Exception, match="no deployment"):
            harness.cluster

    def test_fired_faults_are_not_replayed_after_recovery(self):
        harness = make_harness()
        plan = [
            Fault(1, "kill_task", ("userHistory", 0)),
            Fault(3, "crash_process"),
        ]
        harness.start(fault_plan=plan)
        assert harness.run() == "crashed"
        fired = list(harness.injector.injected)
        harness.recover()
        assert harness.run() == "completed"
        # the recovered run replayed no already-fired fault: the cursor
        # survived the crash, so the plan continued, not restarted
        assert harness.injector.injected == fired
        assert harness.crashes == 1

    def test_master_failover_is_transparent(self):
        harness = make_harness()
        harness.start(fault_plan=[Fault(2, "failover_tdaccess_master")])
        assert harness.run() == "completed"
        # every message still reached the topology exactly once
        assert harness.consumer.lag() == 0

    def test_plan_requires_wiring_for_its_kinds(self):
        injector = FaultInjector([Fault(1, "crash_tdstore", (0,))])
        with pytest.raises(AttributeError):
            injector.on_barrier(1)


class TestSeededPlans:
    def test_same_seed_same_plan(self):
        kwargs = dict(
            horizon=12,
            kill_components=[("userHistory", 2), ("itemCount", 2)],
            tdstore_servers=[0, 1, 2],
            task_kills=2,
            tdstore_crashes=1,
        )
        assert seeded_plan(11, **kwargs) == seeded_plan(11, **kwargs)
        assert seeded_plan(11, **kwargs) != seeded_plan(12, **kwargs)

    def test_plan_shape(self):
        plan = seeded_plan(
            3,
            horizon=10,
            kill_components=[("userHistory", 2)],
            tdstore_servers=[0, 1],
            task_kills=2,
            tdstore_crashes=1,
            master_failovers=1,
            process_crashes=1,
        )
        kinds = [fault.round for fault in plan]
        assert kinds == sorted(kinds)
        by_kind = {}
        for fault in plan:
            by_kind.setdefault(fault.kind, []).append(fault)
        assert len(by_kind["kill_task"]) == 2
        assert len(by_kind["crash_tdstore"]) == 1
        assert len(by_kind["recover_tdstore"]) == 1
        assert len(by_kind["failover_tdaccess_master"]) == 1
        crash = by_kind["crash_process"][0]
        assert crash.round >= 5  # second half of the horizon
        recover = by_kind["recover_tdstore"][0]
        assert recover.round > by_kind["crash_tdstore"][0].round

    def test_short_horizon_rejected(self):
        with pytest.raises(FaultPlanError, match="horizon"):
            seeded_plan(1, horizon=2)
