"""Degradation faults (latency spikes, error rates, brownouts) under the
recovery harness: the pipeline must converge to the exact same state as
an undisturbed run — grey failures slow the system down, they never
corrupt it or lose a message."""

import pytest

from repro.errors import FaultPlanError
from repro.recovery import (
    BROWNOUT_ERROR_EVERY,
    BROWNOUT_LATENCY,
    Fault,
    RecoveryHarness,
    seeded_plan,
)

from tests.recovery.helpers import (
    TOPIC,
    cf_topology_factory,
    make_payloads,
    make_tdaccess,
    recommendations_bytes,
    state_digest,
)

N_MESSAGES = 48


def run_harness(payloads, fault_plan=None):
    harness = RecoveryHarness(
        make_tdaccess(payloads),
        TOPIC,
        cf_topology_factory(batch_size=4),
        tick_interval=240.0,
        checkpoint_every_rounds=2,
    )
    harness.start(fault_plan=fault_plan)
    summary = harness.run_to_completion()
    client = harness.client()
    return harness, summary, (
        recommendations_bytes(client, harness.clock.now()),
        state_digest(client),
    )


class TestDegradationUnderHarness:
    def test_grey_failures_converge_byte_identical(self):
        payloads = make_payloads(N_MESSAGES)
        __, ___, want = run_harness(payloads)

        plan = [
            Fault(2, "latency_spike", ("tdstore", 0, 0.25)),
            Fault(3, "brownout", ("tdaccess", 0)),
            Fault(4, "error_rate", ("tdstore", 1, 3)),
            Fault(6, "clear_degradation", ("tdstore", 0)),
            Fault(6, "clear_degradation", ("tdaccess", 0)),
            Fault(7, "clear_degradation", ("tdstore", 1)),
        ]
        harness, summary, got = run_harness(payloads, fault_plan=plan)
        assert summary["crashes"] == 0
        assert got == want
        assert harness.injector.exhausted
        # the faults genuinely fired and cleared
        assert harness.tdstore.degraded_servers() == []
        assert harness.tdaccess.degraded_servers() == []

    def test_brownout_plus_process_crash(self):
        # a grey failure overlapping a hard crash: recovery replays
        # through the browned-out TDAccess server and still converges
        payloads = make_payloads(N_MESSAGES)
        __, ___, want = run_harness(payloads)
        plan = [
            Fault(2, "brownout", ("tdaccess", 1)),
            Fault(4, "crash_process"),
            Fault(6, "clear_degradation", ("tdaccess", 1)),
        ]
        harness, summary, got = run_harness(payloads, fault_plan=plan)
        assert summary["crashes"] == 1
        assert summary["recoveries"] == 1
        assert got == want

    def test_brownout_sets_documented_levels(self):
        payloads = make_payloads(8)
        harness = RecoveryHarness(
            make_tdaccess(payloads),
            TOPIC,
            cf_topology_factory(batch_size=4),
            tick_interval=240.0,
        )
        harness.start(fault_plan=[Fault(1, "brownout", ("tdaccess", 0))])
        harness.injector.on_barrier(1)
        server = harness.tdaccess.data_servers[0]
        assert server.latency == BROWNOUT_LATENCY
        assert server.error_every == BROWNOUT_ERROR_EVERY


class TestPlanValidation:
    def test_degradation_target_needs_layer(self):
        with pytest.raises(FaultPlanError):
            Fault(1, "latency_spike", (0, 0.25))
        with pytest.raises(FaultPlanError):
            Fault(1, "brownout", ("storm", 0))

    def test_degradation_target_arity(self):
        with pytest.raises(FaultPlanError):
            Fault(1, "latency_spike", ("tdstore", 0))
        with pytest.raises(FaultPlanError):
            Fault(1, "clear_degradation", ("tdstore", 0, 1))

    def test_seeded_plan_pairs_degradations_with_clears(self):
        plan = seeded_plan(
            11,
            horizon=12,
            tdstore_servers=[0, 1, 2],
            tdaccess_servers=[0, 1],
            task_kills=0,
            tdstore_crashes=0,
            process_crashes=0,
            latency_spikes=2,
            error_rates=1,
            brownouts=1,
        )
        kinds = [f.kind for f in plan]
        assert kinds.count("latency_spike") == 2
        assert kinds.count("error_rate") == 1
        assert kinds.count("brownout") == 1
        assert kinds.count("clear_degradation") == 4
        for fault in plan:
            if fault.kind == "clear_degradation":
                continue
            cleared = [
                c for c in plan
                if c.kind == "clear_degradation"
                and c.target[:2] == fault.target[:2]
                and c.round > fault.round
            ]
            assert cleared, f"{fault} never cleared"
        assert plan == sorted(plan, key=lambda f: f.round)

    def test_seeded_degradation_plan_is_deterministic(self):
        kwargs = dict(
            horizon=10,
            tdstore_servers=[0, 1],
            tdaccess_servers=[0],
            task_kills=0,
            tdstore_crashes=0,
            process_crashes=0,
            latency_spikes=1,
            brownouts=1,
        )
        assert seeded_plan(5, **kwargs) == seeded_plan(5, **kwargs)
