"""End-to-end crash/recovery tests.

The headline guarantee: crash the topology mid-stream, recover from the
latest checkpoint, finish the stream — and the recommendations (and the
raw Eq 6-8 state) are byte-identical to an uninterrupted run.
"""

import pytest

from repro.engine import RecommenderEngine, ServeThroughRecovery
from repro.errors import RecoveryError
from repro.recovery import Fault, RecoveryHarness, seeded_plan

from tests.recovery.helpers import (
    TOPIC,
    cf_topology_factory,
    make_payloads,
    make_tdaccess,
    recommendations_bytes,
    state_digest,
)

N_MESSAGES = 48


def run_reference(payloads, **topo_kwargs):
    """The uninterrupted run: same stream, no faults, no recovery."""
    harness = RecoveryHarness(
        make_tdaccess(payloads),
        TOPIC,
        cf_topology_factory(batch_size=4, **topo_kwargs),
        tick_interval=240.0,
        checkpoint_every_rounds=2,
    )
    harness.start()
    assert harness.run() == "completed"
    return recommendations_bytes(harness.client(), harness.clock.now()), (
        state_digest(harness.client())
    )


class TestHeadlineByteIdentity:
    def test_crash_recover_finish_matches_uninterrupted_run(self):
        payloads = make_payloads(N_MESSAGES)
        want_recs, want_state = run_reference(payloads)

        harness = RecoveryHarness(
            make_tdaccess(payloads),
            TOPIC,
            cf_topology_factory(batch_size=4),
            tick_interval=240.0,
            checkpoint_every_rounds=2,
        )
        harness.start(fault_plan=[Fault(4, "crash_process")])
        summary = harness.run_to_completion()
        assert summary["crashes"] == 1
        assert summary["recoveries"] == 1
        report = summary["reports"][0]
        assert report is not None and report.replay_backlog > 0

        got_recs = recommendations_bytes(harness.client(), harness.clock.now())
        assert got_recs == want_recs
        assert state_digest(harness.client()) == want_state

    def test_combiner_and_pruning_state_survive_crashes(self):
        # combiner buffers and Hoeffding counters live only in bolt
        # memory: exactness across a crash proves the snapshot protocol
        payloads = make_payloads(N_MESSAGES)
        kwargs = dict(use_combiner=True, pruning_delta=0.05)
        want_recs, want_state = run_reference(payloads, **kwargs)

        harness = RecoveryHarness(
            make_tdaccess(payloads),
            TOPIC,
            cf_topology_factory(batch_size=4, **kwargs),
            tick_interval=240.0,
            checkpoint_every_rounds=1,
        )
        harness.start(
            fault_plan=[Fault(3, "crash_process"), Fault(5, "crash_process")]
        )
        summary = harness.run_to_completion()
        assert summary["crashes"] == 2
        got_recs = recommendations_bytes(harness.client(), harness.clock.now())
        assert got_recs == want_recs
        assert state_digest(harness.client()) == want_state

    def test_infrastructure_faults_plus_crash(self):
        # task kills and a TDStore server crash/recovery ride along with
        # the process crash; replication failover keeps state exact
        payloads = make_payloads(N_MESSAGES)
        want_recs, want_state = run_reference(payloads)

        harness = RecoveryHarness(
            make_tdaccess(payloads),
            TOPIC,
            cf_topology_factory(batch_size=4),
            tick_interval=240.0,
            checkpoint_every_rounds=2,
        )
        harness.start(
            fault_plan=[
                Fault(1, "kill_task", ("userHistory", 0)),
                Fault(2, "crash_tdstore", (0,)),
                Fault(3, "recover_tdstore", (0,)),
                Fault(4, "crash_process"),
                Fault(5, "kill_task", ("simList", 1)),
            ]
        )
        summary = harness.run_to_completion()
        assert summary["crashes"] == 1
        assert {f.kind for f in harness.injector.injected} == {
            "kill_task", "crash_tdstore", "recover_tdstore", "crash_process",
        }
        got_recs = recommendations_bytes(harness.client(), harness.clock.now())
        assert got_recs == want_recs
        assert state_digest(harness.client()) == want_state

    def test_seeded_chaos_still_exact(self):
        payloads = make_payloads(N_MESSAGES)
        want_recs, want_state = run_reference(payloads)
        for seed in (1, 2):
            harness = RecoveryHarness(
                make_tdaccess(payloads),
                TOPIC,
                cf_topology_factory(batch_size=4),
                tick_interval=240.0,
                checkpoint_every_rounds=2,
            )
            plan = seeded_plan(
                seed,
                horizon=8,
                kill_components=[("userHistory", 2), ("simList", 2)],
                tdstore_servers=[0, 1, 2],
                task_kills=2,
                tdstore_crashes=1,
                process_crashes=1,
            )
            harness.start(fault_plan=plan)
            harness.run_to_completion()
            got = recommendations_bytes(
                harness.client(), harness.clock.now()
            )
            assert got == want_recs, f"seed {seed} diverged"
            assert state_digest(harness.client()) == want_state


class TestRecoveryEdges:
    def test_crash_before_first_checkpoint_cold_restarts(self):
        payloads = make_payloads(24)
        want_recs, _ = run_reference(payloads)
        harness = RecoveryHarness(
            make_tdaccess(payloads),
            TOPIC,
            cf_topology_factory(batch_size=4),
            tick_interval=240.0,
            checkpoint_every_rounds=100,  # never checkpoints before crash
        )
        harness.start(fault_plan=[Fault(2, "crash_process")])
        assert harness.run() == "crashed"
        report = harness.recover()
        assert report is None  # nothing to restore: cold start from 0
        assert harness.run() == "completed"
        got = recommendations_bytes(harness.client(), harness.clock.now())
        assert got == want_recs

    def test_recover_without_start_requires_deployment(self):
        harness = RecoveryHarness(
            make_tdaccess(make_payloads(8)),
            TOPIC,
            cf_topology_factory(),
        )
        with pytest.raises(RecoveryError, match="no deployment"):
            harness.run()

    def test_run_to_completion_gives_up_after_max_crashes(self):
        harness = RecoveryHarness(
            make_tdaccess(make_payloads(24)),
            TOPIC,
            cf_topology_factory(batch_size=4),
            checkpoint_every_rounds=2,
        )
        # one crash per recovered run, every run, at its first barrier:
        # the stream can never finish, so the harness must give up
        plan = [Fault(1, "crash_process") for _ in range(10)]
        harness.start(fault_plan=plan)
        with pytest.raises(RecoveryError, match="gave up"):
            harness.run_to_completion(max_crashes=3)

    def test_truncated_replay_strict_raises_lenient_reports(self):
        # retention churns on while the computation is down: by the time
        # recovery seeks back, the checkpointed offsets are gone
        for strict in (True, False):
            tdaccess = make_tdaccess(
                make_payloads(24),
                num_partitions=1,
                segment_size=8,
                retention_segments=2,
            )
            harness = RecoveryHarness(
                tdaccess,
                TOPIC,
                cf_topology_factory(batch_size=4),
                checkpoint_every_rounds=1,
                allow_truncated_replay=not strict,
            )
            harness.start(fault_plan=[Fault(2, "crash_process")])
            assert harness.run() == "crashed"
            producer = tdaccess.producer()
            for payload in make_payloads(32, seed=99):
                producer.send(TOPIC, payload, key=payload["user"])
            if strict:
                with pytest.raises(RecoveryError, match="retention"):
                    harness.recover()
            else:
                report = harness.recover()
                assert report is not None and report.truncated
                assert report.truncated_messages > 0
                assert harness.run() == "completed"

    def test_wrong_topology_name_rejected(self):
        harness = RecoveryHarness(
            make_tdaccess(make_payloads(24)),
            TOPIC,
            cf_topology_factory(batch_size=4),
            checkpoint_every_rounds=1,
        )
        harness.start(fault_plan=[Fault(4, "crash_process")])
        assert harness.run() == "crashed"
        stack = harness._build_stack()
        with pytest.raises(RecoveryError, match="topology"):
            harness.recovery.restore_latest(
                cluster=stack.cluster,
                topology="something-else",
                tdstore=stack.tdstore,
                consumers={"source": stack.consumer},
                clock=stack.clock,
            )


class TestServeThroughRecovery:
    def test_degraded_serving_uses_last_known_good(self):
        payloads = make_payloads(N_MESSAGES)
        harness = RecoveryHarness(
            make_tdaccess(payloads),
            TOPIC,
            cf_topology_factory(batch_size=4),
            tick_interval=240.0,
            checkpoint_every_rounds=2,
        )
        harness.start(fault_plan=[Fault(4, "crash_process")])
        assert harness.run() == "crashed"
        harness.recover()

        serving = ServeThroughRecovery(
            RecommenderEngine(harness.client()),
            in_recovery=lambda: harness.recovery.in_progress,
        )
        now = harness.clock.now()
        # mid-recovery: no cached answer yet -> degrade to empty
        assert harness.recovery.in_progress
        assert serving.recommend_cf("u0", 3, now) == []
        assert serving.degraded_serves == 1
        assert serving.degraded_misses == 1

        assert harness.run() == "completed"
        assert not harness.recovery.in_progress
        live = serving.recommend_cf("u0", 3, harness.clock.now())
        assert serving.live_serves == 1
        # a later recovery window falls back to the cached live answer
        harness.recovery.in_progress = True
        assert serving.recommend_cf("u0", 3, harness.clock.now()) == live
        assert serving.degraded_misses == 1
        harness.recovery.in_progress = False

    def test_recovery_duration_recorded(self):
        harness = RecoveryHarness(
            make_tdaccess(make_payloads(N_MESSAGES)),
            TOPIC,
            cf_topology_factory(batch_size=4),
            tick_interval=240.0,
            checkpoint_every_rounds=2,
        )
        harness.start(fault_plan=[Fault(4, "crash_process")])
        harness.run_to_completion()
        assert harness.recovery.last_recovery_duration is not None
        assert harness.recovery.last_recovery_duration >= 0.0
