"""Replay-chaos acceptance tests for the exactly-once layer.

The guarantee under test: with duplicate deliveries and mid-tree worker
kills injected — the at-least-once failure modes that corrupt counters
in a naive topology — the final TDStore item counts, pair counts and
similarity lists are byte-identical to a failure-free run, and every
dedup ledger stays within its watermark bound throughout.

Rewind depths are multiples of the spout batch size. Counters are exact
under any rewind (every delta applies exactly once), but similarity
values are *sampled* from the live counts at pair-processing time, so
they depend on which messages share a scheduling round; an unaligned
rewind shifts the batch boundaries of messages that were never
replayed. Checkpoint recovery replays are aligned for the same reason
(offsets are captured at batch boundaries). The unaligned case is
covered separately, asserting count exactness.
"""

from repro.recovery import Fault, RecoveryHarness, seeded_plan

from tests.recovery.helpers import (
    TOPIC,
    cf_topology_factory,
    make_payloads,
    make_tdaccess,
    recommendations_bytes,
    state_digest,
)

N_MESSAGES = 48
BATCH = 4


def run_reference(payloads):
    harness = RecoveryHarness(
        make_tdaccess(payloads),
        TOPIC,
        cf_topology_factory(batch_size=BATCH),
        tick_interval=240.0,
        checkpoint_every_rounds=2,
    )
    harness.start()
    assert harness.run() == "completed"
    return recommendations_bytes(harness.client(), harness.clock.now()), (
        state_digest(harness.client())
    )


def make_chaos_harness(payloads, plan):
    harness = RecoveryHarness(
        make_tdaccess(payloads),
        TOPIC,
        cf_topology_factory(batch_size=BATCH),
        tick_interval=240.0,
        checkpoint_every_rounds=2,
    )
    harness.start(fault_plan=plan)
    return harness


def watch_ledger_bounds(harness, violations):
    """Barrier hook asserting the watermark bound at every round."""

    def check(barrier_round):
        stats = harness.cluster.exactly_once_stats(harness.topology_name)
        for task, task_stats in stats.items():
            if not task_stats["within_bound"]:
                violations.append((barrier_round, task))

    harness.cluster.add_barrier_hook(check)


def total_dedup_hits(harness):
    stats = harness.cluster.exactly_once_stats(harness.topology_name)
    return sum(s["dedup_hits"] for s in stats.values())


class TestDuplicateDelivery:
    def test_redelivered_offsets_do_not_change_state(self):
        payloads = make_payloads(N_MESSAGES)
        want_recs, want_state = run_reference(payloads)

        harness = make_chaos_harness(
            payloads,
            [
                Fault(2, "duplicate_delivery", ("source", 2 * BATCH)),
                Fault(4, "duplicate_delivery", ("source", 3 * BATCH)),
            ],
        )
        violations = []
        watch_ledger_bounds(harness, violations)
        assert harness.run() == "completed"
        assert harness.injector.rewinds == 2
        # the replays actually reached the topology and were suppressed
        assert total_dedup_hits(harness) > 0
        assert violations == []
        got = recommendations_bytes(harness.client(), harness.clock.now())
        assert got == want_recs
        assert state_digest(harness.client()) == want_state

    def test_deep_rewind_replays_whole_prefix_exactly_once(self):
        # rewind farther than anything still in flight: every replayed
        # offset is below or inside the ledger window and must be dropped
        payloads = make_payloads(N_MESSAGES)
        want_recs, want_state = run_reference(payloads)
        harness = make_chaos_harness(
            payloads, [Fault(5, "duplicate_delivery", ("source", 100))]
        )
        assert harness.run() == "completed"
        assert total_dedup_hits(harness) > 0
        got = recommendations_bytes(harness.client(), harness.clock.now())
        assert got == want_recs
        assert state_digest(harness.client()) == want_state

    def test_unaligned_rewind_keeps_counters_exact(self):
        # a rewind that is not a whole number of batches regroups the
        # scheduling rounds of later messages, so point-in-time
        # similarity samples may differ — but every counter the deltas
        # feed must still be exact to the last bit
        payloads = make_payloads(N_MESSAGES)
        __, want_state = run_reference(payloads)
        harness = make_chaos_harness(
            payloads,
            [
                Fault(2, "duplicate_delivery", ("source", 3)),
                Fault(4, "duplicate_delivery", ("source", 7)),
            ],
        )
        assert harness.run() == "completed"
        assert total_dedup_hits(harness) > 0
        got_state = state_digest(harness.client())
        assert got_state["item_counts"] == want_state["item_counts"]
        assert got_state["pair_counts"] == want_state["pair_counts"]


class TestWorkerKillMidtree:
    def test_kill_plus_rewind_is_invisible(self):
        # the worst case: a stateful task dies mid-drain (losing its
        # in-memory ledger) while the source rewinds — only the
        # store-side op journal stands between the replay and the counters
        payloads = make_payloads(N_MESSAGES)
        want_recs, want_state = run_reference(payloads)

        harness = make_chaos_harness(
            payloads,
            [Fault(3, "worker_kill_midtree", ("userHistory", 0, 3, 2 * BATCH))],
        )
        violations = []
        watch_ledger_bounds(harness, violations)
        assert harness.run() == "completed"
        assert harness.injector.midtree_fired == 1
        assert harness.injector.rewinds >= 1
        assert violations == []
        got = recommendations_bytes(harness.client(), harness.clock.now())
        assert got == want_recs
        assert state_digest(harness.client()) == want_state

    def test_kill_each_stateful_layer(self):
        payloads = make_payloads(N_MESSAGES)
        want_recs, want_state = run_reference(payloads)
        for component in ("userHistory", "itemCount", "pairCount", "simList"):
            harness = make_chaos_harness(
                payloads,
                [Fault(2, "worker_kill_midtree", (component, 1, 2, 2 * BATCH))],
            )
            assert harness.run() == "completed", component
            assert harness.injector.midtree_fired == 1
            got = recommendations_bytes(
                harness.client(), harness.clock.now()
            )
            assert got == want_recs, f"{component} kill diverged"
            assert state_digest(harness.client()) == want_state, component


class TestSeededReplayChaos:
    def test_replay_faults_with_process_crashes_stay_exact(self):
        # the full gauntlet: duplicate deliveries, mid-tree kills, task
        # kills and a process crash/recovery in one seeded plan
        payloads = make_payloads(N_MESSAGES)
        want_recs, want_state = run_reference(payloads)
        for seed in (11, 12):
            harness = make_chaos_harness(
                payloads,
                seeded_plan(
                    seed,
                    horizon=8,
                    kill_components=[("userHistory", 2), ("itemCount", 2)],
                    task_kills=1,
                    tdstore_crashes=0,
                    process_crashes=1,
                    duplicate_deliveries=2,
                    midtree_kills=1,
                    rewind_depth=2 * BATCH,
                ),
            )
            harness.run_to_completion()
            kinds = {f.kind for f in harness.injector.injected}
            assert "duplicate_delivery" in kinds, f"seed {seed}"
            stats = harness.cluster.exactly_once_stats(harness.topology_name)
            assert all(s["within_bound"] for s in stats.values())
            got = recommendations_bytes(
                harness.client(), harness.clock.now()
            )
            assert got == want_recs, f"seed {seed} diverged"
            assert state_digest(harness.client()) == want_state, f"seed {seed}"
