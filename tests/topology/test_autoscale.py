"""Tests for automatic parallelism selection (Section 7 future work)."""

import pytest

from repro.errors import ConfigurationError
from repro.topology.autoscale import (
    ParallelismPlan,
    WorkloadProfile,
    plan_parallelism,
)
from repro.types import UserAction


def profile(**kwargs):
    defaults = dict(
        events_per_second=1000.0,
        distinct_users=10_000,
        distinct_items=5_000,
        pairs_per_event=10.0,
    )
    defaults.update(kwargs)
    return WorkloadProfile(**defaults)


class TestPlanParallelism:
    def test_layers_scale_with_their_tuple_rates(self):
        plan = plan_parallelism(profile(), events_per_task_per_second=500.0)
        # user history: 1000/500 = 2 tasks; pair layers see 10x the rate
        assert plan.user_history == 2
        assert plan.pair_count == 20
        assert plan.sim_list == 40

    def test_small_stream_gets_single_tasks(self):
        plan = plan_parallelism(
            profile(events_per_second=10.0, pairs_per_event=2.0),
            events_per_task_per_second=500.0,
        )
        assert plan == ParallelismPlan(1, 1, 1, 1)

    def test_capped_by_key_cardinality(self):
        # three distinct users can keep at most three userHistory tasks busy
        plan = plan_parallelism(
            profile(events_per_second=100_000.0, distinct_users=3),
            events_per_task_per_second=100.0,
        )
        assert plan.user_history == 3

    def test_capped_by_max_parallelism(self):
        plan = plan_parallelism(
            profile(events_per_second=10**6), max_parallelism=16
        )
        assert max(plan.as_dict().values()) <= 16

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            plan_parallelism(profile(), events_per_task_per_second=0.0)
        with pytest.raises(ConfigurationError):
            plan_parallelism(profile(), max_parallelism=0)
        with pytest.raises(ConfigurationError):
            WorkloadProfile(events_per_second=0.0, distinct_users=1,
                            distinct_items=1)


class TestProfileFromSample:
    def test_measures_rate_and_cardinalities(self):
        actions = [
            UserAction(f"u{n % 5}", f"i{n % 3}", "click", float(n))
            for n in range(100)
        ]
        measured = WorkloadProfile.from_sample(actions)
        assert measured.events_per_second == pytest.approx(100 / 99.0)
        assert measured.distinct_users == 5
        assert measured.distinct_items == 3

    def test_needs_two_events(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile.from_sample([UserAction("u", "i", "click", 0.0)])

    def test_plan_from_sampled_stream_is_usable(self):
        actions = [
            UserAction(f"u{n % 50}", f"i{n % 30}", "click", float(n) / 100)
            for n in range(2000)
        ]
        plan = plan_parallelism(
            WorkloadProfile.from_sample(actions),
            events_per_task_per_second=100.0,
        )
        assert plan.user_history >= 2
        assert plan.user_history <= 50
