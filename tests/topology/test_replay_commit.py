"""Replay safety of the read-modify-write bolts.

Regression tests for the commit protocol: the stateful RMW bolts
(UserHistoryBolt, SimListBolt, GroupCountBolt) must journal an op id
*atomically with* the state it guards — never before the update. A store
failure mid-update (deadline miss, breaker, injected error) fails the
tuple; the replay must then re-execute the whole update and converge to
exactly the failure-free state. The old journal-first pattern left the
op id durably recorded with the update lost, so the replay was skipped
and the data was gone for good.
"""

import pytest

from repro.errors import DataServerDownError
from repro.storm.component import OutputCollector, TopologyContext
from repro.storm.streams import OutputDeclaration
from repro.storm.tuples import StormTuple
from repro.tdstore.cluster import TDStoreCluster
from repro.topology.bolts_cf import SimListBolt, UserHistoryBolt
from repro.topology.bolts_db import GroupCountBolt
from repro.topology.state import StateKeys


class FlakyClient:
    """Client proxy that raises once on the first call of one method."""

    def __init__(self, inner, fail_method):
        self._inner = inner
        self._fail_method = fail_method
        self.failed = False

    def __getattr__(self, name):
        attr = getattr(self._inner, name)
        if name == self._fail_method and not self.failed:
            def boom(*args, **kwargs):
                self.failed = True
                raise DataServerDownError("injected mid-update failure")

            return boom
        return attr


def prepare(bolt, name="bolt"):
    """Wire a bolt to a collector that records emissions; returns the list."""
    declaration = OutputDeclaration()
    bolt.declare_outputs(declaration)
    emitted = []
    collector = OutputCollector(
        name, 0, declaration,
        emit_fn=lambda tup, message_id: emitted.append(tup),
        ack_fn=lambda tup: None,
        fail_fn=lambda tup: None,
        clock_now=lambda: 0.0,
    )
    bolt.prepare(TopologyContext(name, 0, 1, "test"), collector)
    return emitted


def deliver(bolt, tup):
    """Execute ``tup`` the way the cluster would: input identity installed
    so emissions derive replay-stable op ids."""
    bolt.collector.set_input_context(frozenset(), tup.op_id)
    bolt.execute(tup)


def action_tuple(user, item, offset, action="click", timestamp=0.0):
    return StormTuple(
        (user, item, action, timestamp),
        ("user", "item", "action", "timestamp"),
        "default",
        "source",
        op_id=f"actions@{offset}",
    )


def sim_tuple(item, other, similarity, offset):
    return StormTuple(
        (item, other, similarity),
        ("item", "other", "similarity"),
        "sim_update",
        "pairCount",
        op_id=f"actions@{offset}>pairCount.0:0",
    )


def group_tuple(group, item, delta, offset):
    return StormTuple(
        (group, item, delta),
        ("group", "item", "delta"),
        "group_delta",
        "userHistory",
        op_id=f"actions@{offset}>userHistory.0:1",
    )


def fresh_cluster():
    return TDStoreCluster(num_data_servers=3, num_instances=8)


class TestUserHistoryReplay:
    def run_sequence(self, fail_method=None):
        cluster = fresh_cluster()
        flaky = (
            FlakyClient(cluster.client(), fail_method)
            if fail_method is not None
            else None
        )
        bolt = UserHistoryBolt(
            client_factory=lambda: flaky or cluster.client(),
            group_of=lambda user: "g1",
        )
        emitted = prepare(bolt)
        tuples = [
            action_tuple("u1", "i1", 0, timestamp=1.0),
            action_tuple("u1", "i2", 1, "purchase", timestamp=2.0),
            action_tuple("u1", "i3", 2, timestamp=3.0),
        ]
        for tup in tuples:
            if fail_method is not None and not flaky.failed:
                try:
                    deliver(bolt, tup)
                except DataServerDownError:
                    # the tuple tree fails; the spout replays it
                    deliver(bolt, tup)
            else:
                deliver(bolt, tup)
        return cluster.client(), emitted

    def reference(self):
        return self.run_sequence(fail_method=None)

    @pytest.mark.parametrize("fail_method", ["put", "put_once"])
    def test_failure_mid_update_then_replay_converges(self, fail_method):
        want_client, want_emitted = self.reference()
        got_client, got_emitted = self.run_sequence(fail_method=fail_method)
        for key in (
            StateKeys.history("u1"),
            StateKeys.recent("u1"),
        ):
            assert got_client.get(key) == want_client.get(key), key
        # replayed emissions reuse the same derived op ids, so whatever
        # already reached downstream dedups; net effect is identical
        want_ids = {(t.op_id, tuple(t.values)) for t in want_emitted}
        got_ids = {(t.op_id, tuple(t.values)) for t in got_emitted}
        assert got_ids == want_ids

    def test_failed_commit_leaves_no_journal_entry(self):
        # regression: the op id used to be journaled *before* the update
        # (run_once), so the replay was skipped and the update lost
        cluster = fresh_cluster()
        flaky = FlakyClient(cluster.client(), "put_once")
        bolt = UserHistoryBolt(client_factory=lambda: flaky)
        prepare(bolt)
        tup = action_tuple("u1", "i1", 0, timestamp=1.0)
        with pytest.raises(DataServerDownError):
            deliver(bolt, tup)
        probe = cluster.client()
        assert not probe.op_seen(StateKeys.history("u1"), "actions@0")
        assert probe.get(StateKeys.history("u1")) is None
        # the ledger is also unmarked: the replay is processed, not dropped
        deliver(bolt, tup)
        assert bolt.dedup_hits == 0
        assert probe.get(StateKeys.history("u1")) == {"i1": (2.0, 1.0)}

    def test_replay_of_committed_update_is_skipped(self):
        cluster = fresh_cluster()
        bolt = UserHistoryBolt(client_factory=cluster.client)
        emitted = prepare(bolt)
        tup = action_tuple("u1", "i1", 0, timestamp=1.0)
        deliver(bolt, tup)
        first = len(emitted)
        # the ledger catches the replay first; wipe it to exercise the
        # store-journal probe (the task-kill path)
        bolt.ledger.restore(
            {"retain_depth": 256, "first_seen": 0, "duplicates": 0,
             "odd": [], "sources": {}}
        )
        deliver(bolt, tup)
        assert len(emitted) == first  # no re-emission
        history = cluster.client().get(StateKeys.history("u1"))
        assert history == {"i1": (2.0, 1.0)}


class TestSimListReplay:
    @pytest.mark.parametrize("fail_method", ["put", "put_once"])
    def test_failure_mid_update_then_replay_converges(self, fail_method):
        want = fresh_cluster()
        bolt = SimListBolt(client_factory=want.client, k=2)
        prepare(bolt)
        for index, (other, sim) in enumerate(
            [("i2", 0.5), ("i3", 0.8), ("i4", 0.6)]
        ):
            deliver(bolt, sim_tuple("i1", other, sim, index))

        got = fresh_cluster()
        flaky = FlakyClient(got.client(), fail_method)
        bolt = SimListBolt(client_factory=lambda: flaky, k=2)
        prepare(bolt)
        for index, (other, sim) in enumerate(
            [("i2", 0.5), ("i3", 0.8), ("i4", 0.6)]
        ):
            tup = sim_tuple("i1", other, sim, index)
            try:
                deliver(bolt, tup)
            except DataServerDownError:
                deliver(bolt, tup)
        for key in (StateKeys.sim_list("i1"), StateKeys.threshold("i1")):
            assert got.client().get(key) == want.client().get(key), key

    def test_prune_replay_converges(self):
        want = fresh_cluster()
        bolt = SimListBolt(client_factory=want.client, k=2)
        prepare(bolt)
        deliver(bolt, sim_tuple("i1", "i2", 0.5, 0))
        prune = StormTuple(
            ("i1", "i2"), ("item", "other"), "prune", "pairCount",
            op_id="actions@1>pairCount.0:0",
        )
        deliver(bolt, prune)

        got = fresh_cluster()
        flaky = FlakyClient(got.client(), "put_once")
        flaky.failed = True  # let the sim_update commit through
        bolt = SimListBolt(client_factory=lambda: flaky, k=2)
        prepare(bolt)
        deliver(bolt, sim_tuple("i1", "i2", 0.5, 0))
        flaky.failed = False  # arm for the prune commit
        prune = StormTuple(
            ("i1", "i2"), ("item", "other"), "prune", "pairCount",
            op_id="actions@1>pairCount.0:0",
        )
        try:
            deliver(bolt, prune)
        except DataServerDownError:
            deliver(bolt, prune)
        for key in (
            StateKeys.sim_list("i1"),
            StateKeys.threshold("i1"),
            StateKeys.pruned("i1"),
        ):
            assert got.client().get(key) == want.client().get(key), key


class TestGroupCountReplay:
    def test_failure_mid_update_then_replay_is_exact(self):
        cluster = fresh_cluster()
        flaky = FlakyClient(cluster.client(), "put_once")
        bolt = GroupCountBolt(client_factory=lambda: flaky)
        prepare(bolt)
        tup = group_tuple("g1", "i1", 2.0, 0)
        with pytest.raises(DataServerDownError):
            deliver(bolt, tup)
        assert cluster.client().get(StateKeys.hot("g1")) is None
        deliver(bolt, tup)  # the replay re-runs the whole fold
        deliver(bolt, group_tuple("g1", "i1", 1.0, 1))
        assert cluster.client().get(StateKeys.hot("g1")) == {"i1": 3.0}

    def test_committed_delta_never_double_applies(self):
        cluster = fresh_cluster()
        bolt = GroupCountBolt(client_factory=cluster.client)
        prepare(bolt)
        tup = group_tuple("g1", "i1", 2.0, 0)
        deliver(bolt, tup)
        # a replay after the in-memory ledger died with its task: the
        # store journal alone must stop the double-count
        fresh = GroupCountBolt(client_factory=cluster.client)
        prepare(fresh)
        deliver(fresh, tup)
        assert cluster.client().get(StateKeys.hot("g1")) == {"i1": 2.0}
