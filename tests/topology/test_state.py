"""Tests for the cache (§5.2) and combiner (§5.3) state helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.topology.state import CachedStore, Combiner, StateKeys


class TestStateKeys:
    def test_pair_keys_canonical(self):
        assert StateKeys.pair_count("b", "a") == StateKeys.pair_count("a", "b")
        assert StateKeys.ar_pair("z", "a") == StateKeys.ar_pair("a", "z")

    def test_namespaces_disjoint(self):
        keys = {
            StateKeys.history("x"),
            StateKeys.recent("x"),
            StateKeys.item_count("x"),
            StateKeys.sim_list("x"),
            StateKeys.threshold("x"),
            StateKeys.pruned("x"),
            StateKeys.hot("x"),
            StateKeys.profile("x"),
            StateKeys.item_meta("x"),
        }
        assert len(keys) == 9


class TestCachedStore(object):
    def test_read_through_caches(self, client_factory):
        store = CachedStore(client_factory())
        store.client.put("k", 1)
        assert store.get("k") == 1
        assert store.get("k") == 1
        assert store.hits == 1
        assert store.misses == 1

    def test_write_through_visible_to_other_clients(self, client_factory):
        store = CachedStore(client_factory())
        store.put("k", 42)
        other = client_factory()
        assert other.get("k") == 42

    def test_cached_reads_do_not_hit_tdstore(self, tdstore):
        store = CachedStore(tdstore.client())
        store.put("k", 1)
        before = sum(tdstore.read_stats().values())
        for __ in range(100):
            store.get("k")
        assert sum(tdstore.read_stats().values()) == before

    def test_get_fresh_bypasses_cache(self, client_factory):
        store = CachedStore(client_factory())
        assert store.get("k", 0) == 0  # caches the default
        client_factory().put("k", 99)  # another task writes
        assert store.get("k", 0) == 0  # stale cache, by design
        assert store.get_fresh("k", 0) == 99

    def test_incr(self, client_factory):
        store = CachedStore(client_factory())
        assert store.incr("n", 2.0) == 2.0
        assert store.incr("n", 0.5) == 2.5

    def test_invalidate(self, client_factory):
        store = CachedStore(client_factory())
        store.put("k", 1)
        client_factory().put("k", 2)
        store.invalidate("k")
        assert store.get("k") == 2


class TestCombiner:
    def test_merges_same_key(self, client_factory):
        store = CachedStore(client_factory())
        combiner = Combiner(store, "add")
        for __ in range(100):
            combiner.add("itemCount:hot-news", 1.0)
        assert combiner.pending() == 1
        assert combiner.merged == 99
        assert combiner.peek("itemCount:hot-news") == 100.0

    def test_flush_applies_merged_value_once(self, tdstore):
        store = CachedStore(tdstore.client())
        combiner = Combiner(store, "add")
        for __ in range(100):
            combiner.add("k", 1.0)
        writes_before = sum(tdstore.write_stats().values())
        combiner.flush()
        writes_after = sum(tdstore.write_stats().values())
        assert store.get("k") == 100.0
        # one read-modify-write instead of 100
        assert writes_after - writes_before <= 2
        assert combiner.pending() == 0

    def test_flush_accumulates_over_existing_value(self, client_factory):
        store = CachedStore(client_factory())
        store.put("k", 5.0)
        combiner = Combiner(store, "add")
        combiner.add("k", 3.0)
        combiner.flush()
        assert store.get("k") == 8.0

    def test_max_combine(self, client_factory):
        store = CachedStore(client_factory())
        combiner = Combiner(store, "max")
        combiner.add("r", 2.0)
        combiner.add("r", 5.0)
        combiner.add("r", 1.0)
        combiner.flush()
        assert store.get("r") == 5.0

    def test_unknown_op_rejected(self, client_factory):
        with pytest.raises(ConfigurationError):
            Combiner(CachedStore(client_factory()), "xor")

    def test_combiner_saves_more_under_skew(self, client_factory):
        """§5.3: 'in a temporal burst situation, the combiner's efficacy
        will be even improved' — skewed keys merge more."""
        store = CachedStore(client_factory())
        skewed = Combiner(store, "add")
        for i in range(100):
            skewed.add("hot", 1.0)  # all one key
        uniform = Combiner(store, "add")
        for i in range(100):
            uniform.add(f"cold-{i}", 1.0)
        assert skewed.merged > uniform.merged
        assert skewed.pending() < uniform.pending()
