"""Tests for the CTR (Figure 7), CB, and AR topologies plus Pretreatment."""

import pytest

from repro.storm import LocalCluster, topology_from_xml
from repro.tdaccess import TDAccessCluster
from repro.topology import StateKeys
from repro.topology.framework import (
    build_ar_topology,
    build_cb_topology,
    build_ctr_topology,
    unit_registry,
)
from repro.topology.spouts import TDAccessSpout
from repro.types import UserAction, UserProfile

PROFILES = {
    "m1": UserProfile("m1", gender="male", age=25, region="beijing"),
    "f1": UserProfile("f1", gender="female", age=25, region="beijing"),
}


def make_tdaccess(clock, payloads):
    access = TDAccessCluster(clock, num_data_servers=2)
    access.create_topic("ads", 2)
    producer = access.producer()
    for payload in payloads:
        key = payload.get("user") if isinstance(payload, dict) else None
        producer.send("ads", payload, key=key)
    return access


class TestCtrTopology:
    def payloads(self):
        rows = []
        for n in range(60):
            rows.append({"user": "m1", "item": "ad1", "action": "impression",
                         "timestamp": float(n)})
            rows.append({"user": "f1", "item": "ad1", "action": "impression",
                         "timestamp": float(n)})
        for n in range(30):
            rows.append({"user": "m1", "item": "ad1", "action": "click",
                         "timestamp": 60.0 + n})
        # some garbage the pretreatment must drop
        rows.append({"user": "m1", "action": "click", "timestamp": 99.0})
        rows.append({"user": "m1", "item": "ad1", "action": "explode",
                     "timestamp": 99.0})
        rows.append("not-a-dict")
        return rows

    def test_figure7_pipeline_end_to_end(self, clock, tdstore, client_factory):
        access = make_tdaccess(clock, self.payloads())
        topo = build_ctr_topology(
            "ctr-app",
            lambda: TDAccessSpout(access.consumer("ads"), clock),
            client_factory,
            PROFILES.get,
        )
        cluster = LocalCluster(clock=clock)
        cluster.submit(topo)
        cluster.run_until_idle()
        client = client_factory()
        male_key = "region=beijing&gender=male&age=age25-34"
        female_key = "region=beijing&gender=female&age=age25-34"
        assert client.get(StateKeys.impressions("ad1", male_key)) == 60.0
        assert client.get(StateKeys.clicks("ad1", male_key)) == 30.0
        male_ctr = client.get(StateKeys.ctr("ad1", male_key))
        female_ctr = client.get(StateKeys.ctr("ad1", female_key))
        assert male_ctr > 5 * female_ctr
        # the introduction's query: situational CTR differs by demographics
        stored = client.get(StateKeys.result("ctr", f"ad1|{male_key}"))
        assert stored["ctr"] == pytest.approx(male_ctr)

    def test_windowed_ctr_forgets_old_sessions(self, clock, tdstore,
                                               client_factory):
        """The introduction's query: CTR over the last W sessions only."""
        rows = []
        # session 0 (t in [0, 10)): terrible CTR
        for n in range(50):
            rows.append({"user": "m1", "item": "ad1", "action": "impression",
                         "timestamp": 0.5})
        # session 5 (t in [50, 60)): great CTR
        for n in range(20):
            rows.append({"user": "m1", "item": "ad1", "action": "impression",
                         "timestamp": 55.0})
        for n in range(10):
            rows.append({"user": "m1", "item": "ad1", "action": "click",
                         "timestamp": 55.0})
        access = make_tdaccess(clock, rows)
        topo = build_ctr_topology(
            "ctr-win",
            lambda: TDAccessSpout(access.consumer("ads"), clock),
            client_factory,
            PROFILES.get,
            session_seconds=10.0,
            window_sessions=2,  # "the last twenty seconds"
        )
        cluster = LocalCluster(clock=clock)
        cluster.submit(topo)
        cluster.run_until_idle()
        client = client_factory()
        # the stored CTR reflects only sessions 4-5: 20 impressions,
        # 10 clicks, smoothed by the Beta prior
        ctr = client.get(StateKeys.ctr("ad1", "any"))
        expected = (10 + 0.02 * 20.0) / (20 + 20.0)
        assert ctr == pytest.approx(expected)

    def test_pretreatment_drops_garbage(self, clock, tdstore, client_factory):
        access = make_tdaccess(clock, self.payloads())
        topo = build_ctr_topology(
            "ctr-app",
            lambda: TDAccessSpout(access.consumer("ads"), clock),
            client_factory,
            PROFILES.get,
        )
        cluster = LocalCluster(clock=clock)
        cluster.submit(topo)
        cluster.run_until_idle()
        dropped = 0
        for index in range(2):
            bolt = cluster.task_instance("ctr-app", "pretreatment", index)
            dropped += bolt.dropped
        assert dropped == 3


class TestCbTopology:
    def test_profiles_built_from_stream(self, clock, tdstore, client_factory):
        metas = [
            {"item": "n1", "tags": ("sports", "football"), "category": "news",
             "publish_time": 0.0, "lifetime": None},
            {"item": "n2", "tags": ("sports", "tennis"), "category": "news",
             "publish_time": 0.0, "lifetime": None},
        ]
        actions = [UserAction("u1", "n1", "click", 10.0)]
        topo = build_cb_topology(
            "cb-app", actions, metas, clock, client_factory
        )
        cluster = LocalCluster(clock=clock)
        cluster.submit(topo)
        cluster.run_until_idle()
        client = client_factory()
        profile = client.get(StateKeys.profile("u1"))
        assert profile["sports"][0] > 0
        index = client.get(StateKeys.tag_index("sports"))
        assert index == {"n1", "n2"}
        assert client.get(StateKeys.consumed("u1")) == {"n1"}


class TestArTopology:
    def test_supports_counted(self, clock, tdstore, client_factory):
        actions = [
            UserAction("u1", "A", "click", 0.0),
            UserAction("u1", "B", "click", 10.0),
            UserAction("u2", "A", "click", 0.0),
            UserAction("u2", "B", "click", 5.0),
            UserAction("u3", "A", "click", 0.0),
        ]
        topo = build_ar_topology(
            "ar-app", actions, clock, client_factory, session_gap=100.0
        )
        cluster = LocalCluster(clock=clock)
        cluster.submit(topo)
        cluster.run_until_idle()
        client = client_factory()
        assert client.get(StateKeys.ar_item("A")) == 3.0
        assert client.get(StateKeys.ar_pair("A", "B")) == 2.0
        assert client.get(StateKeys.ar_partners("A")) == {"B"}


class TestXmlUnitRegistry:
    CF_XML = """
    <topology name="cf-from-xml">
      <spout name="spout" class="ActionSpout"/>
      <bolts>
        <bolt name="userHistory" class="UserHistory">
          <grouping type="field">
            <fields>user</fields>
            <stream_id>user_action</stream_id>
          </grouping>
        </bolt>
        <bolt name="itemCount" class="ItemCount">
          <grouping type="field">
            <fields>item</fields>
            <stream_id>item_delta</stream_id>
            <source>userHistory</source>
          </grouping>
        </bolt>
        <bolt name="pairCount" class="PairCount">
          <grouping type="field">
            <fields>pair_a, pair_b</fields>
            <stream_id>pair_delta</stream_id>
            <source>userHistory</source>
          </grouping>
        </bolt>
        <bolt name="simList" class="SimList">
          <grouping type="field">
            <fields>item</fields>
            <stream_id>sim_update</stream_id>
            <source>pairCount</source>
          </grouping>
          <grouping type="field">
            <fields>item</fields>
            <stream_id>prune</stream_id>
            <source>pairCount</source>
          </grouping>
        </bolt>
      </bolts>
    </topology>
    """

    def test_cf_topology_from_xml_runs(self, clock, tdstore, client_factory):
        actions = [
            UserAction("u1", "A", "click", 0.0),
            UserAction("u1", "B", "click", 1.0),
            UserAction("u2", "A", "click", 2.0),
            UserAction("u2", "B", "click", 3.0),
        ]
        registry = unit_registry(clock, client_factory, actions=actions)
        topo = topology_from_xml(self.CF_XML, registry)
        cluster = LocalCluster(clock=clock)
        cluster.submit(topo)
        cluster.run_until_idle()
        client = client_factory()
        assert client.get(StateKeys.item_count("A")) == 4.0
        assert client.get(StateKeys.pair_count("A", "B")) == 4.0
        sim_list = client.get(StateKeys.sim_list("A"))
        assert sim_list["B"] == pytest.approx(1.0)
