"""Runtime rebalancing: the Section 7 future work applied live.

An auto-parallelism plan is computed from a stream sample and applied to
a running CF topology mid-stream; because every piece of algorithm state
lives in TDStore, the rebalanced run must produce exactly the same
counts as an untouched one.
"""

import numpy as np
import pytest

from repro.algorithms.itemcf import PracticalItemCF
from repro.errors import ClusterStateError
from repro.storm import LocalCluster
from repro.tdstore import TDStoreCluster
from repro.topology import StateKeys, WorkloadProfile, plan_parallelism
from repro.topology.framework import CFTopologyConfig, build_cf_topology
from repro.types import UserAction
from repro.utils.clock import SimClock

BIG = 10**12


def random_actions(seed=23, n_events=160):
    rng = np.random.default_rng(seed)
    kinds = ["browse", "click", "purchase"]
    return [
        UserAction(
            f"u{rng.integers(10)}",
            f"i{rng.integers(8)}",
            kinds[rng.integers(3)],
            float(index),
        )
        for index in range(n_events)
    ]


class TestRebalance:
    def run_with_rebalance(self, actions, rebalance_to=None):
        clock = SimClock()
        store = TDStoreCluster(num_data_servers=3, num_instances=16)
        topo = build_cf_topology(
            "cf", actions, clock, store.client,
            CFTopologyConfig(linked_time=BIG, parallelism=2),
        )
        cluster = LocalCluster(clock=clock)
        cluster.submit(topo)
        if rebalance_to is not None:
            for __ in range(60):
                cluster.step()
            for component in ("userHistory", "itemCount", "pairCount",
                              "simList"):
                cluster.rebalance("cf", component, rebalance_to)
        cluster.run_until_idle()
        return store, cluster

    def test_results_unchanged_after_live_rebalance(self):
        actions = random_actions()
        baseline, __ = self.run_with_rebalance(list(actions))
        rebalanced, cluster = self.run_with_rebalance(list(actions),
                                                      rebalance_to=5)
        assert cluster._running["cf"].topology.specs[
            "pairCount"
        ].parallelism == 5
        base_client = baseline.client()
        new_client = rebalanced.client()
        reference = PracticalItemCF(linked_time=BIG)
        reference.observe_many(actions)
        for item in reference.table.known_items():
            expected = reference.table.item_count(item)
            assert base_client.get(StateKeys.item_count(item), 0.0) == expected
            assert new_client.get(StateKeys.item_count(item), 0.0) == expected

    def test_scale_down_also_safe(self):
        actions = random_actions(seed=29)
        store, __ = self.run_with_rebalance(list(actions), rebalance_to=1)
        reference = PracticalItemCF(linked_time=BIG)
        reference.observe_many(actions)
        client = store.client()
        for item in reference.table.known_items():
            assert client.get(StateKeys.item_count(item), 0.0) == (
                reference.table.item_count(item)
            )

    def test_spout_rebalance_rejected(self):
        actions = random_actions()
        clock = SimClock()
        store = TDStoreCluster(num_data_servers=2, num_instances=8)
        topo = build_cf_topology(
            "cf", actions, clock, store.client,
            CFTopologyConfig(linked_time=BIG),
        )
        cluster = LocalCluster(clock=clock)
        cluster.submit(topo)
        with pytest.raises(ClusterStateError, match="spout"):
            cluster.rebalance("cf", "spout", 3)

    def test_plan_feeds_rebalance(self):
        """The full §7 loop: profile a sample, plan, apply live."""
        actions = random_actions(seed=31)
        plan = plan_parallelism(
            WorkloadProfile.from_sample(actions, pairs_per_event=3.0),
            events_per_task_per_second=0.5,
            max_parallelism=6,
        )
        clock = SimClock()
        store = TDStoreCluster(num_data_servers=3, num_instances=16)
        topo = build_cf_topology(
            "cf", actions, clock, store.client,
            CFTopologyConfig(linked_time=BIG, parallelism=1),
        )
        cluster = LocalCluster(clock=clock)
        cluster.submit(topo)
        for __ in range(40):
            cluster.step()
        for component, parallelism in plan.as_dict().items():
            cluster.rebalance("cf", component, parallelism)
        cluster.run_until_idle()
        reference = PracticalItemCF(linked_time=BIG)
        reference.observe_many(actions)
        client = store.client()
        for item in reference.table.known_items():
            assert client.get(StateKeys.item_count(item), 0.0) == (
                reference.table.item_count(item)
            )
