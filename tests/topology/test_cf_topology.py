"""Integration tests: the distributed CF topology vs. the reference.

The distributed pipeline (UserHistory -> ItemCount/PairCount -> SimList
over TDStore) must produce exactly the counts and similarities of the
standalone PracticalItemCF — Figure 4 is a parallelization of the same
equations, not a different algorithm.
"""

import numpy as np
import pytest

from repro.algorithms.itemcf import PracticalItemCF
from repro.storm import LocalCluster
from repro.topology import StateKeys
from repro.topology.framework import CFTopologyConfig, build_cf_topology
from repro.types import UserAction


def random_actions(seed, n_users=15, n_items=12, n_events=250):
    rng = np.random.default_rng(seed)
    actions = []
    t = 0.0
    kinds = ["browse", "click", "share", "purchase"]
    for __ in range(n_events):
        actions.append(
            UserAction(
                f"u{rng.integers(n_users)}",
                f"i{rng.integers(n_items)}",
                kinds[rng.integers(len(kinds))],
                t,
            )
        )
        t += 10.0
    return actions


def run_topology(actions, clock, client_factory, config):
    topo = build_cf_topology("cf", actions, clock, client_factory, config)
    cluster = LocalCluster(clock=clock)
    metrics = cluster.submit(topo)
    cluster.run_until_idle()
    return cluster, metrics


BIG = 10**12


class TestEquivalenceWithReference:
    def test_counts_and_similarities_match(self, clock, tdstore, client_factory):
        actions = random_actions(seed=7)
        config = CFTopologyConfig(linked_time=BIG, parallelism=3)
        run_topology(actions, clock, client_factory, config)
        reference = PracticalItemCF(linked_time=BIG)
        reference.observe_many(actions)
        client = client_factory()
        for item in reference.table.known_items():
            assert client.get(StateKeys.item_count(item), 0.0) == pytest.approx(
                reference.table.item_count(item)
            )
        items = reference.table.known_items()
        for i, p in enumerate(items):
            for q in items[i + 1 :]:
                expected = reference.table.pair_count(p, q)
                if expected > 0:
                    assert client.get(
                        StateKeys.pair_count(p, q), 0.0
                    ) == pytest.approx(expected)

    def test_sim_lists_match_reference(self, clock, tdstore, client_factory):
        actions = random_actions(seed=11)
        config = CFTopologyConfig(linked_time=BIG, parallelism=2, k=5)
        run_topology(actions, clock, client_factory, config)
        reference = PracticalItemCF(linked_time=BIG, k=5)
        reference.observe_many(actions)
        client = client_factory()
        for item in reference.table.known_items():
            expected = dict(reference.table.top_similar(item))
            stored = client.get(StateKeys.sim_list(item), None) or {}
            assert set(stored) == set(expected)
            for other, sim in expected.items():
                assert stored[other] == pytest.approx(sim)

    def test_parallelism_does_not_change_results(self, clock, client_factory):
        actions = random_actions(seed=3, n_events=120)
        results = []
        for parallelism in (1, 4):
            from repro.tdstore import TDStoreCluster
            from repro.utils.clock import SimClock

            local_clock = SimClock()
            store = TDStoreCluster(num_data_servers=3, num_instances=16)
            config = CFTopologyConfig(linked_time=BIG, parallelism=parallelism)
            run_topology(list(actions), local_clock, store.client, config)
            client = store.client()
            snapshot = {
                item: client.get(StateKeys.item_count(item), 0.0)
                for item in (f"i{i}" for i in range(12))
            }
            results.append(snapshot)
        assert results[0] == results[1]


class TestHistoryAndRecent:
    def test_user_history_stored(self, clock, client_factory):
        actions = [
            UserAction("u1", "A", "browse", 0.0),
            UserAction("u1", "A", "purchase", 1.0),
            UserAction("u1", "B", "click", 2.0),
        ]
        run_topology(actions, clock, client_factory, CFTopologyConfig(linked_time=BIG))
        client = client_factory()
        history = client.get(StateKeys.history("u1"))
        assert history["A"][0] == 5.0  # purchase weight
        assert history["B"][0] == 2.0

    def test_recent_list_bounded_and_ordered(self, clock, client_factory):
        actions = [
            UserAction("u1", f"i{n}", "click", float(n)) for n in range(15)
        ]
        config = CFTopologyConfig(linked_time=BIG, recent_k=5)
        run_topology(actions, clock, client_factory, config)
        recent = client_factory().get(StateKeys.recent("u1"))
        assert [entry[0] for entry in recent] == [
            "i14", "i13", "i12", "i11", "i10"
        ]


class TestGroupCounting:
    def test_multi_hash_group_counts(self, clock, client_factory):
        """§5.4: actions hashed by user, rating deltas re-hashed by group."""
        groups = {"u1": "male", "u2": "male", "u3": "female"}
        actions = [
            UserAction("u1", "game", "click", 0.0),
            UserAction("u2", "game", "click", 1.0),
            UserAction("u3", "recipe", "click", 2.0),
        ]
        config = CFTopologyConfig(
            linked_time=BIG, group_of=lambda user: groups[user]
        )
        run_topology(actions, clock, client_factory, config)
        client = client_factory()
        male_hot = client.get(StateKeys.hot("male"))
        female_hot = client.get(StateKeys.hot("female"))
        assert male_hot["game"] == 4.0  # two clicks at weight 2
        assert female_hot == {"recipe": 2.0}


class TestPruningInTopology:
    def make_clustered_actions(self):
        actions = []
        t = 0.0
        for n in range(40):
            for item in ("A", "B", "C"):
                actions.append(UserAction(f"a{n}", item, "click", t))
                t += 1.0
            for item in ("X", "Y", "Z"):
                actions.append(UserAction(f"x{n}", item, "click", t))
                t += 1.0
            if n % 3 == 0:
                actions.append(UserAction(f"a{n}", "X", "browse", t))
                t += 1.0
        return actions

    def test_pruned_pairs_recorded_and_skipped(self, clock, client_factory):
        actions = self.make_clustered_actions()
        config = CFTopologyConfig(linked_time=BIG, k=2, pruning_delta=0.05)
        cluster, __ = run_topology(actions, clock, client_factory, config)
        client = client_factory()
        pruned_of_x = client.get(StateKeys.pruned("X"), None) or set()
        assert pruned_of_x & {"A", "B", "C"}
        # strong in-cluster pairs survive in the lists
        sim_list_a = client.get(StateKeys.sim_list("A"), None) or {}
        assert set(sim_list_a) <= {"B", "C"}


class TestCombinerInTopology:
    def test_combiner_reduces_writes_same_final_counts(self, clock):
        from repro.tdstore import TDStoreCluster
        from repro.utils.clock import SimClock

        actions = [
            UserAction(f"u{n}", "hot-item", "click", float(n)) for n in range(50)
        ]

        def run(use_combiner):
            local_clock = SimClock()
            store = TDStoreCluster(num_data_servers=2, num_instances=8)
            topo = build_cf_topology(
                "cf",
                list(actions),
                local_clock,
                store.client,
                CFTopologyConfig(linked_time=BIG, use_combiner=use_combiner,
                                 parallelism=1),
            )
            cluster = LocalCluster(clock=local_clock, tick_interval=10.0)
            cluster.submit(topo)
            cluster.run_until_idle()
            count = store.client().get(StateKeys.item_count("hot-item"), 0.0)
            writes = sum(store.write_stats().values())
            return count, writes

        exact_count, exact_writes = run(use_combiner=False)
        combined_count, combined_writes = run(use_combiner=True)
        assert combined_count == exact_count == 100.0  # 50 clicks x weight 2
        assert combined_writes < exact_writes
