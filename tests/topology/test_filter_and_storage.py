"""Tests for the storage-layer units: FilterBolt and ResultStorageBolt."""

from repro.storm import (
    FieldsGrouping,
    GlobalGrouping,
    LocalCluster,
    ShuffleGrouping,
    TopologyBuilder,
)
from repro.storm.component import FunctionBolt, Spout
from repro.topology import FilterBolt, ResultStorageBolt, StateKeys


class RowSpout(Spout):
    """Emits (item, price) rows."""

    def __init__(self, rows):
        self._rows = list(rows)
        self._cursor = 0

    def declare_outputs(self, declarer):
        declarer.declare(("item", "price"), "rows")

    def next_tuple(self):
        if self._cursor >= len(self._rows):
            return False
        self.collector.emit(self._rows[self._cursor], stream_id="rows")
        self._cursor += 1
        return True


class TestFilterBolt:
    def run_filter(self, rows, predicate):
        builder = TopologyBuilder("filtering")
        builder.add_spout("spout", lambda: RowSpout(rows))
        builder.add_bolt(
            "filter",
            lambda: FilterBolt(predicate, "kept", ("item", "price")),
        ).grouping("spout", ShuffleGrouping(), "rows")
        builder.add_bolt(
            "sink",
            lambda: FunctionBolt(lambda tup, col: None),
        ).grouping("filter", GlobalGrouping(), "kept")
        cluster = LocalCluster()
        metrics = cluster.submit(builder.build())
        cluster.run_until_idle()
        bolt = cluster.task_instance("filtering", "filter", 0)
        return bolt, metrics

    def test_price_range_filter(self):
        rows = [("cheap", 5.0), ("mid", 50.0), ("lux", 500.0)]
        bolt, metrics = self.run_filter(
            rows, lambda row: 10.0 <= row["price"] <= 100.0
        )
        assert bolt.passed == 1
        assert bolt.filtered == 2
        assert metrics.component_executed("sink") == 1

    def test_pass_all(self):
        rows = [("a", 1.0), ("b", 2.0)]
        bolt, __ = self.run_filter(rows, lambda row: True)
        assert bolt.passed == 2


class TestResultStorageBolt:
    def test_results_written_under_result_keys(self, tdstore, client_factory):
        builder = TopologyBuilder("storing")
        builder.add_spout("spout", lambda: RowSpout([("item-1", 9.5)]))
        builder.add_bolt(
            "store",
            lambda: ResultStorageBolt(
                client_factory,
                kind="price",
                key_fields=("item",),
                value_fields=("price",),
            ),
        ).grouping("spout", FieldsGrouping(["item"]), "rows")
        cluster = LocalCluster()
        cluster.submit(builder.build())
        cluster.run_until_idle()
        stored = client_factory().get(StateKeys.result("price", "item-1"))
        assert stored == {"price": 9.5}


class TestFunctionBolt:
    def test_wraps_callable_with_declared_streams(self):
        seen = []

        def double(tup, collector):
            collector.emit((tup["item"], tup["price"] * 2), stream_id="doubled")

        builder = TopologyBuilder("fn")
        builder.add_spout("spout", lambda: RowSpout([("a", 2.0)]))
        builder.add_bolt(
            "double",
            lambda: FunctionBolt(double, [("doubled", ("item", "price"))]),
        ).grouping("spout", ShuffleGrouping(), "rows")
        builder.add_bolt(
            "collect",
            lambda: FunctionBolt(lambda tup, col: seen.append(tup.values)),
        ).grouping("double", GlobalGrouping(), "doubled")
        cluster = LocalCluster()
        cluster.submit(builder.build())
        cluster.run_until_idle()
        assert seen == [("a", 4.0)]
