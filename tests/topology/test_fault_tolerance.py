"""The §3.3 robustness claim, end to end.

"The robustness support of TencentRec is shared by Storm and TDStore.
Storm guarantees the running of programs and TDStore is responsible for
the status data recovery." Killing every worker task mid-stream must
leave the final counts and similarity lists identical to an
uninterrupted run, because all algorithm state lives in TDStore, not in
worker memory.
"""

import numpy as np

from repro.algorithms.itemcf import PracticalItemCF
from repro.storm import LocalCluster
from repro.tdstore import TDStoreCluster
from repro.topology import StateKeys
from repro.topology.framework import CFTopologyConfig, build_cf_topology
from repro.types import UserAction
from repro.utils.clock import SimClock

BIG = 10**12


def random_actions(seed=13, n_users=12, n_items=10, n_events=200):
    rng = np.random.default_rng(seed)
    kinds = ["browse", "click", "purchase"]
    return [
        UserAction(
            f"u{rng.integers(n_users)}",
            f"i{rng.integers(n_items)}",
            kinds[rng.integers(len(kinds))],
            float(index),
        )
        for index in range(n_events)
    ]


def run_with_kills(actions, kill_after=None):
    clock = SimClock()
    store = TDStoreCluster(num_data_servers=3, num_instances=16)
    topo = build_cf_topology(
        "cf", actions, clock, store.client,
        CFTopologyConfig(linked_time=BIG, parallelism=2),
    )
    cluster = LocalCluster(clock=clock)
    cluster.submit(topo)
    if kill_after is not None:
        for __ in range(kill_after):
            if not cluster.step():
                break
        for component in ("userHistory", "itemCount", "pairCount", "simList"):
            for index in range(2):
                cluster.kill_task("cf", component, index)
    cluster.run_until_idle()
    return store, cluster


class TestWorkerCrashRecovery:
    def test_final_state_identical_after_mass_task_kill(self):
        actions = random_actions()
        baseline_store, __ = run_with_kills(list(actions), kill_after=None)
        crashed_store, cluster = run_with_kills(list(actions), kill_after=80)
        assert cluster.metrics("cf").task_restarts == 8
        baseline = baseline_store.client()
        crashed = crashed_store.client()
        for item_n in range(10):
            item = f"i{item_n}"
            assert crashed.get(
                StateKeys.item_count(item), 0.0
            ) == baseline.get(StateKeys.item_count(item), 0.0)
            assert crashed.get(StateKeys.sim_list(item), {}) == baseline.get(
                StateKeys.sim_list(item), {}
            )

    def test_crashed_run_matches_reference_algorithm(self):
        actions = random_actions(seed=17)
        store, __ = run_with_kills(list(actions), kill_after=50)
        reference = PracticalItemCF(linked_time=BIG)
        reference.observe_many(actions)
        client = store.client()
        for item in reference.table.known_items():
            assert client.get(StateKeys.item_count(item), 0.0) == (
                reference.table.item_count(item)
            )

    def test_tdstore_server_crash_during_processing(self):
        """A TDStore data server dies mid-stream: failover is transparent
        to the topology and no count is lost."""
        actions = random_actions(seed=19)
        clock = SimClock()
        store = TDStoreCluster(num_data_servers=4, num_instances=16)
        topo = build_cf_topology(
            "cf", actions, clock, store.client,
            CFTopologyConfig(linked_time=BIG, parallelism=2),
        )
        cluster = LocalCluster(clock=clock)
        cluster.submit(topo)
        for __ in range(60):
            cluster.step()
        store.crash_data_server(0)
        cluster.run_until_idle()
        reference = PracticalItemCF(linked_time=BIG)
        reference.observe_many(actions)
        client = store.client()
        for item in reference.table.known_items():
            assert client.get(StateKeys.item_count(item), 0.0) == (
                reference.table.item_count(item)
            )
