"""Tests for the clock, hashing and RNG utilities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.utils import SeedSequenceFactory, SimClock, partition_for_key, stable_hash
from repro.utils.clock import SECONDS_PER_DAY


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now() == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(5.0)
        clock.advance(2.5)
        assert clock.now() == 7.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ConfigurationError):
            SimClock().advance(-1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            SimClock(start=-5.0)

    def test_advance_to_never_goes_backwards(self):
        clock = SimClock(start=100.0)
        clock.advance_to(50.0)
        assert clock.now() == 100.0
        clock.advance_to(150.0)
        assert clock.now() == 150.0

    def test_day_and_hour(self):
        clock = SimClock(start=SECONDS_PER_DAY * 2 + 3600 * 6)
        assert clock.day() == 2
        assert clock.hour_of_day() == pytest.approx(6.0)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(("u1", "i1")) == stable_hash(("u1", "i1"))

    def test_distinct_keys_differ(self):
        values = {stable_hash(f"key-{i}") for i in range(1000)}
        assert len(values) == 1000

    @given(st.integers(min_value=1, max_value=64), st.text())
    def test_partition_always_in_range(self, n, key):
        assert 0 <= partition_for_key(key, n) < n

    def test_zero_partitions_rejected(self):
        with pytest.raises(ConfigurationError):
            partition_for_key("k", 0)


class TestSeedSequenceFactory:
    def test_same_name_same_stream(self):
        f = SeedSequenceFactory(42)
        a = f.generator("users").integers(0, 1000, size=10)
        b = SeedSequenceFactory(42).generator("users").integers(0, 1000, size=10)
        assert list(a) == list(b)

    def test_different_names_independent(self):
        f = SeedSequenceFactory(42)
        a = f.generator("users").integers(0, 1000, size=10)
        b = f.generator("items").integers(0, 1000, size=10)
        assert list(a) != list(b)

    def test_request_order_does_not_matter(self):
        f1 = SeedSequenceFactory(7)
        __ = f1.generator("first")
        late = f1.generator("second").integers(0, 10**6, size=5)
        f2 = SeedSequenceFactory(7)
        early = f2.generator("second").integers(0, 10**6, size=5)
        assert list(late) == list(early)

    def test_spawn_namespacing(self):
        f = SeedSequenceFactory(7)
        child_a = f.spawn("news").generator("clicks").integers(0, 10**6, size=5)
        child_b = f.spawn("video").generator("clicks").integers(0, 10**6, size=5)
        assert list(child_a) != list(child_b)
