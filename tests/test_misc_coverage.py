"""Cross-cutting coverage for smaller public APIs."""

import pytest

from repro import PracticalItemCF, UserAction
from repro.monitoring import SystemSnapshot
from repro.storm import LocalCluster, topology_from_xml
from repro.tdaccess import TDAccessCluster
from repro.utils.clock import SimClock

from tests.storm.helpers import CollectBolt, ListSpout


class TestConsumerSeek:
    def test_seek_rewinds_partition(self):
        cluster = TDAccessCluster(SimClock(), num_data_servers=2)
        cluster.create_topic("t", 1)
        cluster.producer().send_batch("t", [1, 2, 3])
        consumer = cluster.consumer("t")
        consumer.drain()
        consumer.seek(0, 1)
        assert [m.value for m in consumer.drain()] == [2, 3]

    def test_seek_unowned_partition_rejected(self):
        from repro.errors import ConsumerGroupError

        cluster = TDAccessCluster(SimClock(), num_data_servers=2)
        cluster.create_topic("t", 2)
        consumer = cluster.consumer("t", partitions=[0])
        with pytest.raises(ConsumerGroupError):
            consumer.seek(1, 0)


class TestXmlVariants:
    def test_all_grouping_and_direct_bolt_elements(self):
        xml = """
        <topology name="broadcast">
          <spout name="spout" class="Spout"/>
          <bolt name="fan" class="Collect" parallelism="3">
            <grouping type="all">
              <stream_id>words</stream_id>
            </grouping>
          </bolt>
        </topology>
        """
        registry = {
            "Spout": lambda: ListSpout([("x",), ("y",)], ("word",), "words"),
            "Collect": CollectBolt,
        }
        topo = topology_from_xml(xml, registry)
        cluster = LocalCluster()
        cluster.submit(topo)
        cluster.run_until_idle()
        for index in range(3):
            bolt = cluster.task_instance("broadcast", "fan", index)
            assert bolt.seen == [("x",), ("y",)]  # replicated to all tasks


class TestPracticalCFAccessors:
    def test_observe_many_and_accessors(self):
        cf = PracticalItemCF(linked_time=10**9)
        cf.observe_many(
            [
                UserAction("u", "A", "browse", 0.0),
                UserAction("u", "A", "purchase", 1.0),
                UserAction("u", "B", "click", 2.0),
            ]
        )
        assert cf.rating("u", "A") == 5.0
        assert cf.rating("u", "missing") == 0.0
        assert cf.user_history("u") == {"A": 5.0, "B": 2.0}
        assert cf.user_history("ghost") == {}


class TestSnapshotMath:
    def test_read_imbalance_even(self):
        snap = SystemSnapshot(0.0, tdstore_reads={0: 10, 1: 10, 2: 10})
        assert snap.read_imbalance() == pytest.approx(1.0)

    def test_read_imbalance_skewed(self):
        snap = SystemSnapshot(0.0, tdstore_reads={0: 30, 1: 0, 2: 0})
        assert snap.read_imbalance() == pytest.approx(3.0)

    def test_read_imbalance_empty(self):
        assert SystemSnapshot(0.0).read_imbalance() == 1.0
