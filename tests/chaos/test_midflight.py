"""The headline, sharpened: the full process-native schedule re-keyed to
fire *mid-wave* — no quiescent points — plus injected silent corruption.

The barrier-keyed suite (test_process_native) fires faults when every
queue is drained; real failures do not wait for that. Here the same
8-fault schedule is re-keyed onto tuple-count triggers so every SIGKILL,
partition, and frame fault lands while tuple trees are open and the WAL
group-committer holds dirty records — and the stream additionally
carries silent corruption: two poisoned WAL records on the data-plane
host (detected by CRC scan at its next respawn, quarantined, re-seeded
from the replica) and two corrupted RPC response frames (detected by
frame checksum, absorbed by client reconnect + idempotent retry).

Invariants, proven while online probes run concurrently with execution:

- byte-identical convergence against the fault-free simulator reference,
- zero lost keys, 100% front-end serve rate,
- every injected corruption detected (``detected == injected``), none
  ever served,
- no route-epoch regression, no ledger watermark violation, mid-flight,
- a final anti-entropy scrub pass over every host/slave pair is clean.

The same mid-flight plan on the simulator skips every process-native
fault and still converges — non-quiescent plans stay substrate-portable.
"""

import pytest

from repro.recovery import Fault
from repro.runtime import ProcessSubstrate, SimSubstrate
from repro.runtime.chaos import (
    ChaosOrchestrator,
    MidFlightScheduler,
    MidFlightTrigger,
    OnlineInvariantMonitor,
    rekey_plan_midflight,
)

from tests.chaos.helpers import (
    fingerprint,
    make_harness,
    make_serve_probe,
)
from tests.chaos.test_process_native import HOSTS, PLAN, WORKERS

# the fault-free run executes ~31-66 tuples per barrier round (389
# total over 11 rounds); 30 spreads the 8 barrier rounds across the
# live stream so every re-keyed trigger fires mid-wave, none at flush
TUPLES_PER_ROUND = 30

# silent corruption riding the same stream. Host 1 is the data-plane
# host (host 0 carries the control plane, whose WAL corruption is
# unrecoverable by design); both WAL corruptions land *before* host 1's
# mid-flight SIGKILL (trigger ~60-90 tuples) so the respawn's CRC scan
# is what detects them, and both frame corruptions land *after* the
# last SIGKILL (~210-240 tuples) so no kill wipes the injection or
# detection tallies before the report reconciles them.
CORRUPTION_ENTRIES = [
    (MidFlightTrigger("wal_records", 10), Fault(2, "bit_flip", (1,))),
    (MidFlightTrigger("tuples", 35), Fault(2, "wal_corrupt", (1,))),
    (MidFlightTrigger("tuples", 300), Fault(9, "frame_corrupt", (0, 1))),
    (MidFlightTrigger("tuples", 302), Fault(9, "frame_corrupt", (1, 1))),
]


def midflight_entries():
    return rekey_plan_midflight(PLAN, TUPLES_PER_ROUND, seed=11) + list(
        CORRUPTION_ENTRIES
    )


def process_substrate():
    return ProcessSubstrate(worker_procs=WORKERS, server_procs=HOSTS)


class TestMidFlightChaos:
    def test_full_schedule_midwave_with_corruption_converges(
        self, payloads, reference
    ):
        want_recs, want_state, ref_now = reference
        entries = midflight_entries()
        with process_substrate() as substrate:
            harness = make_harness(substrate, payloads, start=False)
            scheduler = MidFlightScheduler(entries)
            monitor = OnlineInvariantMonitor(harness)
            orchestrator = ChaosOrchestrator(
                harness,
                [],  # every fault arrives mid-flight, none at barriers
                serve_probe=make_serve_probe(harness),
                scheduler=scheduler,
                monitor=monitor,
            )
            assert orchestrator.run() == "completed"

            # every fault fired natively, every one of them mid-wave
            assert harness.injector.skipped == []
            assert scheduler.fired_midflight != []
            assert len(scheduler.fired_midflight) == len(entries)
            assert scheduler.flushed == []

            runtime = substrate.chaos_runtime()
            assert runtime.kills["host_sigkill"] == 2
            assert runtime.kills["worker_sigkill"] == 1
            assert runtime.disk_faults == {
                "fsync_error": 1, "bit_flip": 1, "wal_corrupt": 1,
            }
            # both poisoned records were caught by one CRC scan at host
            # 1's respawn; the quarantined log never fed replay
            assert substrate.wal_corruptions_detected == 2
            # host kills + fsync fail-stop; silent corruption adds no
            # sample — nothing stops until the scan catches it
            assert len(runtime.mttr_samples) == 3

            got = fingerprint(harness, ref_now)
            report = orchestrator.report(
                fingerprint=got, reference=(want_recs, want_state)
            )
            # anti-entropy closes the loop. The first pass may repair
            # one residue of the fsync fail-stop: the poisoned probe
            # write was never acked, but its record hit the file before
            # the failed fsync, so replay legitimately restored it on
            # the host while the slave never saw it. No *corruption* —
            # and the loop converges: the next pass is clean.
            scrub = harness.tdstore.scrub_replicas()
            assert scrub["corruptions_detected"] == 0
            assert scrub["divergent_buckets"] <= 1
            assert scrub["skipped_down"] == 0
            assert harness.tdstore.scrub_replicas()["clean"] is True

        # convergence: byte-identical to the fault-free reference
        assert got == (want_recs, want_state)
        assert report.fingerprint_match
        assert report.lost_keys == 0
        # served through the whole storm, every probe answered
        assert report.serve_attempts > 0
        assert report.serve_rate == 1.0
        # every corruption detected before anything served from it
        assert report.corruptions_injected == 4
        assert report.corruptions_detected == report.corruptions_injected
        # invariants held *while* the faults were landing
        assert report.online_probes > 0
        assert report.invariant_violations == []
        assert report.midflight_fired == len(entries)
        assert report.flushed_faults == 0
        as_dict = report.to_dict()
        assert as_dict["corruptions_detected"] == 4
        assert as_dict["midflight_fired"] == len(entries)
        assert as_dict["invariant_violations"] == []

    def test_same_plan_on_simulator_skips_native_faults(
        self, payloads, reference
    ):
        want_recs, want_state, ref_now = reference
        entries = midflight_entries()
        harness = make_harness(SimSubstrate(), payloads, start=False)
        scheduler = MidFlightScheduler(entries)
        monitor = OnlineInvariantMonitor(harness)
        orchestrator = ChaosOrchestrator(
            harness, [], scheduler=scheduler, monitor=monitor
        )
        assert orchestrator.run() == "completed"
        # triggers all crossed (remote counters degrade to tuples), the
        # process-native kinds were recorded skipped, nothing fired
        assert len(scheduler.fired_midflight) == len(entries)
        skipped = {f.kind for f in harness.injector.skipped}
        assert skipped == {
            "one_way_partition", "host_sigkill", "conn_reset",
            "frame_delay", "worker_sigkill", "frame_drop", "fsync_error",
            "bit_flip", "wal_corrupt", "frame_corrupt",
        }
        got = fingerprint(harness, ref_now)
        assert got == (want_recs, want_state)
        report = orchestrator.report(
            fingerprint=got, reference=(want_recs, want_state)
        )
        assert report.lost_keys == 0
        assert report.corruptions_injected == 0
        assert report.corruptions_detected == 0
        assert report.invariant_violations == []
