"""Shared plumbing for the cross-substrate chaos acceptance suites.

Every suite here runs the same CF topology over the same deterministic
action stream on both substrates and compares final-state fingerprints
— ``(recommendations_bytes, state_digest)`` — against a fault-free
simulator reference. Recommendations are always evaluated at the
*reference* clock: simulated latency faults charge seconds to the sim
clock while the process substrate stalls in real time, so the chaos
run's own clock is not comparable.
"""

from __future__ import annotations

import pytest

from repro.engine import RecommenderEngine
from repro.engine.front_end import RecommenderFrontEnd
from repro.recovery import RecoveryHarness
from repro.runtime import ProcessSubstrate, SimSubstrate, topology_recipe

from tests.recovery.helpers import (
    ITEMS,
    TOPIC,
    USERS,
    make_payloads as make_payloads,  # re-exported for suites and benches
    make_tdaccess,
    recommendations_bytes,
    state_digest,
)

N_MESSAGES = 48
BATCH = 4

SUBSTRATES = [
    pytest.param(SimSubstrate, id="sim"),
    pytest.param(
        lambda: ProcessSubstrate(worker_procs=2, server_procs=1),
        id="process",
    ),
]

# the process-native suite needs >= 2 hosts so network partitions and
# host kills hit a data-plane host while host 0 keeps the control plane
MULTI_HOST = pytest.param(
    lambda: ProcessSubstrate(worker_procs=2, server_procs=2),
    id="process-2hosts",
)


def make_harness(substrate, payloads, plan=None, *, start=True, **kwargs):
    defaults = dict(tick_interval=240.0, checkpoint_every_rounds=2)
    defaults.update(kwargs)
    harness = RecoveryHarness(
        make_tdaccess(payloads),
        TOPIC,
        topology_recipe(
            "tests.recovery.helpers", "cf_topology_factory", batch_size=BATCH
        ),
        substrate=substrate,
        **defaults,
    )
    if start:
        harness.start(fault_plan=plan)
    return harness


def fingerprint(harness, now):
    return (
        recommendations_bytes(harness.client(), now),
        state_digest(harness.client()),
    )


def finish(harness, now=None):
    assert harness.run() == "completed"
    return fingerprint(
        harness, harness.clock.now() if now is None else now
    )


def make_serve_probe(harness):
    """A barrier-time front-end probe: query every user through the
    degradation ladder; any rung counts as answered."""

    def probe():
        front_end = RecommenderFrontEnd(
            RecommenderEngine(harness.client()), static_items=list(ITEMS)
        )
        answered = sum(
            1
            for user in USERS
            if front_end.query(user, 5, harness.clock.now())
        )
        return len(USERS), answered

    return probe
