import pytest

from repro.runtime import SimSubstrate

from tests.chaos.helpers import (
    N_MESSAGES,
    fingerprint,
    make_harness,
)
from tests.recovery.helpers import make_payloads


@pytest.fixture(scope="package")
def payloads():
    return make_payloads(N_MESSAGES)


@pytest.fixture(scope="package")
def reference(payloads):
    """Fault-free simulator run: ``(recs_bytes, state_digest, now)``.

    The byte-identity baseline every chaos run on every substrate is
    held to; fingerprints are evaluated at this run's final clock.
    """
    harness = make_harness(SimSubstrate(), payloads)
    assert harness.run() == "completed"
    now = harness.clock.now()
    recs, state = fingerprint(harness, now)
    return recs, state, now
