"""Cross-substrate chaos acceptance for the retrieval subsystem.

The CF + embedding/VQ topology runs the same deterministic stream on
both substrates under duplicate deliveries and mid-tree worker kills,
and every retrieval key — centroid vectors, counts, posting lists,
assignments, embedding rows, stat counters — must land byte-identical
to a fault-free simulator reference. ``index_integrity`` doubles as the
zero-lost-keys check: a dropped posting entry, orphaned assignment, or
count drift all surface as problems.
"""

import pytest

from repro.recovery import Fault, RecoveryHarness
from repro.retrieval.vq import index_integrity
from repro.runtime import SimSubstrate, topology_recipe

from tests.chaos.helpers import BATCH, SUBSTRATES
from tests.recovery.helpers import (
    ITEMS,
    TOPIC,
    make_tdaccess,
    recommendations_bytes,
)
from tests.retrieval.helpers import vq_digest


def make_retrieval_harness(substrate, payloads, plan=None, *, start=True):
    harness = RecoveryHarness(
        make_tdaccess(payloads),
        TOPIC,
        topology_recipe(
            "tests.retrieval.helpers",
            "retrieval_topology_factory",
            batch_size=BATCH,
        ),
        substrate=substrate,
        tick_interval=240.0,
        checkpoint_every_rounds=2,
    )
    if start:
        harness.start(fault_plan=plan)
    return harness


@pytest.fixture(scope="module")
def retrieval_reference(payloads):
    """Fault-free sim run: ``(recs_bytes, vq_bytes, now)``.

    Also pins that the scenario is non-trivial — the stream must drive
    actual index restructuring or the convergence claim is hollow.
    """
    harness = make_retrieval_harness(SimSubstrate(), payloads)
    assert harness.run() == "completed"
    client = harness.client()
    report = index_integrity(client, ITEMS)
    assert report["problems"] == []
    assert report["assigned_items"] > 0
    now = harness.clock.now()
    return recommendations_bytes(client, now), vq_digest(client), now


@pytest.mark.parametrize("make_substrate", SUBSTRATES)
class TestRetrievalChaosXSub:
    def test_duplicates_and_update_kill_converge(
        self, make_substrate, payloads, retrieval_reference
    ):
        want_recs, want_vq, ref_now = retrieval_reference
        plan = [
            Fault(2, "duplicate_delivery", ("source", 2 * BATCH)),
            Fault(3, "worker_kill_midtree", ("embUpdate", 0, 3, 2 * BATCH)),
            Fault(4, "duplicate_delivery", ("source", 2 * BATCH)),
        ]
        with make_substrate() as substrate:
            harness = make_retrieval_harness(substrate, payloads, plan)
            assert harness.run() == "completed"
            assert harness.injector.midtree_fired == 1
            stats = harness.cluster.exactly_once_stats(harness.topology_name)
            assert sum(s["dedup_hits"] for s in stats.values()) > 0
            assert all(s["within_bound"] for s in stats.values())
            client = harness.client()
            got_vq = vq_digest(client)
            got_recs = recommendations_bytes(client, ref_now)
            report = index_integrity(client, ITEMS)
        assert report["problems"] == []  # zero lost keys
        assert got_vq == want_vq  # byte-identical centroids and postings
        assert got_recs == want_recs  # CF riding along stays exact too

    def test_assign_writer_kill_converges(
        self, make_substrate, payloads, retrieval_reference
    ):
        # the single-writer dies mid-op: replay must re-execute the
        # multi-key VQ update over its own partial writes and land on
        # the same verdicts (the protocol vq.py documents)
        want_recs, want_vq, ref_now = retrieval_reference
        plan = [
            Fault(2, "worker_kill_midtree", ("vqAssign", 0, 3, 2 * BATCH)),
            Fault(4, "duplicate_delivery", ("source", 3 * BATCH)),
        ]
        with make_substrate() as substrate:
            harness = make_retrieval_harness(substrate, payloads, plan)
            assert harness.run() == "completed"
            stats = harness.cluster.exactly_once_stats(harness.topology_name)
            assert all(s["within_bound"] for s in stats.values())
            client = harness.client()
            got_vq = vq_digest(client)
            got_recs = recommendations_bytes(client, ref_now)
            report = index_integrity(client, ITEMS)
        assert report["problems"] == []
        assert got_vq == want_vq
        assert got_recs == want_recs
