"""Cross-substrate port of the replay-chaos (exactly-once) suite.

The seeded gauntlet — duplicate deliveries, mid-tree kills with source
rewinds, task kills, a TDStore crash/recovery — must leave counters
byte-exact on both substrates, with every dedup ledger inside its
watermark bound throughout.
"""

import pytest

from repro.recovery import Fault, seeded_plan

from tests.chaos.helpers import BATCH, SUBSTRATES, fingerprint, make_harness


@pytest.mark.parametrize("make_substrate", SUBSTRATES)
class TestReplayChaosXSub:
    def test_duplicates_and_midtree_kill_stay_exact(
        self, make_substrate, payloads, reference
    ):
        want_recs, want_state, ref_now = reference
        plan = [
            Fault(2, "duplicate_delivery", ("source", 2 * BATCH)),
            Fault(3, "worker_kill_midtree", ("userHistory", 0, 3, 2 * BATCH)),
            Fault(4, "duplicate_delivery", ("source", 3 * BATCH)),
        ]
        with make_substrate() as substrate:
            harness = make_harness(substrate, payloads, plan)
            assert harness.run() == "completed"
            assert harness.injector.rewinds >= 3
            assert harness.injector.midtree_fired == 1
            stats = harness.cluster.exactly_once_stats(harness.topology_name)
            assert sum(s["dedup_hits"] for s in stats.values()) > 0
            assert all(s["within_bound"] for s in stats.values())
            got_recs, got_state = fingerprint(harness, ref_now)
        assert got_state == want_state
        assert got_recs == want_recs

    def test_seeded_gauntlet_stays_exact(
        self, make_substrate, payloads, reference
    ):
        want_recs, want_state, ref_now = reference
        plan = seeded_plan(
            11,
            horizon=8,
            kill_components=[("userHistory", 2), ("itemCount", 2)],
            task_kills=1,
            tdstore_crashes=1,
            process_crashes=0,
            duplicate_deliveries=2,
            midtree_kills=1,
            rewind_depth=2 * BATCH,
        )
        with make_substrate() as substrate:
            harness = make_harness(substrate, payloads, plan)
            harness.run_to_completion()
            kinds = {f.kind for f in harness.injector.injected}
            assert "duplicate_delivery" in kinds
            stats = harness.cluster.exactly_once_stats(harness.topology_name)
            assert all(s["within_bound"] for s in stats.values())
            got_recs, got_state = fingerprint(harness, ref_now)
        assert got_state == want_state
        assert got_recs == want_recs
