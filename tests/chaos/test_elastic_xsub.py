"""Cross-substrate port of the elastic expansion-under-chaos suite.

A TDStore pool expanding 3 -> 5 with live instance migrations at a
barrier, while duplicate deliveries and a mid-tree worker kill fire,
must be byte-invisible in the final state on both substrates.
"""

import pytest

from repro.elastic import InstanceMigrator
from repro.recovery import Fault

from tests.chaos.helpers import BATCH, SUBSTRATES, fingerprint, make_harness

SERVERS_BEFORE = 3
SERVERS_AFTER = 5

CHAOS_PLAN = [
    Fault(2, "duplicate_delivery", ("source", 2 * BATCH)),
    Fault(3, "worker_kill_midtree", ("userHistory", 0, 3, 2 * BATCH)),
]


def attach_expansion_script(harness, log):
    migrator = InstanceMigrator(harness.tdstore, clock_now=harness.clock.now)

    def script(barrier_round):
        if barrier_round == 2 and "expanded" not in log:
            log["expanded"] = True
            harness.tdstore.add_data_server()
            harness.tdstore.add_data_server()
            log["moves"] = len(migrator.rebalance())

    harness.cluster.add_barrier_hook(script)


@pytest.mark.parametrize("make_substrate", SUBSTRATES)
class TestElasticChaosXSub:
    def test_expansion_under_chaos_is_byte_identical(
        self, make_substrate, payloads, reference
    ):
        want_recs, want_state, ref_now = reference
        with make_substrate() as substrate:
            harness = make_harness(
                substrate,
                payloads,
                CHAOS_PLAN,
                num_tdstore_servers=SERVERS_BEFORE,
                num_tdstore_instances=16,
            )
            log = {}
            attach_expansion_script(harness, log)
            assert harness.run() == "completed"

            assert log.get("expanded")
            assert log["moves"] > 0
            assert len(harness.tdstore.data_servers) == SERVERS_AFTER
            assert harness.injector.rewinds >= 2
            assert harness.injector.midtree_fired == 1
            stats = harness.tdstore.migration_stats()
            assert stats["in_flight"] == []
            assert stats["completed"] >= log["moves"]
            got_recs, got_state = fingerprint(harness, ref_now)
        assert got_state == want_state
        assert got_recs == want_recs
