"""The headline: real fault injection on real processes, converging.

A seeded schedule of process-native faults — ``kill -9`` of a TDStore
server host (WAL replay on respawn), a mid-drain worker SIGKILL with a
source rewind, one-way network partitions, connection resets, dropped
and delayed response frames, and a poisoned WAL ``fsync`` (fail-stop +
replay) — driven at progress barriers by the orchestrator while a front
end probes every user. The invariants:

- zero lost keys,
- 100% front-end serve rate through the whole degradation ladder,
- final fingerprint byte-identical to (i) the fault-free simulator
  reference and (ii) a fault-free process run,
- MTTR samples recorded for every kill.

The same plan fed to the simulator must *skip* every process-native
fault (recorded, not fired) and still converge — chaos plans are
substrate-portable by construction.
"""

import pytest

from repro.recovery import Fault
from repro.runtime import ProcessSubstrate, SimSubstrate
from repro.runtime.chaos import ChaosOrchestrator, seeded_process_plan

from tests.chaos.helpers import (
    BATCH,
    fingerprint,
    make_harness,
    make_serve_probe,
)

WORKERS = 2
HOSTS = 2

# every process-native kind once, barrier-keyed; network windows stay
# narrow enough for the transport-retry budget to absorb
PLAN = [
    Fault(2, "one_way_partition", (1, "outbound", 1)),
    Fault(3, "host_sigkill", (1,)),
    Fault(4, "conn_reset", (0, 1)),
    Fault(4, "frame_delay", (1, 2, 0.02)),
    Fault(5, "worker_sigkill", (0, 3, 2 * BATCH)),
    Fault(6, "frame_drop", (0, 1)),
    Fault(7, "fsync_error", (1,)),
    Fault(8, "host_sigkill", (0,)),
]


def process_substrate():
    return ProcessSubstrate(worker_procs=WORKERS, server_procs=HOSTS)


@pytest.fixture(scope="module")
def process_reference(payloads, reference):
    """Fault-free process run — and the cross-substrate baseline proof:
    it is already byte-identical to the simulator reference."""
    want_recs, want_state, ref_now = reference
    with process_substrate() as substrate:
        harness = make_harness(substrate, payloads)
        assert harness.run() == "completed"
        got = fingerprint(harness, ref_now)
    assert got == (want_recs, want_state)
    return got


class TestProcessNativeChaos:
    def test_full_schedule_converges_with_mttr(
        self, payloads, reference, process_reference
    ):
        want_recs, want_state, ref_now = reference
        with process_substrate() as substrate:
            harness = make_harness(substrate, payloads, start=False)
            orchestrator = ChaosOrchestrator(
                harness, PLAN, serve_probe=make_serve_probe(harness)
            )
            assert orchestrator.run() == "completed"

            runtime = substrate.chaos_runtime()
            # every fault fired natively — nothing was skipped
            assert harness.injector.skipped == []
            assert runtime.kills["host_sigkill"] == 2
            assert runtime.kills["worker_sigkill"] == 1
            assert harness.injector.sigkills_fired == 1
            assert harness.injector.rewinds >= 1
            assert runtime.disk_faults == {"fsync_error": 1}
            assert runtime.network_faults["partition_outbound"] >= 1
            assert runtime.network_faults["conn_reset"] == 1
            assert runtime.network_faults["frame_drop"] == 1
            # MTTR: one sample per host kill + one per disk fail-stop
            assert len(runtime.mttr_samples) == 3
            assert all(s.seconds > 0 for s in runtime.mttr_samples)
            # the killed hosts really died and really came back
            supervisor = substrate.supervisor
            assert supervisor.respawns >= 3

            got_recs, got_state = fingerprint(harness, ref_now)
            report = orchestrator.report(
                fingerprint=(got_recs, got_state),
                reference=(want_recs, want_state),
            )
        assert report.lost_keys == 0
        assert report.serve_attempts > 0
        assert report.serve_rate == 1.0
        assert report.fingerprint_match
        assert report.mttr_count == 3
        assert report.mttr_p50 is not None and report.mttr_p50 > 0
        assert report.mttr_p99 is not None and report.mttr_p99 >= report.mttr_p50
        # byte-identity against both baselines
        assert (got_recs, got_state) == (want_recs, want_state)
        assert (got_recs, got_state) == process_reference
        # report round-trips to JSON-shaped dict
        as_dict = report.to_dict()
        assert as_dict["serve_rate"] == 1.0
        assert as_dict["mttr"]["p99"] == report.mttr_p99

    def test_same_plan_on_simulator_skips_native_faults(
        self, payloads, reference
    ):
        want_recs, want_state, ref_now = reference
        harness = make_harness(SimSubstrate(), payloads, PLAN)
        assert harness.run() == "completed"
        skipped = {f.kind for f in harness.injector.skipped}
        assert skipped == {
            "one_way_partition", "host_sigkill", "conn_reset",
            "frame_delay", "worker_sigkill", "frame_drop", "fsync_error",
        }
        got_recs, got_state = fingerprint(harness, ref_now)
        assert got_state == want_state
        assert got_recs == want_recs

    def test_seeded_plan_reports_invariants(self, payloads, reference):
        want_recs, want_state, ref_now = reference
        plan = seeded_process_plan(
            2015,
            horizon=10,
            hosts=HOSTS,
            workers=WORKERS,
            host_kills=1,
            worker_kills=1,
            partitions=1,
            conn_resets=1,
            frame_drops=1,
            frame_delays=1,
            sigkill_after=3,
            rewind_depth=2 * BATCH,
        )
        with process_substrate() as substrate:
            harness = make_harness(substrate, payloads, start=False)
            orchestrator = ChaosOrchestrator(
                harness, plan, serve_probe=make_serve_probe(harness)
            )
            assert orchestrator.run() == "completed"
            runtime = substrate.chaos_runtime()
            assert sum(runtime.kills.values()) >= 2
            got = fingerprint(harness, ref_now)
            report = orchestrator.report(
                fingerprint=got, reference=(want_recs, want_state)
            )
        assert report.lost_keys == 0
        assert report.serve_rate == 1.0
        assert report.fingerprint_match
        assert report.skipped_faults == 0
