"""Cross-substrate port of the resilience/overload acceptance suite.

A degradation ladder — a latency spike (simulated charge on the sim
substrate, *real* bounded server-side delay on processes), a brownout,
and a data-server crash with recovery — while a front end probes every
user at every barrier. Invariants: 100% serve rate on some rung, and a
final fingerprint byte-identical to the fault-free reference.
"""

import pytest

from repro.recovery import Fault
from repro.runtime.chaos import ChaosOrchestrator

from tests.chaos.helpers import (
    SUBSTRATES,
    fingerprint,
    make_harness,
    make_serve_probe,
)

SPIKE = 0.03

PLAN = [
    Fault(2, "latency_spike", ("tdstore", 0, SPIKE)),
    Fault(3, "brownout", ("tdstore", 1)),
    Fault(4, "crash_tdstore", (2,)),
    Fault(5, "recover_tdstore", (2,)),
    Fault(5, "clear_degradation", ("tdstore", 0)),
    Fault(5, "clear_degradation", ("tdstore", 1)),
]


@pytest.mark.parametrize("make_substrate", SUBSTRATES)
class TestResilienceChaosXSub:
    def test_degradation_ladder_serves_everything(
        self, make_substrate, payloads, reference
    ):
        want_recs, want_state, ref_now = reference
        with make_substrate() as substrate:
            harness = make_harness(
                substrate, payloads, start=False
            )
            orchestrator = ChaosOrchestrator(
                harness, PLAN, serve_probe=make_serve_probe(harness)
            )
            assert orchestrator.run() == "completed"
            # the degradation window really opened and really closed
            assert harness.injector.exhausted
            assert harness.tdstore.degraded_servers() == []
            got_recs, got_state = fingerprint(harness, ref_now)
            report = orchestrator.report(
                fingerprint=(got_recs, got_state),
                reference=(want_recs, want_state),
            )
        # 100% front-end serve rate through the whole ladder
        assert report.serve_attempts > 0
        assert report.serve_rate == 1.0
        # ...and the chaos was invisible in the final state
        assert report.lost_keys == 0
        assert report.fingerprint_match
        assert got_state == want_state
        assert got_recs == want_recs

    def test_latency_spike_is_real_delay_on_process(
        self, make_substrate, payloads
    ):
        """The same latency fault maps to native semantics per substrate:
        advertised seconds on sim, a capped server-side stall on real
        processes — either way the degradation is visible mid-run."""
        seen = {}
        plan = [
            Fault(2, "latency_spike", ("tdstore", 0, SPIKE)),
            Fault(5, "clear_degradation", ("tdstore", 0)),
        ]
        with make_substrate() as substrate:
            harness = make_harness(substrate, payloads, plan)

            def watch(barrier_round):
                if harness.tdstore.degraded_servers():
                    seen["degraded"] = True

            harness.cluster.add_barrier_hook(watch)
            assert harness.run() == "completed"
            assert seen.get("degraded")
            assert harness.tdstore.degraded_servers() == []
