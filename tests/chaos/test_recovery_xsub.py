"""Cross-substrate port of the crash/recovery acceptance suite.

The same plan — task kills, a TDStore server crash/failover/recovery,
and a full computation-process crash recovered from a checkpoint — runs
unmodified on the simulator and on real processes, and both converge to
the fault-free reference fingerprint.
"""

import pytest

from repro.recovery import Fault

from tests.chaos.helpers import SUBSTRATES, fingerprint, make_harness

PLAN = [
    Fault(1, "kill_task", ("userHistory", 0)),
    Fault(2, "crash_tdstore", (0,)),
    Fault(3, "recover_tdstore", (0,)),
    Fault(4, "crash_process"),
    Fault(5, "kill_task", ("simList", 1)),
]


@pytest.mark.parametrize("make_substrate", SUBSTRATES)
class TestRecoveryChaosXSub:
    def test_crash_recover_finish_matches_reference(
        self, make_substrate, payloads, reference
    ):
        want_recs, want_state, ref_now = reference
        with make_substrate() as substrate:
            harness = make_harness(substrate, payloads, PLAN)
            summary = harness.run_to_completion()
            assert summary["crashes"] == 1
            assert summary["recoveries"] == 1
            fired = {f.kind for f in harness.injector.injected}
            assert fired == {
                "kill_task", "crash_tdstore", "recover_tdstore",
                "crash_process",
            }
            got_recs, got_state = fingerprint(harness, ref_now)
        assert got_state == want_state
        assert got_recs == want_recs

    def test_double_crash_still_converges(
        self, make_substrate, payloads, reference
    ):
        want_recs, want_state, ref_now = reference
        plan = [Fault(3, "crash_process"), Fault(5, "crash_process")]
        with make_substrate() as substrate:
            harness = make_harness(
                substrate, payloads, plan, checkpoint_every_rounds=1
            )
            summary = harness.run_to_completion()
            assert summary["crashes"] == 2
            got_recs, got_state = fingerprint(harness, ref_now)
        assert got_state == want_state
        assert got_recs == want_recs
