"""Tests for the TDStore route table."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RouteError
from repro.tdstore.route_table import InstanceRoute, RouteTable


class TestBalancedTable:
    def test_every_server_hosts_and_backs_up(self):
        table = RouteTable.balanced(12, [0, 1, 2, 3])
        for server in range(4):
            assert table.instances_hosted_by(server)
            assert table.instances_backed_by(server)

    def test_host_and_slave_differ(self):
        table = RouteTable.balanced(16, [0, 1, 2])
        for instance in range(16):
            route = table.route(instance)
            assert route.host != route.slave

    def test_host_load_is_balanced(self):
        table = RouteTable.balanced(12, [0, 1, 2, 3])
        assert sorted(table.host_load().values()) == [3, 3, 3, 3]

    def test_needs_two_servers(self):
        with pytest.raises(RouteError, match="two servers"):
            RouteTable.balanced(4, [0])

    @given(st.text(min_size=1))
    def test_key_routing_is_total_and_stable(self, key):
        table = RouteTable.balanced(8, [0, 1, 2])
        route = table.route_for_key(key)
        assert 0 <= route.instance < 8
        assert table.route_for_key(key) == route


class TestPromotion:
    def test_promote_swaps_roles(self):
        table = RouteTable.balanced(4, [0, 1, 2])
        old = table.route(0)
        new_table = table.promote_slave(0, new_slave=old.host)
        updated = new_table.route(0)
        assert updated.host == old.slave
        assert updated.slave == old.host
        assert new_table.version == table.version + 1

    def test_promote_rejects_same_slave(self):
        table = RouteTable.balanced(4, [0, 1, 2])
        route = table.route(0)
        with pytest.raises(RouteError, match="must differ"):
            table.promote_slave(0, new_slave=route.slave)

    def test_original_table_unchanged(self):
        table = RouteTable.balanced(4, [0, 1, 2])
        old = table.route(0)
        table.promote_slave(0, new_slave=old.host)
        assert table.route(0) == old


class TestValidation:
    def test_missing_instances_rejected(self):
        with pytest.raises(RouteError, match="missing"):
            RouteTable({0: InstanceRoute(0, 0, 1)}, num_instances=2)

    def test_unknown_instance_lookup(self):
        table = RouteTable.balanced(2, [0, 1])
        with pytest.raises(RouteError, match="unknown"):
            table.route(99)


class TestImmutableDerivations:
    """The table never mutates: every change is a derived table with a
    bumped version (the route epoch clients gate refreshes on)."""

    def test_version_is_a_constructor_argument(self):
        table = RouteTable(
            {0: InstanceRoute(0, 0, 1), 1: InstanceRoute(1, 1, 0)},
            num_instances=2,
            version=7,
        )
        assert table.version == 7

    def test_negative_version_rejected(self):
        with pytest.raises(RouteError, match="version"):
            RouteTable(
                {0: InstanceRoute(0, 0, 1), 1: InstanceRoute(1, 1, 0)},
                num_instances=2,
                version=-1,
            )

    def test_with_host_derives_and_bumps(self):
        table = RouteTable.balanced(4, [0, 1, 2])
        old = table.route(0)
        new_host = next(s for s in (0, 1, 2) if s not in (old.host, old.slave))
        derived = table.with_host(0, new_host)
        assert derived.route(0).host == new_host
        assert derived.route(0).slave == old.slave
        assert derived.version == table.version + 1
        # the original is untouched
        assert table.route(0) == old
        assert table.version == 0

    def test_with_host_rejects_host_equal_slave(self):
        table = RouteTable.balanced(4, [0, 1, 2])
        old = table.route(0)
        with pytest.raises(RouteError):
            table.with_host(0, old.slave)

    def test_with_slave_derives_and_bumps(self):
        table = RouteTable.balanced(4, [0, 1, 2])
        old = table.route(0)
        new_slave = next(s for s in (0, 1, 2) if s not in (old.host, old.slave))
        derived = table.with_slave(0, new_slave)
        assert derived.route(0).host == old.host
        assert derived.route(0).slave == new_slave
        assert derived.version == table.version + 1
        assert table.route(0) == old

    def test_with_slave_rejects_slave_equal_host(self):
        table = RouteTable.balanced(4, [0, 1, 2])
        with pytest.raises(RouteError):
            table.with_slave(0, table.route(0).host)

    def test_chained_derivations_accumulate_versions(self):
        table = RouteTable.balanced(4, [0, 1, 2])
        derived = table
        for instance in range(4):
            old = derived.route(instance)
            spare = next(
                s for s in (0, 1, 2) if s not in (old.host, old.slave)
            )
            derived = derived.with_slave(instance, spare)
        assert derived.version == table.version + 4
