"""Tests for the transactional TDStore layer: CAS and the op journal."""

import pytest

from repro.errors import VersionConflictError
from repro.tdstore.cluster import TDStoreCluster
from repro.tdstore.engines import (
    JOURNAL_LIMIT,
    LDBEngine,
    MDBEngine,
    RDBEngine,
)


class TestEngineCheckAndSet:
    def test_versions_start_at_zero_and_bump(self):
        engine = MDBEngine()
        assert engine.version("k") == 0
        assert engine.check_and_set("k", "v1", expected_version=0) == 1
        assert engine.get("k") == "v1"
        assert engine.check_and_set("k", "v2", expected_version=1) == 2
        assert engine.version("k") == 2

    def test_conflict_carries_current_version(self):
        engine = MDBEngine()
        engine.check_and_set("k", "v1", expected_version=0)
        with pytest.raises(VersionConflictError) as excinfo:
            engine.check_and_set("k", "stale", expected_version=0)
        assert excinfo.value.current == 1
        assert engine.get("k") == "v1"  # losing write left no trace

    def test_plain_put_is_version_neutral(self):
        engine = MDBEngine()
        engine.put("k", "v")
        assert engine.version("k") == 0

    def test_shared_across_engines(self):
        # implemented on the base class: every engine inherits it
        for engine in (MDBEngine(), LDBEngine(), RDBEngine()):
            assert engine.check_and_set("k", 1, expected_version=0) == 1
            with pytest.raises(VersionConflictError):
                engine.check_and_set("k", 2, expected_version=0)


class TestEngineOpJournal:
    def test_apply_op_is_idempotent(self):
        engine = MDBEngine()
        assert engine.apply_op("count", "src@0", 2.0) == (2.0, True)
        assert engine.apply_op("count", "src@0", 2.0) == (2.0, False)
        assert engine.apply_op("count", "src@1", 3.0) == (5.0, True)

    def test_record_once(self):
        engine = MDBEngine()
        assert engine.record_once("k", "src@0")
        assert not engine.record_once("k", "src@0")
        assert engine.record_once("k", "src@1")

    def test_journal_is_bounded(self):
        engine = MDBEngine()
        for i in range(JOURNAL_LIMIT * 2):
            engine.apply_op("count", f"src@{i}", 1.0)
        journal = engine.get("__ops__:count")
        assert len(journal) == JOURNAL_LIMIT
        # only the newest ids are remembered; they still dedup
        assert engine.apply_op("count", f"src@{JOURNAL_LIMIT * 2 - 1}", 1.0) == (
            float(JOURNAL_LIMIT * 2),
            False,
        )

    def test_journal_evictions_counted(self):
        # every trimmed id is a forgotten dedup decision; the counter is
        # what lets the monitor flag rewinds that could double-apply
        engine = MDBEngine()
        for i in range(JOURNAL_LIMIT):
            engine.apply_op("count", f"src@{i}", 1.0)
        assert engine.journal_evictions == 0
        engine.apply_op("count", f"src@{JOURNAL_LIMIT}", 1.0)
        assert engine.journal_evictions == 1
        engine.put_once("other", "src@0", "v")
        assert engine.journal_evictions == 1  # other key, nothing trimmed

    def test_put_once_is_idempotent(self):
        engine = MDBEngine()
        assert engine.put_once("k", "src@0", {"a": 1.0})
        assert not engine.put_once("k", "src@0", {"a": 999.0})
        assert engine.get("k") == {"a": 1.0}  # replay left no trace
        assert engine.put_once("k", "src@1", {"a": 2.0})
        assert engine.get("k") == {"a": 2.0}
        assert engine.version("k") == 2

    def test_op_seen_is_a_pure_read(self):
        engine = MDBEngine()
        assert not engine.op_seen("k", "src@0")
        assert not engine.op_seen("k", "src@0")  # probing records nothing
        engine.put_once("k", "src@0", "v")
        assert engine.op_seen("k", "src@0")
        assert not engine.op_seen("k", "src@1")


class TestClientTransactions:
    def make(self):
        cluster = TDStoreCluster(num_data_servers=3, num_instances=8)
        return cluster, cluster.client()

    def test_get_versioned_default(self):
        __, client = self.make()
        assert client.get_versioned("missing", default=[]) == ([], 0)

    def test_check_and_set_roundtrip_and_conflict(self):
        __, client = self.make()
        assert client.check_and_set("simList:i1", ["a"], 0) == 1
        assert client.get_versioned("simList:i1") == (["a"], 1)
        with pytest.raises(VersionConflictError) as excinfo:
            client.check_and_set("simList:i1", ["b"], 0)
        assert excinfo.value.current == 1

    def test_apply_counters(self):
        __, client = self.make()
        client.apply("itemCount:i1", "actions@0", 1.0)
        client.apply("itemCount:i1", "actions@0", 1.0)
        client.run_once("hist:u1", "actions@1")
        client.run_once("hist:u1", "actions@1")
        assert client.ops_applied == 2
        assert client.ops_deduped == 2

    def test_replay_deduped_across_failover(self):
        # the journal replicates with the value, so a replayed op is a
        # no-op even after the host dies and the slave is promoted
        cluster, client = self.make()
        key = "itemCount:i1"
        value, applied = client.apply(key, "actions@7", 4.0)
        assert (value, applied) == (4.0, True)
        cluster.sync_replicas()
        host = cluster.config.route_table().route_for_key(key).host
        cluster.crash_data_server(host)
        value, applied = client.apply(key, "actions@7", 4.0)
        assert (value, applied) == (4.0, False)
        assert client.get(key) == 4.0

    def test_put_once_roundtrip_and_counters(self):
        __, client = self.make()
        assert client.put_once("hist:u1", "actions@0", {"i1": 1.0})
        assert not client.put_once("hist:u1", "actions@0", {"i1": 9.0})
        assert client.get("hist:u1") == {"i1": 1.0}
        assert client.ops_applied == 1
        assert client.ops_deduped == 1

    def test_op_seen_probe_then_commit(self):
        __, client = self.make()
        assert not client.op_seen("hist:u1", "actions@0")
        # the probe alone must not create the journal entry — only the
        # commit does, or a failure in between would lose the update
        assert not client.op_seen("hist:u1", "actions@0")
        client.put_once("hist:u1", "actions@0", {"i1": 1.0})
        assert client.op_seen("hist:u1", "actions@0")

    def test_put_once_deduped_across_failover(self):
        cluster, client = self.make()
        key = "hist:u1"
        assert client.put_once(key, "actions@3", {"i1": 2.0})
        cluster.sync_replicas()
        host = cluster.config.route_table().route_for_key(key).host
        cluster.crash_data_server(host)
        assert not client.put_once(key, "actions@3", {"i1": 8.0})
        assert client.get(key) == {"i1": 2.0}
        assert client.op_seen(key, "actions@3")

    def test_cluster_aggregates_journal_evictions(self):
        cluster, client = self.make()
        assert cluster.journal_evictions() == 0
        for i in range(JOURNAL_LIMIT + 5):
            client.apply("itemCount:i1", f"actions@{i}", 1.0)
        assert cluster.journal_evictions() == 5

    def test_versions_survive_failover(self):
        cluster, client = self.make()
        key = "simList:i1"
        client.check_and_set(key, ["a"], 0)
        cluster.sync_replicas()
        host = cluster.config.route_table().route_for_key(key).host
        cluster.crash_data_server(host)
        assert client.get_versioned(key) == (["a"], 1)
        assert client.check_and_set(key, ["a", "b"], 1) == 2
