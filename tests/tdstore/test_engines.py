"""Unit and property tests for the four TDStore storage engines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EngineError
from repro.tdstore.engines import (
    FDBEngine,
    LDBEngine,
    MDBEngine,
    RDBEngine,
    make_engine,
)
from repro.utils.clock import SimClock


def engine_cases(tmp_path):
    return [
        MDBEngine(),
        LDBEngine(memtable_limit=4, max_runs=2),
        RDBEngine(SimClock()),
        FDBEngine(str(tmp_path / "fdb")),
    ]


class TestCommonEngineBehaviour:
    def test_put_get_delete(self, tmp_path):
        for engine in engine_cases(tmp_path):
            engine.put("a", 1)
            engine.put("b", {"x": 2})
            assert engine.get("a") == 1
            assert engine.get("b") == {"x": 2}
            assert engine.get("missing", "dflt") == "dflt"
            assert engine.delete("a") is True
            assert engine.delete("a") is False
            assert engine.get("a") is None

    def test_overwrite(self, tmp_path):
        for engine in engine_cases(tmp_path):
            engine.put("k", 1)
            engine.put("k", 2)
            assert engine.get("k") == 2
            assert len(engine) == 1

    def test_keys_and_len(self, tmp_path):
        for engine in engine_cases(tmp_path):
            for i in range(10):
                engine.put(f"key-{i}", i)
            engine.delete("key-3")
            assert len(engine) == 9
            assert "key-3" not in set(engine.keys())

    def test_snapshot_restore(self, tmp_path):
        for source, target in zip(engine_cases(tmp_path / "a"),
                                  engine_cases(tmp_path / "b")):
            source.put("x", 1)
            source.put("y", [1, 2])
            target.put("stale", 99)
            target.restore(source.snapshot())
            assert target.get("x") == 1
            assert target.get("y") == [1, 2]
            assert target.get("stale") is None


class TestLDBEngine:
    def test_memtable_flushes_to_runs(self):
        engine = LDBEngine(memtable_limit=4, max_runs=8)
        for i in range(10):
            engine.put(f"k{i}", i)
        assert engine.flushes >= 2
        assert engine.get("k0") == 0
        assert engine.get("k9") == 9

    def test_compaction_bounds_run_count(self):
        engine = LDBEngine(memtable_limit=2, max_runs=3)
        for i in range(40):
            engine.put(f"k{i % 7}", i)
        assert engine.run_count() <= 3 + 1
        assert engine.compactions >= 1

    def test_newest_value_wins_across_runs(self):
        engine = LDBEngine(memtable_limit=2, max_runs=10)
        engine.put("k", "old")
        engine.put("pad1", 0)  # force flush
        engine.put("k", "new")
        engine.put("pad2", 0)
        assert engine.get("k") == "new"

    def test_tombstones_survive_flush(self):
        engine = LDBEngine(memtable_limit=2, max_runs=10)
        engine.put("k", 1)
        engine.put("pad", 0)
        engine.delete("k")
        engine.put("pad2", 0)
        assert engine.get("k") is None
        assert "k" not in set(engine.keys())

    def test_scan_prefix(self):
        engine = LDBEngine(memtable_limit=100)
        engine.put("user:1", "a")
        engine.put("user:2", "b")
        engine.put("item:1", "c")
        result = dict(engine.scan_prefix("user:"))
        assert result == {"user:1": "a", "user:2": "b"}

    def test_invalid_params(self):
        with pytest.raises(EngineError):
            LDBEngine(memtable_limit=0)
        with pytest.raises(EngineError):
            LDBEngine(max_runs=0)

    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "delete"]),
                st.integers(min_value=0, max_value=20),
                st.integers(),
            ),
            max_size=120,
        )
    )
    def test_matches_dict_reference(self, operations):
        engine = LDBEngine(memtable_limit=5, max_runs=2)
        reference: dict[str, int] = {}
        for op, key_n, value in operations:
            key = f"k{key_n}"
            if op == "put":
                engine.put(key, value)
                reference[key] = value
            else:
                engine.delete(key)
                reference.pop(key, None)
        assert sorted(engine.keys()) == sorted(reference.keys())
        for key, value in reference.items():
            assert engine.get(key) == value


class TestRDBEngine:
    def test_ttl_expiry(self):
        clock = SimClock()
        engine = RDBEngine(clock)
        engine.put("session", "data", ttl=10.0)
        assert engine.get("session") == "data"
        clock.advance(9.9)
        assert engine.get("session") == "data"
        clock.advance(0.2)
        assert engine.get("session") is None

    def test_ttl_reported(self):
        clock = SimClock()
        engine = RDBEngine(clock)
        engine.put("k", 1, ttl=10.0)
        clock.advance(4.0)
        assert engine.ttl("k") == pytest.approx(6.0)

    def test_overwrite_clears_ttl(self):
        clock = SimClock()
        engine = RDBEngine(clock)
        engine.put("k", 1, ttl=5.0)
        engine.put("k", 2)
        clock.advance(100.0)
        assert engine.get("k") == 2

    def test_expired_keys_not_listed(self):
        clock = SimClock()
        engine = RDBEngine(clock)
        engine.put("a", 1, ttl=1.0)
        engine.put("b", 2)
        clock.advance(2.0)
        assert list(engine.keys()) == ["b"]
        assert len(engine) == 1

    def test_bad_ttl_rejected(self):
        with pytest.raises(EngineError):
            RDBEngine(SimClock()).put("k", 1, ttl=0)


class TestFDBEngine:
    def test_survives_process_restart(self, tmp_path):
        path = str(tmp_path / "store")
        first = FDBEngine(path)
        first.put("persistent", {"v": 42})
        second = FDBEngine(path)
        assert second.get("persistent") == {"v": 42}

    def test_buckets_created_on_demand(self, tmp_path):
        path = tmp_path / "store"
        engine = FDBEngine(str(path), num_buckets=4)
        for i in range(20):
            engine.put(f"k{i}", i)
        files = [p for p in path.iterdir() if p.name.startswith("bucket-")]
        assert 1 <= len(files) <= 4

    def test_invalid_buckets(self, tmp_path):
        with pytest.raises(EngineError):
            FDBEngine(str(tmp_path), num_buckets=0)


class TestMakeEngine:
    def test_all_kinds(self, tmp_path):
        assert isinstance(make_engine("mdb"), MDBEngine)
        assert isinstance(make_engine("LDB"), LDBEngine)
        assert isinstance(make_engine("rdb"), RDBEngine)
        assert isinstance(
            make_engine("fdb", directory=str(tmp_path / "f")), FDBEngine
        )

    def test_unknown_kind(self):
        with pytest.raises(EngineError, match="unknown engine"):
            make_engine("tokyo-cabinet")
