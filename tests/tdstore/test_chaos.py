"""Property-based chaos testing for TDStore.

A random interleaving of puts, deletes, idle syncs, server crashes (with
failover) and recoveries must never lose an acknowledged write: the
cluster must always agree with a plain-dict reference model.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tdstore import TDStoreCluster

KEYS = [f"key-{n}" for n in range(12)]

operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(KEYS), st.integers()),
        st.tuples(st.just("delete"), st.sampled_from(KEYS), st.none()),
        st.tuples(st.just("sync"), st.none(), st.none()),
        st.tuples(st.just("crash"), st.sampled_from([0, 1, 2, 3]), st.none()),
    ),
    max_size=60,
)


class TestTDStoreChaos:
    @settings(max_examples=60, deadline=None)
    @given(operations)
    def test_never_loses_acknowledged_writes(self, ops):
        cluster = TDStoreCluster(num_data_servers=4, num_instances=8)
        client = cluster.client()
        reference: dict[str, int] = {}
        down: set[int] = set()
        for op, arg, value in ops:
            if op == "put":
                client.put(arg, value)
                reference[arg] = value
            elif op == "delete":
                client.delete(arg)
                reference.pop(arg, None)
            elif op == "sync":
                cluster.sync_replicas()
            elif op == "crash":
                # replication factor is two: the cluster tolerates one
                # concurrent failure (two simultaneous crashes can take
                # both copies of an instance, which is genuine data loss)
                if arg not in down and len(down) < 1:
                    cluster.crash_data_server(arg)
                    down.add(arg)
                elif arg in down:
                    cluster.recover_data_server(arg)
                    down.discard(arg)
        for key in KEYS:
            expected = reference.get(key, "__absent__")
            assert client.get(key, "__absent__") == expected

    @settings(max_examples=30, deadline=None)
    @given(operations)
    def test_fresh_client_sees_same_state(self, ops):
        """Route-table refreshes are client-local: a brand-new client must
        observe identical data after any history."""
        cluster = TDStoreCluster(num_data_servers=4, num_instances=8)
        client = cluster.client()
        reference: dict[str, int] = {}
        down: set[int] = set()
        for op, arg, value in ops:
            if op == "put":
                client.put(arg, value)
                reference[arg] = value
            elif op == "delete":
                client.delete(arg)
                reference.pop(arg, None)
            elif op == "sync":
                cluster.sync_replicas()
            elif op == "crash":
                if arg not in down and len(down) < 1:
                    cluster.crash_data_server(arg)
                    down.add(arg)
        fresh = cluster.client()
        for key, value in reference.items():
            assert fresh.get(key) == value
