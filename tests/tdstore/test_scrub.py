"""Anti-entropy scrub: digests, read-repair, and its fences.

The scrubber may only repair what it can prove diverged against a
settled pair: migrations, promotions, dead participants, and writes
racing the snapshot window are all skipped (and counted), never
"repaired" across a fence.
"""

import pytest

from repro.elastic.migration import InstanceMigrator
from repro.tdstore import TDStoreCluster
from repro.tdstore.scrub import (
    SCRUB_BUCKETS,
    ReplicaScrubber,
    bucket_digests,
    bucket_of,
    canonical_bytes,
)


def make_cluster(servers=3, instances=8, **kwargs):
    return TDStoreCluster(
        num_data_servers=servers, num_instances=instances, **kwargs
    )


def seeded_cluster(n_keys=24):
    cluster = make_cluster()
    client = cluster.client()
    for i in range(n_keys):
        client.put(f"item:{i}", {"count": float(i)})
    cluster.sync_replicas()
    return cluster, client


def corrupt_slave(cluster, key, value):
    """Flip ``key`` on its slave replica behind replication's back;
    returns the instance route."""
    route = cluster.config.route_table().route_for_key(key)
    slave = cluster.config.server(route.slave)
    slave.engine(route.instance).put(key, value)
    return route


class TestDigests:
    def test_canonical_bytes_ignores_dict_order(self):
        assert canonical_bytes({"a": 1, "b": 2}) == canonical_bytes(
            {"b": 2, "a": 1}
        )
        assert canonical_bytes({"a": {"x": 1, "y": 2}}) == canonical_bytes(
            {"a": {"y": 2, "x": 1}}
        )

    def test_canonical_bytes_distinguishes_values(self):
        assert canonical_bytes({"a": 1}) != canonical_bytes({"a": 2})
        assert canonical_bytes([1, 2]) != canonical_bytes([2, 1])
        assert canonical_bytes({1, 2}) == canonical_bytes({2, 1})

    def test_equal_snapshots_digest_equal(self):
        snap = {f"k{i}": {"v": i} for i in range(40)}
        assert bucket_digests(snap) == bucket_digests(dict(reversed(
            list(snap.items())
        )))

    def test_divergence_localised_to_one_bucket(self):
        snap = {f"k{i}": i for i in range(40)}
        other = dict(snap)
        other["k7"] = -1
        a, b = bucket_digests(snap), bucket_digests(other)
        differing = [i for i in range(SCRUB_BUCKETS) if a[i] != b[i]]
        assert differing == [bucket_of("k7")]


class TestCleanPass:
    def test_zero_divergence_is_a_no_op(self):
        cluster, __ = seeded_cluster()
        report = ReplicaScrubber(cluster).scrub()
        assert report.clean
        assert report.instances_scanned == 8
        assert report.buckets_compared == 8 * SCRUB_BUCKETS
        assert report.keys_repaired == 0
        assert report.keys_deleted == 0
        assert report.corruptions_detected == 0
        assert report.divergent_instances == []

    def test_replication_lag_is_not_divergence(self):
        cluster, client = seeded_cluster()
        client.put("item:99", {"count": 99.0})  # sync pending, not applied
        report = ReplicaScrubber(cluster).scrub()
        assert report.clean
        assert report.skipped_racing == 0  # apply_pending drained it first


class TestRepair:
    def test_changed_value_detected_and_repaired(self):
        cluster, client = seeded_cluster()
        route = corrupt_slave(cluster, "item:3", {"count": -1.0})
        report = ReplicaScrubber(cluster).scrub()
        assert report.divergent_instances == [route.instance]
        assert report.corruptions_detected == 1
        assert report.keys_repaired == 1
        slave = cluster.config.server(route.slave)
        assert slave.engine(route.instance).get("item:3") == {"count": 3.0}
        assert ReplicaScrubber(cluster).scrub().clean

    def test_lost_key_repaired(self):
        cluster, __ = seeded_cluster()
        route = cluster.config.route_table().route_for_key("item:5")
        slave = cluster.config.server(route.slave)
        slave.engine(route.instance).delete("item:5")
        report = ReplicaScrubber(cluster).scrub()
        assert report.keys_repaired >= 1
        # a lost key is drift, not the silent-corruption signature
        assert report.corruptions_detected == 0
        assert slave.engine(route.instance).get("item:5") == {"count": 5.0}

    def test_phantom_key_deleted(self):
        cluster, __ = seeded_cluster()
        route = corrupt_slave(cluster, "item:0", {"count": 0.0})
        slave = cluster.config.server(route.slave)
        slave.engine(route.instance).put("phantom", "never written")
        report = ReplicaScrubber(cluster).scrub()
        assert report.keys_deleted >= 1
        assert slave.engine(route.instance).get("phantom") is None
        assert ReplicaScrubber(cluster).scrub().clean

    def test_repair_counts_surface_on_data_server(self):
        cluster, __ = seeded_cluster()
        route = corrupt_slave(cluster, "item:3", "garbage")
        slave = cluster.config.server(route.slave)
        assert slave.repairs_applied == 0
        ReplicaScrubber(cluster).scrub()
        assert slave.repairs_applied >= 1

    def test_repair_preserves_put_once_dedup(self):
        """The op-journal meta keys ride along in repair, so a promoted
        slave still refuses a replayed op it saw before the repair."""
        cluster = make_cluster()
        client = cluster.client()
        assert client.put_once("item:7", "op-1", {"count": 7.0}) is True
        cluster.sync_replicas()
        route = cluster.config.route_table().route_for_key("item:7")
        slave = cluster.config.server(route.slave)
        # wipe the slave's whole copy of the instance — value AND meta
        for key in list(slave.snapshot_instance(route.instance)):
            slave.engine(route.instance).delete(key)
        report = ReplicaScrubber(cluster).scrub()
        assert report.keys_repaired >= 2  # value + journal/version meta
        cluster.crash_data_server(route.host)
        # replay against the promoted (repaired) slave: still deduped
        assert client.put_once("item:7", "op-1", {"count": 777.0}) is False
        assert client.get("item:7") == {"count": 7.0}


class TestFences:
    def test_migration_in_flight_is_skipped(self):
        cluster, __ = seeded_cluster()
        route = corrupt_slave(cluster, "item:3", "garbage")
        target = next(
            s.server_id
            for s in cluster.data_servers
            if s.server_id not in (route.host, route.slave)
        )
        migration = InstanceMigrator(cluster).begin(route.instance, target)
        report = ReplicaScrubber(cluster).scrub()
        assert report.skipped_migrating == 1
        assert route.instance not in report.divergent_instances
        migration.enter_cutover()
        migration.finish()
        # settled: the (new) pair scrubs normally on the next pass
        assert ReplicaScrubber(cluster).scrub().skipped_migrating == 0

    def test_dead_participant_is_skipped(self):
        cluster, __ = seeded_cluster()
        route = corrupt_slave(cluster, "item:3", "garbage")
        cluster.config.server(route.slave).crash()
        report = ReplicaScrubber(cluster).scrub()
        assert report.skipped_down >= 1
        assert route.instance not in report.divergent_instances

    def test_mid_promotion_is_skipped(self):
        cluster, __ = seeded_cluster()
        route = cluster.config.route_table().route_for_key("item:3")
        host = cluster.config.server(route.host)
        # route table names the host but the role was never granted —
        # the window a promotion/recovery is mid-flight
        host.set_host_role(route.instance, False)
        report = ReplicaScrubber(cluster).scrub()
        assert report.skipped_unhosted == 1
        assert route.instance not in report.divergent_instances

    def test_write_racing_the_snapshot_window_is_skipped(self):
        cluster, client = seeded_cluster()
        route = corrupt_slave(cluster, "item:3", "garbage")
        host = cluster.config.server(route.host)
        real_snapshot = host.snapshot_instance

        def racing_snapshot(instance):
            snap = real_snapshot(instance)
            if instance == route.instance:
                client.put("item:3", {"count": 33.0})  # lands mid-window
            return snap

        host.snapshot_instance = racing_snapshot
        try:
            report = ReplicaScrubber(cluster).scrub()
        finally:
            host.snapshot_instance = real_snapshot
        assert report.skipped_racing == 1
        assert route.instance not in report.divergent_instances
        # the loop converges once the race clears
        cluster.sync_replicas()
        final = ReplicaScrubber(cluster).scrub()
        assert final.skipped_racing == 0
        assert final.clean


class TestFacade:
    def test_scrub_replicas_returns_report_and_accumulates(self):
        cluster, __ = seeded_cluster()
        corrupt_slave(cluster, "item:3", "garbage")
        report = cluster.scrub_replicas()
        assert report["divergent_buckets"] == 1
        assert report["clean"] is False
        assert cluster.scrub_replicas()["clean"] is True
        stats = cluster.scrub_stats()
        assert stats["scrub_passes"] == 2
        assert stats["keys_repaired"] == 1

    def test_fresh_facade_reports_zero_stats(self):
        stats = make_cluster().scrub_stats()
        assert stats["scrub_passes"] == 0
        assert stats["corruptions_detected"] == 0
