"""Integration tests for TDStore: client API, replication, failover."""

import pytest

from repro.errors import TDStoreError
from repro.tdstore import TDStoreCluster
from repro.tdstore.engines import LDBEngine


def make_cluster(servers=4, instances=16, **kwargs):
    return TDStoreCluster(
        num_data_servers=servers, num_instances=instances, **kwargs
    )


class TestClientBasics:
    def test_put_get_roundtrip(self):
        client = make_cluster().client()
        client.put("user:1:history", ["i1", "i2"])
        assert client.get("user:1:history") == ["i1", "i2"]

    def test_get_default(self):
        client = make_cluster().client()
        assert client.get("missing", 0.0) == 0.0

    def test_delete(self):
        client = make_cluster().client()
        client.put("k", 1)
        client.delete("k")
        assert not client.contains("k")

    def test_incr(self):
        client = make_cluster().client()
        assert client.incr("count:item1", 2.0) == 2.0
        assert client.incr("count:item1", 3.0) == 5.0

    def test_update_read_modify_write(self):
        client = make_cluster().client()
        client.put("lst", [1])
        client.update("lst", lambda v: v + [2])
        assert client.get("lst") == [1, 2]

    def test_many_keys_spread_over_servers(self):
        cluster = make_cluster(servers=4, instances=32)
        client = cluster.client()
        for i in range(200):
            client.put(f"key-{i}", i)
        writes = cluster.write_stats()
        assert all(count > 0 for count in writes.values())

    def test_works_with_ldb_engine(self):
        cluster = make_cluster(engine_factory=lambda: LDBEngine(memtable_limit=8))
        client = cluster.client()
        for i in range(50):
            client.put(f"k{i}", i)
        assert client.get("k25") == 25


class TestReplication:
    def test_writes_queue_to_slave_until_idle_sync(self):
        cluster = make_cluster(servers=2, instances=2)
        client = cluster.client()
        client.put("k", "v")
        pending = sum(s.pending_syncs() for s in cluster.data_servers)
        assert pending == 1
        cluster.sync_replicas()
        assert sum(s.pending_syncs() for s in cluster.data_servers) == 0

    def test_slave_has_data_after_sync(self):
        cluster = make_cluster(servers=2, instances=2)
        client = cluster.client()
        client.put("k", "v")
        cluster.sync_replicas()
        table = cluster.config.route_table()
        route = table.route_for_key("k")
        slave = cluster.config.server(route.slave)
        assert slave.engine(route.instance).get("k") == "v"


class TestFailover:
    def test_reads_survive_host_failure(self):
        cluster = make_cluster(servers=4, instances=16)
        client = cluster.client()
        for i in range(100):
            client.put(f"key-{i}", i)
        cluster.crash_data_server(0)
        # every key still readable: slave promoted with pending syncs applied
        for i in range(100):
            assert client.get(f"key-{i}") == i

    def test_writes_survive_host_failure(self):
        cluster = make_cluster(servers=4, instances=16)
        client = cluster.client()
        client.put("a", 1)
        cluster.crash_data_server(0)
        for i in range(50):
            client.put(f"post-crash-{i}", i)
        for i in range(50):
            assert client.get(f"post-crash-{i}") == i

    def test_failover_counts_and_route_version_bumps(self):
        cluster = make_cluster(servers=4, instances=16)
        client = cluster.client()
        client.put("k", 1)
        before = cluster.config.route_table().version
        cluster.crash_data_server(0)
        assert client.get("k", None) is not None or True  # trigger failover path
        for i in range(100):
            client.put(f"k{i}", i)
        after = cluster.config.route_table().version
        assert cluster.config.failovers >= 1
        assert after > before

    def test_promoted_instance_has_no_dead_participant(self):
        cluster = make_cluster(servers=4, instances=16)
        client = cluster.client()
        for i in range(50):
            client.put(f"key-{i}", i)
        cluster.crash_data_server(1)
        client.get("key-0")  # may or may not hit server 1; force failover:
        if cluster.config.failovers == 0:
            cluster.config.handle_server_failure(1)
        table = cluster.config.route_table()
        for instance in range(16):
            route = table.route(instance)
            assert route.host != 1
            assert route.slave != 1

    def test_failover_refused_for_live_server(self):
        cluster = make_cluster()
        with pytest.raises(TDStoreError, match="alive"):
            cluster.config.handle_server_failure(0)

    def test_config_host_failure_transparent(self):
        cluster = make_cluster()
        client = cluster.client()
        client.put("k", 1)
        cluster.config.kill_host_config()
        assert client.get("k") == 1
        client.put("k2", 2)
        assert client.get("k2") == 2

    def test_two_servers_cannot_refail(self):
        cluster = make_cluster(servers=2, instances=4)
        client = cluster.client()
        client.put("k", 1)
        cluster.crash_data_server(0)
        with pytest.raises(TDStoreError, match="not enough live servers"):
            client.get("k")
