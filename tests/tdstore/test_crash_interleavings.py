"""Crash -> recover -> apply_pending interleavings.

These tests pin down the replication state machine under awkward
orderings: promotion while sync queues are non-empty, recovery adopting
a snapshot while new syncs are still pending, and — the regression that
motivated host fencing — a client with a stale route table writing to a
crashed-and-revived server after everyone else failed over.
"""

import pytest

from repro.errors import StaleRouteError, TDStoreError
from repro.tdstore import TDStoreCluster
from repro.tdstore.data_server import TDStoreDataServer
from repro.tdstore.engines import MDBEngine


def make_cluster():
    return TDStoreCluster(num_data_servers=3, num_instances=8)


def host_of(cluster, key):
    return cluster.config.route_table().route_for_key(key).host


def slave_of(cluster, key):
    return cluster.config.route_table().route_for_key(key).slave


class TestPromotionWithPendingSyncs:
    def test_host_crash_promotes_slave_after_catchup(self):
        # the slave's inbox still holds unapplied records when the host
        # dies; promotion must apply them before serving reads
        cluster = make_cluster()
        client = cluster.client()
        for i in range(16):
            client.put(f"k{i}", i)
        victim = host_of(cluster, "k0")
        assert cluster.config.server(victim).pending_syncs() >= 0
        cluster.crash_data_server(victim)
        # no sync_replicas() ran: queues are as the writes left them
        for i in range(16):
            assert client.get(f"k{i}") == i

    def test_writes_between_crash_and_recover_survive(self):
        cluster = make_cluster()
        client = cluster.client()
        client.put("before", 1)
        victim = host_of(cluster, "before")
        cluster.crash_data_server(victim)
        client.put("before", 2)  # triggers failover, lands on new host
        client.put("during", 3)
        cluster.recover_data_server(victim)
        client.put("after", 4)
        fresh = cluster.client()
        assert fresh.get("before") == 2
        assert fresh.get("during") == 3
        assert fresh.get("after") == 4

    def test_double_replica_loss_is_reported_not_silent(self):
        cluster = make_cluster()
        client = cluster.client()
        client.put("k", 1)
        cluster.crash_data_server(host_of(cluster, "k"))
        cluster.crash_data_server(slave_of(cluster, "k"))
        with pytest.raises(TDStoreError):
            client.get("k")


class TestRecoveryAdoption:
    def test_recover_adopts_snapshot_while_new_syncs_pending(self):
        # a recovered server is re-seeded from peers whose own sync
        # queues are non-empty; the peer applies them first, so the
        # adopted snapshot is current, not stale
        cluster = make_cluster()
        client = cluster.client()
        for i in range(12):
            client.put(f"k{i}", "old")
        victim = host_of(cluster, "k0")
        cluster.crash_data_server(victim)
        for i in range(12):
            client.put(f"k{i}", "new")  # queues syncs at current slaves
        cluster.recover_data_server(victim)
        # the revived server's replicas must already hold the new values
        table = cluster.config.route_table()
        server = cluster.config.server(victim)
        for instance in range(table.num_instances):
            route = table.route(instance)
            if victim not in (route.host, route.slave):
                continue
            for key, value in server.engine(instance).snapshot().items():
                if key.startswith("k"):
                    assert value == "new", (instance, key)

    def test_replicas_converge_after_recover_and_idle_sync(self):
        cluster = make_cluster()
        client = cluster.client()
        for i in range(20):
            client.put(f"k{i}", i)
        cluster.crash_data_server(0)
        for i in range(20):
            client.put(f"k{i}", i * 10)
        cluster.recover_data_server(0)
        for i in range(20):
            client.put(f"extra{i}", i)
        cluster.sync_replicas()
        table = cluster.config.route_table()
        for instance in range(table.num_instances):
            route = table.route(instance)
            host = cluster.config.server(route.host)
            slave = cluster.config.server(route.slave)
            assert (
                host.engine(instance).snapshot()
                == slave.engine(instance).snapshot()
            ), f"instance {instance} diverged"


class TestHostFencing:
    def test_stale_client_cannot_split_brain_a_revived_server(self):
        # the regression: c1 triggers failover while c2 keeps the old
        # table; once the crashed server revives, c2's writes must not
        # land on it (it no longer hosts anything)
        cluster = make_cluster()
        c1, c2 = cluster.client(), cluster.client()
        c1.put("k", "v0")
        victim = host_of(cluster, "k")
        cluster.crash_data_server(victim)
        assert c1.get("k") == "v0"  # c1 fails over; c2's table is now stale
        cluster.recover_data_server(victim)
        c2.put("k", "v1")  # fenced at the revived server, retried
        assert c2.route_refreshes >= 1
        assert c1.get("k") == "v1"
        assert cluster.client().get("k") == "v1"
        # the revived server holds no divergent copy of the key's instance
        instance = cluster.config.route_table().route_for_key("k").instance
        revived = cluster.config.server(victim)
        if instance in revived.instances():
            assert revived.engine(instance).get("k") != "v1" or revived.hosts(
                instance
            )

    def test_stale_read_is_fenced_too(self):
        cluster = make_cluster()
        c1, c2 = cluster.client(), cluster.client()
        c1.put("k", "v0")
        victim = host_of(cluster, "k")
        cluster.crash_data_server(victim)
        c1.put("k", "v1")  # failover; new host has v1
        cluster.recover_data_server(victim)
        # without fencing this read would see the revived server's empty
        # engine and return the default
        assert c2.get("k", "MISSING") == "v1"

    def test_data_server_rejects_unhosted_operations(self):
        server = TDStoreDataServer(0, MDBEngine)
        server.ensure_instance(3)
        with pytest.raises(StaleRouteError, match="no longer hosts"):
            server.put(3, "k", 1)
        with pytest.raises(StaleRouteError):
            server.get(3, "k")
        with pytest.raises(StaleRouteError):
            server.delete(3, "k")
        server.set_host_role(3, True)
        server.put(3, "k", 1)
        assert server.get(3, "k") == 1
        server.set_host_role(3, False)
        with pytest.raises(StaleRouteError):
            server.get(3, "k")

    def test_replication_paths_are_not_fenced(self):
        # snapshot/adopt/apply are host<->slave traffic, not client
        # traffic: they must work on a server that hosts nothing
        from repro.tdstore.data_server import SyncRecord, _PUT

        server = TDStoreDataServer(0, MDBEngine)
        server.enqueue_sync(2, SyncRecord(_PUT, "k", 5))
        server.apply_pending(2)
        assert server.engine(2).get("k") == 5
        assert server.snapshot_instance(2) == {"k": 5}
        server.adopt_snapshot(2, {"x": 1})
        assert server.engine(2).get("x") == 1

    def test_restart_forgets_host_roles_until_regranted(self):
        cluster = make_cluster()
        client = cluster.client()
        client.put("k", 1)
        victim = host_of(cluster, "k")
        server = cluster.config.server(victim)
        instance = cluster.config.route_table().route_for_key("k").instance
        assert server.hosts(instance)
        server.crash()
        client.get("k")  # failover moves the instance elsewhere
        server.recover()  # direct restart: no roles until the config acts
        assert not server.hosts(instance)
        cluster.config.handle_server_recovery(victim)
        # the table no longer names the victim as host, so still fenced
        assert not server.hosts(instance)
