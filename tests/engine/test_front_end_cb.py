"""Front-end CB mode and engine query options."""

import pytest

from repro.engine import RecommenderEngine, RecommenderFrontEnd
from repro.storm import LocalCluster
from repro.tdstore import TDStoreCluster
from repro.topology import StateKeys
from repro.topology.framework import build_cb_topology
from repro.types import UserAction
from repro.utils.clock import SimClock

METAS = [
    {"item": "n1", "tags": ("sports",), "category": "news",
     "publish_time": 0.0, "lifetime": None},
    {"item": "n2", "tags": ("sports",), "category": "news",
     "publish_time": 0.0, "lifetime": None},
    {"item": "n3", "tags": ("politics",), "category": "news",
     "publish_time": 0.0, "lifetime": None},
    {"item": "dead", "tags": ("sports",), "category": "news",
     "publish_time": 0.0, "lifetime": 50.0},
]


@pytest.fixture
def cb_world():
    clock = SimClock()
    store = TDStoreCluster(num_data_servers=2, num_instances=8)
    actions = [UserAction("u1", "n1", "click", 10.0)]
    topo = build_cb_topology("cb", actions, METAS, clock, store.client)
    cluster = LocalCluster(clock=clock)
    cluster.submit(topo)
    cluster.run_until_idle()
    return store, clock


class TestEngineCB:
    def test_recommends_matching_live_items(self, cb_world):
        store, clock = cb_world
        engine = RecommenderEngine(store.client())
        recs = engine.recommend_cb("u1", 5, now=100.0)
        ids = [r.item_id for r in recs]
        assert "n2" in ids  # same topic, alive
        assert "n1" not in ids  # consumed
        assert "dead" not in ids  # expired at t=100

    def test_cold_user_empty(self, cb_world):
        store, __ = cb_world
        engine = RecommenderEngine(store.client())
        assert engine.recommend_cb("ghost", 5, now=100.0) == []


class TestFrontEndCB:
    def test_cb_mode_serves(self, cb_world):
        store, __ = cb_world
        front = RecommenderFrontEnd(
            RecommenderEngine(store.client()), algorithm="cb"
        )
        recs = front.query("u1", 3, now=100.0)
        assert recs
        assert front.log.served == 1

    def test_empty_logged(self, cb_world):
        store, __ = cb_world
        front = RecommenderFrontEnd(
            RecommenderEngine(store.client()), algorithm="cb"
        )
        assert front.query("ghost", 3, now=100.0) == []
        assert front.log.empty == 1


class TestEngineAR:
    def test_ar_rules_from_store(self, cb_world):
        store, __ = cb_world
        client = store.client()
        client.put(StateKeys.ar_item("A"), 4.0)
        client.put(StateKeys.ar_pair("A", "B"), 3.0)
        client.put(StateKeys.ar_partners("A"), {"B"})
        engine = RecommenderEngine(client)
        recs = engine.recommend_ar(
            "u", 3, now=0.0, session_items=["A"], min_support=2,
            min_confidence=0.5,
        )
        assert [r.item_id for r in recs] == ["B"]
        assert recs[0].score == pytest.approx(0.75)

    def test_ar_below_support_excluded(self, cb_world):
        store, __ = cb_world
        client = store.client()
        client.put(StateKeys.ar_item("A"), 4.0)
        client.put(StateKeys.ar_pair("A", "B"), 1.0)
        client.put(StateKeys.ar_partners("A"), {"B"})
        engine = RecommenderEngine(client)
        assert engine.recommend_ar("u", 3, 0.0, ["A"], min_support=2) == []
