"""Unit tests for the front end's serving degradation ladder."""

import pytest

from repro.engine.degraded import ServeThroughRecovery
from repro.engine.engine import EngineConfig, RecommenderEngine
from repro.errors import EvaluationError
from repro.resilience import CircuitBreaker, LoadShedder
from repro.tdstore.cluster import TDStoreCluster
from repro.topology.state import StateKeys
from repro.utils.clock import SimClock

from repro.engine.front_end import RUNGS, RecommenderFrontEnd

USER = "u1"


def seeded_store() -> TDStoreCluster:
    store = TDStoreCluster(num_data_servers=2, num_instances=8)
    client = store.client()
    client.put(StateKeys.recent(USER), [("i1", 5.0, 0.0)])
    client.put(StateKeys.history(USER), {"i1": 5.0})
    client.put(StateKeys.sim_list("i1"), {"i2": 0.9, "i3": 0.8})
    client.put(StateKeys.hot("global"), {"h1": 4.0, "h2": 2.0})
    return store


def open_breaker(clock: SimClock) -> CircuitBreaker:
    breaker = CircuitBreaker(clock.now, failure_threshold=1, name="store")
    breaker.record_failure()
    assert breaker.state == "open"
    return breaker


class TestLadderRungs:
    def test_healthy_serves_live(self):
        store = seeded_store()
        engine = RecommenderEngine(store.client(), EngineConfig())
        front_end = RecommenderFrontEnd(engine)
        results = front_end.query(USER, 2, 0.0)
        assert [r.item_id for r in results] == ["i2", "i3"]
        assert front_end.log.rungs == {"live": 1}
        assert front_end.log.rung_history == ["live"]

    def test_live_failure_serves_last_known_good(self):
        clock = SimClock()
        store = seeded_store()
        breaker = CircuitBreaker(clock.now, failure_threshold=1, name="store")
        client = store.client(breaker=breaker)
        engine = RecommenderEngine(client, EngineConfig())
        degraded = ServeThroughRecovery(engine, in_recovery=lambda: False)
        front_end = RecommenderFrontEnd(engine, degraded=degraded)
        warm = front_end.query(USER, 2, 0.0)  # live; fills the cache
        breaker.record_failure()
        stale = front_end.query(USER, 2, 1.0)
        assert [r.item_id for r in stale] == [r.item_id for r in warm]
        assert front_end.log.rungs == {"live": 1, "cache": 1}
        assert front_end.log.degraded_fraction() == pytest.approx(0.5)

    def test_cache_miss_falls_to_demographic(self):
        clock = SimClock()
        store = seeded_store()
        engine = RecommenderEngine(store.client(), EngineConfig())
        broken = RecommenderEngine(
            store.client(breaker=open_breaker(clock)), EngineConfig()
        )
        degraded = ServeThroughRecovery(broken, in_recovery=lambda: False)
        front_end = RecommenderFrontEnd(broken, degraded=degraded)
        # warm the demographic fallback through the healthy engine first
        front_end._hot_fallback = engine.hot_items_for(USER, 2, 0.0)
        results = front_end.query("ghost-user", 2, 0.0)
        assert [r.item_id for r in results] == ["h1", "h2"]
        assert front_end.log.rungs == {"demographic": 1}

    def test_everything_down_serves_static(self):
        clock = SimClock()
        store = seeded_store()
        engine = RecommenderEngine(
            store.client(breaker=open_breaker(clock)), EngineConfig()
        )
        front_end = RecommenderFrontEnd(engine, static_items=("s1", "s2", "s3"))
        results = front_end.query(USER, 2, 0.0)
        assert [r.item_id for r in results] == ["s1", "s2"]
        assert all(r.source == "static" for r in results)
        assert front_end.log.rungs == {"static": 1}

    def test_recovery_window_serves_from_cache(self):
        store = seeded_store()
        engine = RecommenderEngine(store.client(), EngineConfig())
        recovering = {"now": False}
        degraded = ServeThroughRecovery(
            engine, in_recovery=lambda: recovering["now"]
        )
        front_end = RecommenderFrontEnd(engine, degraded=degraded)
        front_end.query(USER, 2, 0.0)
        recovering["now"] = True
        results = front_end.query(USER, 2, 1.0)
        assert results
        assert front_end.log.rungs == {"live": 1, "cache": 1}

    def test_rung_names_are_the_public_ladder(self):
        assert RUNGS == ("live", "cache", "demographic", "static")


class TestAdmissionAndAccounting:
    def test_shed_query_answers_static_without_dependencies(self):
        clock = SimClock()
        store = seeded_store()
        engine = RecommenderEngine(store.client(), EngineConfig())
        shedder = LoadShedder(clock.now, capacity=1, window=1.0)
        front_end = RecommenderFrontEnd(
            engine, static_items=("s1",), shedder=shedder
        )
        front_end.query(USER, 1, 0.0)
        shed = front_end.query(USER, 1, 0.0)
        assert [r.item_id for r in shed] == ["s1"]
        assert front_end.log.shed == 1
        assert front_end.log.rungs == {"live": 1, "static": 1}

    def test_deadline_budget_requires_clock(self):
        store = seeded_store()
        engine = RecommenderEngine(store.client(), EngineConfig())
        with pytest.raises(EvaluationError):
            RecommenderFrontEnd(engine, deadline_budget=0.5)

    def test_empty_rung_counts_sum_to_queries(self):
        store = seeded_store()
        engine = RecommenderEngine(store.client(), EngineConfig())
        front_end = RecommenderFrontEnd(engine)
        front_end.query(USER, 2, 0.0)
        front_end.query("nobody", 2, 0.0)  # hot complement still answers
        log = front_end.log
        assert sum(log.rungs.values()) == log.queries == 2
