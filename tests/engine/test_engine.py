"""Tests for the recommender engine and front end (Figure 9)."""

import pytest

from repro.engine import EngineConfig, RecommenderEngine, RecommenderFrontEnd
from repro.errors import EvaluationError
from repro.storm import LocalCluster
from repro.tdaccess import TDAccessCluster
from repro.tdstore import TDStoreCluster
from repro.topology import StateKeys
from repro.topology.framework import CFTopologyConfig, build_cf_topology
from repro.types import UserAction, UserProfile
from repro.utils.clock import SimClock

BIG = 10**12


def run_cf(actions, group_of=None):
    clock = SimClock()
    store = TDStoreCluster(num_data_servers=3, num_instances=16)
    topo = build_cf_topology(
        "cf",
        actions,
        clock,
        store.client,
        CFTopologyConfig(linked_time=BIG, group_of=group_of),
    )
    cluster = LocalCluster(clock=clock)
    cluster.submit(topo)
    cluster.run_until_idle()
    return store, clock


def co_click_actions():
    actions = []
    t = 0.0
    for n in range(10):
        actions.append(UserAction(f"u{n}", "A", "click", t))
        actions.append(UserAction(f"u{n}", "B", "click", t + 1))
        t += 2
    actions.append(UserAction("target", "A", "click", t))
    return actions


class TestCFQueries:
    def test_recommends_co_clicked_item(self):
        store, clock = run_cf(co_click_actions())
        engine = RecommenderEngine(store.client())
        recs = engine.recommend_cf("target", 5, clock.now())
        assert recs and recs[0].item_id == "B"
        assert recs[0].source == "cf"

    def test_consumed_items_excluded(self):
        store, clock = run_cf(co_click_actions())
        engine = RecommenderEngine(store.client())
        recs = engine.recommend_cf("u0", 5, clock.now())
        assert all(r.item_id not in ("A", "B") for r in recs)

    def test_db_complement_fills_when_cf_empty(self):
        groups = {"cold": "male"}
        actions = co_click_actions() + [
            UserAction("warm", "C", "click", 1000.0)
        ]
        store, clock = run_cf(
            actions, group_of=lambda user: groups.get(user, "other")
        )
        engine = RecommenderEngine(
            store.client(),
            EngineConfig(group_of=lambda user: groups.get(user, "other")),
        )
        recs = engine.recommend_cf("cold", 3, clock.now())
        assert recs  # cold user still gets hot items
        assert all(r.source == "db" for r in recs)

    def test_complement_disabled(self):
        store, clock = run_cf(co_click_actions())
        engine = RecommenderEngine(
            store.client(), EngineConfig(complement_with_db=False)
        )
        assert engine.recommend_cf("stranger", 3, clock.now()) == []

    def test_hot_items_prefer_user_group(self):
        groups = {"m": "male", "f": "female"}
        actions = [
            UserAction("m", "game", "click", 0.0),
            UserAction("f", "recipe", "click", 1.0),
            UserAction("f", "recipe2", "click", 2.0),
        ]
        store, clock = run_cf(
            actions, group_of=lambda user: groups.get(user, "global")
        )
        engine = RecommenderEngine(
            store.client(),
            EngineConfig(group_of=lambda user: groups.get(user, "global")),
        )
        hots = engine.hot_items_for("m", 3, clock.now())
        assert hots[0][0] == "game"


class TestFrontEnd:
    def test_query_serves_and_logs(self):
        store, clock = run_cf(co_click_actions())
        engine = RecommenderEngine(store.client())
        front = RecommenderFrontEnd(engine, algorithm="cf")
        recs = front.query("target", 3, clock.now())
        assert recs
        assert front.log.queries == 1
        assert front.log.served == 1
        assert front.log.displayed[0][0] == "target"

    def test_display_filter_applied(self):
        store, clock = run_cf(co_click_actions())
        engine = RecommenderEngine(store.client())
        front = RecommenderFrontEnd(
            engine, algorithm="cf", display_filter=lambda r: r.item_id != "B"
        )
        recs = front.query("target", 3, clock.now())
        assert all(r.item_id != "B" for r in recs)

    def test_feedback_impressions_published(self):
        store, clock = run_cf(co_click_actions())
        access = TDAccessCluster(clock, num_data_servers=2)
        access.create_topic("user_actions", 2)
        engine = RecommenderEngine(store.client())
        front = RecommenderFrontEnd(
            engine,
            algorithm="cf",
            feedback_producer=access.producer(),
            feedback_topic="user_actions",
        )
        recs = front.query("target", 3, clock.now())
        messages = access.consumer("user_actions").drain()
        assert len(messages) == len(recs)
        assert all(m.value["action"] == "impression" for m in messages)

    def test_unknown_algorithm_rejected(self):
        store, clock = run_cf(co_click_actions())
        engine = RecommenderEngine(store.client())
        with pytest.raises(EvaluationError):
            RecommenderFrontEnd(engine, algorithm="magic")


class TestCTRRanking:
    def test_rank_by_ctr_prefers_stored_values(self):
        store = TDStoreCluster(num_data_servers=2, num_instances=8)
        client = store.client()
        profiles = {
            "u": UserProfile("u", gender="male", age=25, region="beijing")
        }
        key = "region=beijing&gender=male&age=age25-34"
        client.put(StateKeys.ctr("ad-good", key), 0.3)
        client.put(StateKeys.ctr("ad-bad", key), 0.01)
        engine = RecommenderEngine(client)
        recs = engine.rank_by_ctr("u", ["ad-bad", "ad-good", "ad-new"], 3,
                                  profiles.get)
        assert recs[0].item_id == "ad-good"
        # unseen ad falls back to the prior
        new = next(r for r in recs if r.item_id == "ad-new")
        assert new.score == pytest.approx(EngineConfig().prior_ctr)
