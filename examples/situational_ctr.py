"""The introduction's query, answered end to end (Figure 7 topology).

"During the last ten seconds, what is the CTR of an advertisement among
the male users in Beijing, whose age is from twenty to thirty?" — raw
impression/click events flow from TDAccess through the Figure 7 topology
(spout -> pretreatment -> ctrStore -> ctrBolt -> resultStorage), and the
query is answered from TDStore.

Run:  python examples/situational_ctr.py
"""

import numpy as np

from repro.engine import RecommenderEngine
from repro.storm import LocalCluster
from repro.tdaccess import TDAccessCluster
from repro.tdstore import TDStoreCluster
from repro.topology import StateKeys
from repro.topology.framework import build_ctr_topology
from repro.topology.spouts import TDAccessSpout
from repro.types import UserProfile
from repro.utils.clock import SimClock


def build_population(rng):
    profiles = {}
    for index in range(300):
        user_id = f"user-{index}"
        profiles[user_id] = UserProfile(
            user_id,
            gender="male" if rng.random() < 0.5 else "female",
            age=int(rng.integers(18, 60)),
            region="beijing" if rng.random() < 0.5 else "shanghai",
        )
    return profiles


def main():
    rng = np.random.default_rng(9)
    clock = SimClock()
    profiles = build_population(rng)

    tdaccess = TDAccessCluster(clock, num_data_servers=2)
    tdaccess.create_topic("ad_events", 4)
    producer = tdaccess.producer()

    # young Beijing men click ad-42 a lot; everyone else mostly ignores it
    print("publishing ad traffic...")
    for second in range(10):
        for user_id, profile in profiles.items():
            if rng.random() > 0.4:
                continue
            now = float(second)
            producer.send("ad_events", {
                "user": user_id, "item": "ad-42",
                "action": "impression", "timestamp": now,
            }, key=user_id)
            is_target = (
                profile.gender == "male"
                and profile.region == "beijing"
                and profile.age is not None and 20 <= profile.age < 30
            )
            click_probability = 0.45 if is_target else 0.03
            if rng.random() < click_probability:
                producer.send("ad_events", {
                    "user": user_id, "item": "ad-42",
                    "action": "click", "timestamp": now,
                }, key=user_id)

    tdstore = TDStoreCluster(num_data_servers=3, num_instances=16)
    topology = build_ctr_topology(
        "ads",
        lambda: TDAccessSpout(tdaccess.consumer("ad_events"), clock),
        tdstore.client,
        profiles.get,
    )
    cluster = LocalCluster(clock=clock)
    cluster.submit(topology)
    cluster.run_until_idle()

    client = tdstore.client()
    target_key = "region=beijing&gender=male&age=age25-34"
    young_key = "region=beijing&gender=male&age=age18-24"
    for label, key in [("25-34", target_key), ("18-24", young_key)]:
        impressions = client.get(StateKeys.impressions("ad-42", key), 0.0)
        clicks = client.get(StateKeys.clicks("ad-42", key), 0.0)
        ctr = client.get(StateKeys.ctr("ad-42", key), 0.0)
        print(f"ad-42 among Beijing males {label}: "
              f"{int(impressions)} impressions, {int(clicks)} clicks, "
              f"smoothed CTR {ctr:.3f}")
    overall = client.get(StateKeys.ctr("ad-42", "any"), 0.0)
    print(f"ad-42 overall smoothed CTR: {overall:.3f}")

    engine = RecommenderEngine(client)
    target_user = next(
        u for u, p in profiles.items()
        if p.gender == "male" and p.region == "beijing"
        and p.age and 25 <= p.age < 30
    )
    ranked = engine.rank_by_ctr(target_user, ["ad-42"], 1, profiles.get)
    print(f"predicted CTR of ad-42 for {target_user}: {ranked[0].score:.3f}")


if __name__ == "__main__":
    main()
