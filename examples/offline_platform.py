"""The offline computation platform and the monitor (Figure 9).

Shows the 'traditional' serving path the paper improves on: a nightly
batch job replays TDAccess history, publishes an item-based CF model
into TDStore, and the recommender engine serves from it — plus the
monitor keeping watch over the whole deployment.

Run:  python examples/offline_platform.py
"""

from repro.engine import RecommenderEngine
from repro.monitoring import SystemMonitor
from repro.offline import BatchCFJob, JobScheduler
from repro.simulation import video_scenario
from repro.tdaccess import TDAccessCluster
from repro.tdstore import TDStoreCluster
from repro.utils.clock import SECONDS_PER_DAY, SimClock


def main():
    clock = SimClock()
    scenario = video_scenario(seed=21, num_users=150, initial_items=120)
    tdaccess = TDAccessCluster(clock, num_data_servers=3)
    tdaccess.create_topic("user_actions", 4)
    tdstore = TDStoreCluster(num_data_servers=3, num_instances=16)

    monitor = SystemMonitor(clock.now, tdaccess=tdaccess, tdstore=tdstore)
    etl = tdaccess.consumer("user_actions", group_id="monitor-probe")
    monitor.watch_consumer("offline-etl", etl)

    producer = tdaccess.producer()
    scheduler = JobScheduler(interval=SECONDS_PER_DAY)  # nightly rebuild
    scheduler.register(
        BatchCFJob(tdaccess, "user_actions", tdstore.client())
    )

    print("simulating two days of traffic with nightly batch rebuilds...")
    for hour in range(48):
        clock.advance_to(hour * 3600.0)
        for user in scenario.population.users():
            if hour % 4 == 0 and user.activity > 0.6:
                for action in scenario.behavior.organic_session(
                    user, clock.now()
                ):
                    producer.send(
                        "user_actions",
                        {
                            "user": action.user_id,
                            "item": action.item_id,
                            "action": action.action,
                            "timestamp": action.timestamp,
                        },
                        key=action.user_id,
                    )
        ran = scheduler.maybe_run(clock.now())
        if ran:
            when, name, stats = scheduler.log[-1]
            print(f"  t={when / 3600:.0f}h: job {name!r} rebuilt from "
                  f"{stats['events']} events "
                  f"({stats['items_published']} items, "
                  f"{stats['users_published']} users published)")

    engine = RecommenderEngine(tdstore.client())
    shopper = next(
        user.user_id
        for user in scenario.population.users()
        if user.activity > 0.6
    )
    print(f"\noffline-model recommendations for {shopper}:")
    for rec in engine.recommend_cf(shopper, 5, clock.now()):
        print(f"  {rec.item_id}  score={rec.score:.2f}  via {rec.source}")

    print("\n" + monitor.summary())
    alerts = monitor.evaluate()
    print(f"alerts: {len(alerts)}")
    tdaccess.crash_data_server(0)
    for alert in monitor.evaluate():
        print(f"  [{alert.severity}] {alert.component}: {alert.message}")


if __name__ == "__main__":
    main()
