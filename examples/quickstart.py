"""Quickstart: the practical incremental item-based CF on a toy stream.

Demonstrates the core of the paper (Section 4.1): implicit-feedback
ratings, incremental similarity from count deltas, Hoeffding pruning,
the sliding window, and top-N prediction with the recent-k filter.

Run:  python examples/quickstart.py
"""

from repro import HoeffdingPruner, PracticalItemCF, UserAction


def main():
    cf = PracticalItemCF(
        k=10,
        linked_time=6 * 3600.0,  # items pair only within six hours
        recent_k=5,  # real-time personalized filtering (Section 4.3)
        pruner=HoeffdingPruner(delta=0.01),  # real-time pruning (Section 4.1.4)
    )

    # Simulate implicit feedback: several users co-engage with phones and
    # headphones; one user browses a fridge once (weak, unrelated signal).
    t = 0.0
    for n in range(12):
        user = f"user-{n}"
        cf.observe(UserAction(user, "phone", "click", t))
        cf.observe(UserAction(user, "headphones", "click", t + 60))
        if n % 2 == 0:
            cf.observe(UserAction(user, "charger", "browse", t + 120))
        if n % 5 == 0:
            cf.observe(UserAction(user, "fridge", "browse", t + 180))
        t += 600.0

    # One user upgrades from browse to purchase: the rating is the max
    # action weight, so the counts move by the delta (Eq 3 / Eq 8).
    cf.observe(UserAction("user-0", "charger", "purchase", t))

    print("similarity(phone, headphones) =",
          round(cf.similarity("phone", "headphones"), 3))
    print("similarity(phone, charger)    =",
          round(cf.similarity("phone", "charger"), 3))
    print("similarity(phone, fridge)     =",
          round(cf.similarity("phone", "fridge"), 3))

    print("\nsimilar-items list for 'phone':")
    for item, sim in cf.table.top_similar("phone"):
        print(f"  {item:<12} {sim:.3f}")

    # A fresh user clicks a phone; the engine recommends from the
    # similar-items lists of their recent items (Eq 2).
    cf.observe(UserAction("newcomer", "phone", "click", t + 60))
    print("\nrecommendations for 'newcomer':")
    for rec in cf.recommend("newcomer", n=3, now=t + 120):
        print(f"  {rec.item_id:<12} score={rec.score:.2f} via {rec.source}")

    print("\nprocessing stats:", cf.stats)
    if cf.pruner is not None:
        print("pairs pruned by the Hoeffding bound:", cf.pruner.pruned_pairs)


if __name__ == "__main__":
    main()
