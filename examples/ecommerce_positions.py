"""YiXun-style recommendation positions (Section 6.4, Figure 12).

Builds an e-commerce world with topic-priced commodities, trains the
similar-purchase and similar-price engines on a day of traffic, and
shows what each position recommends while a user browses a commodity.

Run:  python examples/ecommerce_positions.py
"""

from repro.evaluation import PriceIndex, SimilarPriceEngine, SimilarPurchaseEngine
from repro.simulation import ecommerce_scenario


def main():
    scenario = ecommerce_scenario(seed=11, num_users=200, initial_items=250)
    profiles = scenario.population.profile
    price_index = PriceIndex()
    purchase_position = SimilarPurchaseEngine(profiles)
    price_position = SimilarPriceEngine(profiles, price_index)
    for item in scenario.catalog.all_items():
        price_position.on_new_item(item.meta)

    # one simulated day of organic shopping traffic trains both engines
    print("simulating a day of shopping traffic...")
    event_count = 0
    for hour in range(24):
        now = hour * 3600.0
        for user in scenario.population.users():
            if user.activity < 0.5 or hour % 3 != 0:
                continue
            for action in scenario.behavior.organic_session(user, now):
                purchase_position.observe(action)
                price_position.observe(action)
                event_count += 1
    print(f"trained on {event_count} user actions\n")

    shopper = scenario.population.users()[0]
    now = 25 * 3600.0
    anchor = scenario.behavior.pick_browsing_item(shopper, now)
    meta = anchor.meta
    print(f"{shopper.user_id} is browsing {anchor.item_id} "
          f"(topic {anchor.topic}, price {meta.price:.0f})\n")

    context = {"anchor": anchor.item_id}
    print("similar-purchase position (users who bought this also bought):")
    for rec in purchase_position.recommend(shopper.user_id, 5, now, context):
        item = scenario.catalog.get(rec.item_id)
        print(f"  {rec.item_id}  topic={item.topic}  "
              f"price={item.meta.price:.0f}  score={rec.score:.3f}")

    print("\nsimilar-price position (goods with similar prices):")
    for rec in price_position.recommend(shopper.user_id, 5, now, context):
        item = scenario.catalog.get(rec.item_id)
        print(f"  {rec.item_id}  topic={item.topic}  "
              f"price={item.meta.price:.0f}  score={rec.score:.3f}")
        assert 0.7 * meta.price <= item.meta.price <= 1.4 * meta.price


if __name__ == "__main__":
    main()
