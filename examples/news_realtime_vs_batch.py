"""Real-time vs. hourly-batch news recommendation (Figures 10–11, small).

Runs a three-day news simulation with breaking-news churn and compares
TencentRec's real-time content-based engine against the same engine
refreshed once per hour (the paper's 'Original'), printing the daily CTR
and read-count series.

Run:  python examples/news_realtime_vs_batch.py
"""

from repro.evaluation import (
    ABTestConfig,
    ABTestRunner,
    TencentRecCBEngine,
    format_daily_ctr_series,
    make_original,
)
from repro.simulation import news_scenario


def main():
    scenario = news_scenario(
        seed=7, num_users=150, initial_items=80, arrivals_per_day=150
    )

    def item_alive(item_id, now):
        return scenario.catalog.get(item_id).meta.is_active(now)

    profiles = scenario.population.profile
    engines = {
        "tencentrec": TencentRecCBEngine(profiles, item_alive=item_alive),
        "original": make_original(
            TencentRecCBEngine(profiles, item_alive=item_alive),
            update_interval=3600.0,  # the paper: "updated once an hour"
        ),
    }
    runner = ABTestRunner(
        scenario, engines, ABTestConfig(num_days=3)
    )
    print("simulating three days of news traffic "
          f"({len(scenario.population)} users)...")
    result = runner.run()

    print()
    print(format_daily_ctr_series(result, "tencentrec", "original"))
    print()
    print(format_daily_ctr_series(result, "tencentrec", "original",
                                  metric="reads"))
    avg, low, high = result.improvement_summary("tencentrec", "original")
    print(f"\nCTR improvement: avg {avg:+.2f}% (min {low:+.2f}%, "
          f"max {high:+.2f}%)  [paper's News row: +6.62 (3.22..14.5)]")


if __name__ == "__main__":
    main()
