"""The full TencentRec stack on one machine (Figures 1–9).

Raw user actions are published to TDAccess; a Storm topology
(Pretreatment -> UserHistory -> ItemCount/PairCount -> SimList, plus the
multi-hash demographic branch) consumes them and maintains CF state in
TDStore; the recommender engine answers queries from that state; a
worker is then killed to show that state survives in TDStore.

Run:  python examples/full_system_topology.py
"""

from repro.engine import EngineConfig, RecommenderEngine, RecommenderFrontEnd
from repro.simulation import video_scenario
from repro.storm import LocalCluster
from repro.tdaccess import TDAccessCluster
from repro.tdstore import TDStoreCluster
from repro.topology import StateKeys
from repro.topology.framework import build_cf_topology
from repro.topology.spouts import TDAccessSpout
from repro.storm.topology import TopologyBuilder
from repro.storm.grouping import FieldsGrouping, ShuffleGrouping
from repro.topology import (
    ItemCountBolt,
    PairCountBolt,
    PretreatmentBolt,
    SimListBolt,
    UserHistoryBolt,
    GroupCountBolt,
)
from repro.utils.clock import SimClock


def main():
    clock = SimClock()
    scenario = video_scenario(seed=3, num_users=120, initial_items=100)

    # --- data access layer: applications publish raw actions -------------
    tdaccess = TDAccessCluster(clock, num_data_servers=3)
    tdaccess.create_topic("user_actions", num_partitions=6)
    producer = tdaccess.producer()
    print("generating a morning of traffic into TDAccess...")
    for hour in range(6):
        now = hour * 3600.0
        for user in scenario.population.users():
            if int(user.activity * 10) % 2 == 0 and hour % 2 == 0:
                for action in scenario.behavior.organic_session(user, now):
                    producer.send(
                        "user_actions",
                        {
                            "user": action.user_id,
                            "item": action.item_id,
                            "action": action.action,
                            "timestamp": action.timestamp,
                        },
                        key=action.user_id,
                    )
    print(f"published {producer.sent} raw action messages")

    # --- status storage + processing topology ----------------------------
    tdstore = TDStoreCluster(num_data_servers=4, num_instances=32)
    group_of = lambda user_id: (  # noqa: E731 - tiny adapter
        scenario.population.profile(user_id).gender or "global"
    )
    builder = TopologyBuilder("tencentrec-cf")
    builder.add_spout(
        "spout", lambda: TDAccessSpout(tdaccess.consumer("user_actions"), clock)
    )
    builder.add_bolt("pretreatment", PretreatmentBolt, 2).grouping(
        "spout", ShuffleGrouping(), "raw_action"
    )
    builder.add_bolt(
        "userHistory",
        lambda: UserHistoryBolt(tdstore.client, group_of=group_of),
        2,
    ).grouping("pretreatment", FieldsGrouping(["user"]), "user_action")
    builder.add_bolt(
        "itemCount", lambda: ItemCountBolt(tdstore.client), 2
    ).grouping("userHistory", FieldsGrouping(["item"]), "item_delta")
    builder.add_bolt(
        "pairCount", lambda: PairCountBolt(tdstore.client, pruning_delta=0.01), 2
    ).grouping("userHistory", FieldsGrouping(["pair_a", "pair_b"]), "pair_delta")
    builder.add_bolt(
        "simList", lambda: SimListBolt(tdstore.client, k=10), 2
    ).grouping("pairCount", FieldsGrouping(["item"]), "sim_update").grouping(
        "pairCount", FieldsGrouping(["item"]), "prune"
    )
    builder.add_bolt(
        "groupCount", lambda: GroupCountBolt(tdstore.client), 2
    ).grouping("userHistory", FieldsGrouping(["group"]), "group_delta")

    cluster = LocalCluster(clock=clock)
    metrics = cluster.submit(builder.build())
    cluster.run_until_idle()
    print(f"topology processed {metrics.total_executed()} tuple executions "
          f"across {len(metrics.tasks)} tasks")

    # --- query time --------------------------------------------------------
    engine = RecommenderEngine(
        tdstore.client(), EngineConfig(group_of=group_of)
    )
    front_end = RecommenderFrontEnd(engine, algorithm="cf")
    query_client = tdstore.client()
    shopper = next(
        user.user_id
        for user in scenario.population.users()
        if query_client.get(StateKeys.history(user.user_id))
    )
    print(f"\nrecommendations for {shopper}:")
    for rec in front_end.query(shopper, 5, clock.now()):
        print(f"  {rec.item_id}  score={rec.score:.2f}  via {rec.source}")

    # --- fault tolerance: kill a stateful worker --------------------------
    print("\nkilling a userHistory task (its in-memory cache is lost)...")
    cluster.kill_task("tencentrec-cf", "userHistory", 0)
    history = tdstore.client().get(StateKeys.history(shopper), {})
    print(f"user history for {shopper} still in TDStore: "
          f"{len(history)} items — state survived the crash")


if __name__ == "__main__":
    main()
