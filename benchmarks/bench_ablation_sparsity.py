"""Ablation: the demographic data-sparsity solution (Section 4.2).

The paper: most users have too little history for CF alone, so the
demographic complement (per-group hot items) fills the gap, and the
group matters — a user should get *their* group's hot items, not the
global list. We measure (a) coverage: how many queries CF-with-DB can
serve vs CF alone on a sparse population, and (b) group relevance: the
served complement matches the user's demographic group's tastes.
"""

import pytest

from repro.algorithms.demographic import DemographicRecommender
from repro.evaluation import TencentRecCFEngine
from repro.simulation import video_scenario

from benchmarks.conftest import SEED, report, users


@pytest.fixture(scope="module")
def sparse_world():
    """A day of traffic from only the most active 20% of users: everyone
    else is a cold-start user, the Figure 5 regime."""
    scenario = video_scenario(seed=SEED, num_users=users(300),
                              initial_items=200)
    population = scenario.population.users()
    active = sorted(population, key=lambda u: -u.activity)
    active = active[: len(active) // 5]
    profiles = scenario.population.profile
    with_db = TencentRecCFEngine(profiles)
    without_db = TencentRecCFEngine(profiles)
    without_db.db = DemographicRecommender(lambda user: None)  # global only
    actions = []
    for hour in range(24):
        now = hour * 3600.0
        for user in active:
            if hour % 2 == 0:
                actions.extend(scenario.behavior.organic_session(user, now))
    for action in actions:
        with_db.observe(action)
        without_db.observe(action)
    return scenario, active, with_db, without_db


def test_db_complement_serves_cold_users(sparse_world, benchmark):
    scenario, active, with_db, without_db = sparse_world
    active_ids = {user.user_id for user in active}
    cold = [
        user for user in scenario.population.users()
        if user.user_id not in active_ids
    ][:100]
    now = 25 * 3600.0
    served_with = sum(
        1 for user in cold if with_db.recommend(user.user_id, 5, now)
    )
    # coverage without demographics still works via the global hot list;
    # the difference is *which* items — measure group alignment
    def group_match_rate(engine):
        matches, total = 0, 0
        for user in cold:
            if user.profile.gender is None:
                continue
            for rec in engine.recommend(user.user_id, 5, now):
                item = scenario.catalog.get(rec.item_id)
                affinity = float(
                    user.base_preferences[item.topic]
                    * len(user.base_preferences)
                )
                matches += min(affinity, 2.0)
                total += 1
        return matches / total if total else 0.0

    grouped_alignment = group_match_rate(with_db)
    global_alignment = group_match_rate(without_db)
    report(
        "ablation_sparsity",
        "\n".join(
            [
                "Ablation: demographic data-sparsity solution (Section 4.2)",
                f"cold users queried:          {len(cold)}",
                f"served with DB complement:   {served_with}/{len(cold)}",
                "taste alignment of served complement "
                "(relative preference for the item's topic, ~1.0 = neutral):",
                f"  demographic groups:        {grouped_alignment:.3f}",
                f"  global hot list only:      {global_alignment:.3f}",
            ]
        ),
    )
    assert served_with >= len(cold) * 0.95  # near-total coverage
    assert grouped_alignment > global_alignment  # groups add relevance

    user = cold[0]
    benchmark(with_db.recommend, user.user_id, 5, now)


def test_demographic_clustered_cf_refines_similarities(benchmark):
    """The other §4.2 mechanism: running CF *within* demographic groups
    yields a more refined model. The regime where this matters (Figure
    5's argument) is shared "bridge" items whose companions differ by
    group: globally, a bridge item's similar list mixes both groups'
    companions; within a group it stays pure. We build exactly that
    world: every cohort engages the shared bridge items, men pair them
    with gadget items, women with fashion items."""
    import numpy as np

    from repro.algorithms.grouped import GroupedItemCF
    from repro.types import UserAction, UserProfile

    rng = np.random.default_rng(SEED)
    profiles = {}
    for index in range(users(200)):
        user_id = f"u{index}"
        gender = "male" if index % 2 == 0 else "female"
        profiles[user_id] = UserProfile(user_id, gender=gender,
                                        age=int(rng.integers(20, 24)))
    grouped = GroupedItemCF(profiles.get, linked_time=10**9)
    bridges = [f"bridge-{n}" for n in range(6)]
    t = 0.0
    for user_id, profile in profiles.items():
        companion_pool = "gadget" if profile.gender == "male" else "fashion"
        for __ in range(3):
            bridge = bridges[int(rng.integers(len(bridges)))]
            companion = f"{companion_pool}-{int(rng.integers(8))}"
            grouped.observe(UserAction(user_id, bridge, "click", t))
            grouped.observe(UserAction(user_id, companion, "click", t + 1))
            t += 10.0

    def purity(model, group_pool):
        """Fraction of bridge items' top-5 partners from the right pool."""
        good, total = 0, 0
        for bridge in bridges:
            for partner, __ in model.table.top_similar(bridge, 5):
                total += 1
                if partner.startswith(group_pool):
                    good += 1
        return good / total if total else 0.0

    male_model = grouped.model_for("male|age18-24")
    global_purity = purity(grouped.global_model, "gadget")
    group_purity = purity(male_model, "gadget")
    report(
        "ablation_grouped_cf",
        "\n".join(
            [
                "Ablation: demographic-clustered CF (Section 4.2)",
                "share of bridge items' top-5 similar items that match the",
                "male group's companion pool:",
                f"  global model:      {global_purity:.2f} "
                "(mixes both groups' companions)",
                f"  male group model:  {group_purity:.2f}",
            ]
        ),
    )
    assert group_purity > 0.7
    assert group_purity > 2 * global_purity

    benchmark(grouped.recommend, "u0", 5, t)
