"""Throughput and latency of the streaming pipeline (Sections 1, 6.1).

The paper's deployment handles 4 billion actions/day with sub-second
update latency by scaling tasks horizontally; correctness is independent
of parallelism because fields grouping pins each key to one task. Here
we measure (a) single-process ingest and query rates of the practical
CF, and (b) that the full Storm topology's results are identical across
parallelism levels while per-event tuple traffic stays bounded.
"""

import numpy as np
import pytest

from repro.algorithms.itemcf import HoeffdingPruner, PracticalItemCF
from repro.storm import LocalCluster
from repro.tdstore import TDStoreCluster
from repro.topology import StateKeys
from repro.topology.framework import CFTopologyConfig, build_cf_topology
from repro.types import UserAction
from repro.utils.clock import SimClock

from benchmarks.conftest import report, report_json


def action_stream(num_events=4000, num_users=400, num_items=300, seed=8):
    rng = np.random.default_rng(seed)
    kinds = ["browse", "click", "share", "purchase"]
    return [
        UserAction(
            f"u{int(rng.integers(num_users))}",
            f"i{int(rng.integers(num_items))}",
            kinds[int(rng.integers(len(kinds)))],
            float(index),
        )
        for index in range(num_events)
    ]


@pytest.fixture(scope="module")
def stream():
    return action_stream()


def test_cf_ingest_throughput(stream, benchmark):
    engine = PracticalItemCF(
        linked_time=6 * 3600.0,
        session_seconds=3600.0,
        window_sessions=24,
        pruner=HoeffdingPruner(0.001),
    )
    cursor = iter(stream * 1000)

    def ingest_one():
        engine.observe(next(cursor))

    benchmark(ingest_one)
    # the paper's bar: each event updates in well under a second
    assert benchmark.stats["mean"] < 0.01


def test_cf_query_latency(stream, benchmark):
    engine = PracticalItemCF(linked_time=6 * 3600.0)
    engine.observe_many(stream)
    users = [f"u{n}" for n in range(400)]
    cursor = iter(users * 10000)

    def query_one():
        engine.recommend(next(cursor), 10, now=len(stream) + 1.0)

    benchmark(query_one)
    assert benchmark.stats["mean"] < 0.05


_TOTALS_BY_PARALLELISM: dict[int, float] = {}
_SCALING_JSON: dict[str, dict] = {}


@pytest.mark.parametrize("parallelism", [1, 2, 4])
def test_topology_scaling(stream, parallelism, benchmark):
    """Same counts at any parallelism; tuple traffic per event bounded."""

    def run_once():
        clock = SimClock()
        store = TDStoreCluster(num_data_servers=4, num_instances=32)
        topology = build_cf_topology(
            "cf",
            list(stream[:1500]),
            clock,
            store.client,
            CFTopologyConfig(parallelism=parallelism),
        )
        cluster = LocalCluster(clock=clock)
        metrics = cluster.submit(topology)
        cluster.run_until_idle()
        return store, metrics

    store, metrics = benchmark.pedantic(run_once, rounds=1, iterations=1)
    client = store.client()
    total = sum(
        client.get(StateKeys.item_count(f"i{n}"), 0.0) for n in range(300)
    )
    report(
        f"throughput_parallelism_{parallelism}",
        "\n".join(
            [
                f"CF topology at parallelism {parallelism}",
                f"events: 1500, tuples transferred: "
                f"{metrics.tuples_transferred}",
                f"total executions: {metrics.total_executed()}",
                f"sum of itemCounts (must match across parallelism): "
                f"{total:.1f}",
            ]
        ),
    )
    assert total > 0
    _TOTALS_BY_PARALLELISM[parallelism] = total
    _SCALING_JSON[str(parallelism)] = {
        "events": 1500,
        "tuples_transferred": metrics.tuples_transferred,
        "total_executed": metrics.total_executed(),
        "item_count_sum": round(total, 3),
        "wall_seconds": round(benchmark.stats["mean"], 4),
    }
    report_json("throughput", {"topology_scaling": _SCALING_JSON})
    # fields grouping makes results independent of the task count
    first = next(iter(_TOTALS_BY_PARALLELISM.values()))
    assert all(
        abs(value - first) < 1e-6
        for value in _TOTALS_BY_PARALLELISM.values()
    )
