"""Table 1: overall CTR improvement across the four applications.

Paper (one month of production traffic):

    Applications  Algorithms  avg     min    max
    News          CB          6.62    3.22   14.5
    Videos        CF          18.17   7.27   30.52
    YiXun         CF          9.23    2.53   16.21
    QQ            CTR         10.01   1.75   25.4

We reproduce the *shape*: every application improves on every reported
day; videos (unanchored CF vs. a daily model) gains most; news (vs. an
hourly model) gains least among the CF-family rows; the YiXun rows sit
in between. The YiXun row aggregates the two Figure 13/14 positions.
"""

from repro.evaluation.reporting import format_improvement_table

from benchmarks.conftest import report


def test_table1_overall_improvement(
    news_experiment,
    video_experiment,
    yixun_price_experiment,
    yixun_purchase_experiment,
    ads_experiment,
    benchmark,
):
    yixun_daily = [
        (a + b) / 2
        for a, b in zip(
            yixun_price_experiment.reported_improvements(),
            yixun_purchase_experiment.reported_improvements(),
        )
    ]
    yixun_summary = {
        "avg": sum(yixun_daily) / len(yixun_daily),
        "min": min(yixun_daily),
        "max": max(yixun_daily),
    }
    rows = [
        ("News", "CB", news_experiment.summary()),
        ("Videos", "CF", video_experiment.summary()),
        ("YiXun", "CF", yixun_summary),
        ("QQ", "CTR", ads_experiment.summary()),
    ]
    paper = {
        "News": (6.62, 3.22, 14.5),
        "Videos": (18.17, 7.27, 30.52),
        "YiXun": (9.23, 2.53, 16.21),
        "QQ": (10.01, 1.75, 25.4),
    }
    lines = [format_improvement_table(rows), "", "paper reference:"]
    for app, (avg, low, high) in paper.items():
        lines.append(f"  {app:<8} avg {avg:>6.2f}  min {low:>6.2f}  max {high:>6.2f}")
    report("table1_overall", "\n".join(lines))

    # shape assertions: all applications improve on average
    for app, __, summary in rows:
        assert summary["avg"] > 0.0, f"{app} should improve on average"
    # videos (daily-stale CF, unanchored) beats news (hourly-stale CB)
    assert rows[1][2]["avg"] > rows[0][2]["avg"]

    # timing: a production query against the video CF engine
    engine = video_experiment.treatment()
    user_id = video_experiment.scenario.population.user_ids()[0]
    now = video_experiment.result.num_days * 86400.0
    benchmark(engine.recommend, user_id, 5, now)
