"""End-to-end ops/s of the CF topology vs. worker process count.

The paper scales TencentRec by adding Storm workers; the claim this
benchmark pins down is that the process substrate actually converts
extra worker processes into throughput. On a box with more cores than
workers that is unremarkable, so the benchmark is calibrated for the
harder case — a single shared CPU — where the only parallel resource
is the time workers spend *waiting*: every TDStore mutation is
fsync-durable before it is acknowledged, so a lone blocking worker
pays the full commit barrier per mutation, while N workers keep N
mutations in flight and the server host's group commit amortizes one
barrier across all of them (WAL records per commit, reported as ``K``,
is the direct measure of that amortization).

Two calibration choices keep the measurement meaningful:

- ``commit_floor`` pins the modeled commit-barrier latency to 1 ms.
  Virtualized hosts absorb ``fsync`` into the host page cache (100-300
  us here, vs the 0.5-2 ms a production SSD barrier costs), which both
  understates the real cost of durability and makes single-worker
  walls track host I/O noise instead of the workload. The floor is a
  WAL-level knob, off by default everywhere else, and is recorded in
  the emitted JSON.
- The action stream is dense (few users over a modest catalog), so
  histories grow and each action fans out into several co-occurrence
  updates — the write-heavy regime the CF pipeline is in once it has
  been running for a while, and the one where durability dominates.

Fields grouping keeps correctness independent of the worker count: the
incremental state (item counts, pair counts, similarity lists, user
histories) must be byte-identical at every parallelism level (the
acceptance tests additionally pin process-substrate state to the
simulator's).

Each worker count gets a fresh cluster per rep; a warm-up topology runs
first inside each cluster so worker spawn and module-import costs stay
out of the measured window. Worker counts are interleaved across reps
and the best rep per count is compared, because wall-clock noise on a
shared host arrives in bursts that would otherwise land on one side of
the ratio.

Writes ``BENCH_parallel.json``: ops/s per worker count (1, 2, 4) and
the 1->4 speedup, asserted >= 2x.
"""

import hashlib
import json
import time

from repro.runtime import ProcessSubstrate, topology_recipe
from repro.storm.grouping import FieldsGrouping, ShuffleGrouping
from repro.storm.topology import TopologyBuilder
from repro.topology.bolts_cf import (
    ItemCountBolt,
    PairCountBolt,
    SimListBolt,
    UserHistoryBolt,
)
from repro.topology.bolts_common import PretreatmentBolt
from repro.topology.spouts import TDAccessSpout
from repro.topology.state import StateKeys
from repro.utils.clock import SimClock
from repro.utils.rng import SeedSequenceFactory

from benchmarks.conftest import report, report_json
from tests.recovery.helpers import TOPIC, make_tdaccess

N_MESSAGES = 80
N_WARMUP = 40
NUM_USERS = 12
NUM_ITEMS = 64
BATCH = 24
PARALLELISM = 16  # tasks per stateful component; caps per-wave concurrency
PRETREAT_PARALLELISM = 8
WORKER_COUNTS = [1, 2, 4]
REPS = 2
COMMIT_FLOOR = 0.001  # modeled barrier; see module docstring
MAX_GROUP_WAIT = 0.001


def bench_payloads(
    n: int,
    num_users: int = NUM_USERS,
    num_items: int = NUM_ITEMS,
    seed: int = 11,
    step_seconds: float = 30.0,
):
    """Deterministic dense action stream: few users, growing histories."""
    rng = SeedSequenceFactory(seed).generator("bench-actions")
    payloads = []
    now = 0.0
    for _ in range(n):
        now += step_seconds
        payloads.append(
            {
                "user": f"u{int(rng.integers(0, num_users))}",
                "item": f"i{int(rng.integers(0, num_items))}",
                "action": "click",
                "timestamp": now,
            }
        )
    return payloads


def cf_bench_topology(
    batch_size: int = BATCH,
    parallelism: int = PARALLELISM,
    pretreat_parallelism: int = PRETREAT_PARALLELISM,
    topo_name: str = "cf-bench",
):
    """Recipe-compatible CF topology sized for the worker-scaling bench."""

    def factory(clock, client_factory, consumer):
        builder = TopologyBuilder(topo_name)
        builder.add_spout(
            "source", lambda: TDAccessSpout(consumer, clock, batch_size)
        )
        builder.add_bolt(
            "pretreatment", PretreatmentBolt, parallelism=pretreat_parallelism
        ).grouping("source", ShuffleGrouping(), "raw_action")
        builder.add_bolt(
            "userHistory",
            lambda: UserHistoryBolt(client_factory),
            parallelism=parallelism,
        ).grouping("pretreatment", FieldsGrouping(["user"]), "user_action")
        builder.add_bolt(
            "itemCount",
            lambda: ItemCountBolt(client_factory),
            parallelism=parallelism,
        ).grouping("userHistory", FieldsGrouping(["item"]), "item_delta")
        builder.add_bolt(
            "pairCount",
            lambda: PairCountBolt(client_factory),
            parallelism=parallelism,
        ).grouping(
            "userHistory", FieldsGrouping(["pair_a", "pair_b"]), "pair_delta"
        )
        builder.add_bolt(
            "simList",
            lambda: SimListBolt(client_factory),
            parallelism=parallelism,
        ).grouping(
            "pairCount", FieldsGrouping(["item"]), "sim_update"
        ).grouping("pairCount", FieldsGrouping(["item"]), "prune")
        return builder.build()

    return factory


def state_fingerprint(client) -> str:
    """Canonical hash of every piece of CF state the pipeline maintains."""
    items = [f"i{i}" for i in range(NUM_ITEMS)]
    users = [f"u{i}" for i in range(NUM_USERS)]
    state = {
        "item_counts": {
            item: client.get(StateKeys.item_count(item), 0.0) for item in items
        },
        "sim_lists": {
            item: client.get(StateKeys.sim_list(item), None) for item in items
        },
        "histories": {
            user: client.get(StateKeys.history(user), None) for user in users
        },
        "pair_counts": {
            f"{a}|{b}": value
            for i, a in enumerate(items)
            for b in items[i + 1 :]
            if (value := client.get(StateKeys.pair_count(a, b), None))
            is not None
        },
    }
    canon = json.dumps(state, sort_keys=True).encode()
    return hashlib.sha256(canon).hexdigest()


def run_once(worker_procs: int):
    with ProcessSubstrate(
        worker_procs=worker_procs,
        server_procs=1,
        max_group_wait=MAX_GROUP_WAIT,
        commit_floor=COMMIT_FLOOR,
    ) as sub:
        clock = SimClock()
        store = sub.build_tdstore(4, 16)
        cluster = sub.build_storm(clock)

        def one_pass(topo_name: str, count: int, seed: int):
            consumer = make_tdaccess(
                bench_payloads(count, seed=seed)
            ).consumer(TOPIC)
            factory = topology_recipe(
                "benchmarks.bench_parallel",
                "cf_bench_topology",
                topo_name=topo_name,
            )
            topology = factory(clock, store.client, consumer)
            cluster.submit(topology)
            start = time.perf_counter()
            cluster.run_until_idle()
            wall = time.perf_counter() - start
            metrics = cluster.metrics(topology.name)
            executed = sum(m.executed for m in metrics.tasks.values())
            return executed, wall

        # spawn, module-import and first-commit costs land here
        one_pass("warmup", N_WARMUP, seed=7)
        executed, wall = one_pass("bench", N_MESSAGES, seed=11)
        host_stats = store.host_stats()
        wal_records = sum(h["wal"]["records"] for h in host_stats)
        wal_commits = sum(h["wal"]["commits"] for h in host_stats)
        return {
            "wall_seconds": wall,
            "executed": executed,
            "ops_per_sec": executed / wall,
            "records_per_commit": wal_records / max(wal_commits, 1),
            "fingerprint": state_fingerprint(store.client()),
        }


def test_parallel_scaling():
    runs: dict[int, list] = {w: [] for w in WORKER_COUNTS}
    reference = None
    for _rep in range(REPS):
        # interleave worker counts so host noise bursts hit all of them
        for workers in WORKER_COUNTS:
            run = run_once(workers)
            # correctness first: every run, at every worker count, must
            # produce identical incremental state
            if reference is None:
                reference = run["fingerprint"]
            assert run["fingerprint"] == reference, (
                f"state diverged at {workers} workers"
            )
            runs[workers].append(run)

    results = {}
    for workers in WORKER_COUNTS:
        best = max(runs[workers], key=lambda r: r["ops_per_sec"])
        results[workers] = {
            "workers": workers,
            "reps": REPS,
            "executed": best["executed"],
            "wall_seconds": round(best["wall_seconds"], 4),
            "ops_per_sec": round(best["ops_per_sec"], 1),
            "all_ops_per_sec": [
                round(r["ops_per_sec"], 1) for r in runs[workers]
            ],
            "records_per_commit": round(best["records_per_commit"], 2),
        }

    speedup = results[4]["ops_per_sec"] / results[1]["ops_per_sec"]
    payload = {
        "topology": "cf-bench",
        "messages": N_MESSAGES,
        "warmup_messages": N_WARMUP,
        "num_users": NUM_USERS,
        "num_items": NUM_ITEMS,
        "batch_size": BATCH,
        "parallelism": PARALLELISM,
        "durable": True,
        "commit_floor_seconds": COMMIT_FLOOR,
        "max_group_wait_seconds": MAX_GROUP_WAIT,
        "per_worker_count": {str(w): results[w] for w in WORKER_COUNTS},
        "speedup_1_to_2": round(
            results[2]["ops_per_sec"] / results[1]["ops_per_sec"], 2
        ),
        "speedup_1_to_4": round(speedup, 2),
    }
    report_json("parallel", payload)
    report(
        "parallel",
        "\n".join(
            ["CF topology end-to-end ops/s vs worker processes"]
            + [
                f"  {w} workers: {results[w]['ops_per_sec']:>8.1f} ops/s "
                f"({results[w]['wall_seconds']:.2f}s, "
                f"{results[w]['executed']} executions, "
                f"K={results[w]['records_per_commit']:.2f})"
                for w in WORKER_COUNTS
            ]
            + [f"  speedup 1->4: {speedup:.2f}x"]
        ),
    )
    assert speedup >= 2.0, f"1->4 worker speedup only {speedup:.2f}x"
