"""Figure 13: CTR of the YiXun similar-price recommendation, one week.

Paper: daily improvements 16.39 / 18.57 / 15.38 / 13.75 / 6.10 / 13.75 /
18.29 percent — the *larger* of the two YiXun positions, because the
similar-price candidate pool is sparse and the real-time interest check
plus DB ranking do most of the work (Section 6.4). We reproduce: positive
improvement every reported day, larger on average than Figure 14's.
"""

from repro.evaluation.reporting import format_daily_ctr_series

from benchmarks.conftest import report

PAPER_DAILY = [16.39, 18.57, 15.38, 13.75, 6.10, 13.75, 18.29]


def test_fig13_similar_price_ctr(
    yixun_price_experiment, yixun_purchase_experiment, benchmark
):
    table = format_daily_ctr_series(
        yixun_price_experiment.result, "tencentrec", "original"
    )
    improvements = yixun_price_experiment.reported_improvements()
    lines = [
        table,
        "",
        "paper daily improvements: "
        + " ".join(f"{v:+.2f}%" for v in PAPER_DAILY),
        "ours (days 2..8):         "
        + " ".join(f"{v:+.2f}%" for v in improvements),
    ]
    report("fig13_yixun_price", "\n".join(lines))

    assert all(v > 0 for v in improvements)
    price_avg = sum(improvements) / len(improvements)
    purchase = yixun_purchase_experiment.reported_improvements()
    purchase_avg = sum(purchase) / len(purchase)
    # the paper's crossover: similar-price gains exceed similar-purchase
    assert price_avg > purchase_avg

    engine = yixun_price_experiment.treatment()
    scenario = yixun_price_experiment.scenario
    user = scenario.population.users()[0]
    now = yixun_price_experiment.result.num_days * 86400.0
    anchor = scenario.behavior.pick_browsing_item(user, now)
    benchmark(
        engine.recommend, user.user_id, 5, now, {"anchor": anchor.item_id}
    )
