"""Shared infrastructure for the reproduction benchmarks.

Each paper exhibit (Table 1, Figures 10/11/13/14) is regenerated once
per pytest session by a cached experiment fixture; the pytest-benchmark
timings then exercise the hot query/ingest paths of the engines that
experiment trained. Reproduced tables are printed and also written to
``benchmarks/results/`` so they survive pytest's stdout capture.

Scale: the paper measured a month (Table 1) / a week (Figures 10-14) of
production traffic; we simulate 8 days (1 warm-up + 7 reported) over a
few hundred users per application, which preserves the comparisons'
shape at laptop cost. Set REPRO_BENCH_DAYS / REPRO_BENCH_USERS to scale.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.evaluation import (
    ABTestConfig,
    ABTestRunner,
    PriceIndex,
    SimilarPriceEngine,
    SimilarPurchaseEngine,
    TencentRecCBEngine,
    TencentRecCFEngine,
    TencentRecCTREngine,
    make_original,
)
from repro.simulation import (
    ads_scenario,
    ecommerce_scenario,
    news_scenario,
    video_scenario,
)

SEED = 2015  # the paper's year
BENCH_DAYS = int(os.environ.get("REPRO_BENCH_DAYS", "8"))
USER_SCALE = float(os.environ.get("REPRO_BENCH_USERS", "1.0"))

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent


def users(base: int) -> int:
    return max(50, int(base * USER_SCALE))


def report(name: str, text: str):
    """Print a reproduced exhibit and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n")


def report_json(name: str, payload: dict):
    """Machine-readable exhibit: ``BENCH_<name>.json`` at the repo root,
    where CI jobs and downstream tooling pick it up without parsing
    pytest output."""
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    (REPO_ROOT / f"BENCH_{name}.json").write_text(text, encoding="utf-8")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(text, encoding="utf-8")


def alive_check(scenario):
    def item_alive(item_id, now):
        return scenario.catalog.get(item_id).meta.is_active(now)

    return item_alive


class Experiment:
    """One completed A/B run plus handles for the timing paths."""

    def __init__(self, scenario, engines, result, anchored=False):
        self.scenario = scenario
        self.engines = engines
        self.result = result
        self.anchored = anchored

    def treatment(self):
        return self.engines["tencentrec"]

    def reported_improvements(self, metric="ctr"):
        """Daily improvements with the warm-up day dropped."""
        return self.result.daily_improvements(
            "tencentrec", "original", metric
        )[1:]

    def summary(self, metric="ctr"):
        daily = self.reported_improvements(metric)
        return {
            "avg": sum(daily) / len(daily),
            "min": min(daily),
            "max": max(daily),
        }


def run_experiment(scenario, engine_factory, interval, anchored=False,
                   feed_impressions=False, filter_consumed=True):
    engines = {
        "tencentrec": engine_factory(),
        "original": make_original(
            engine_factory(), interval, filter_consumed=filter_consumed
        ),
    }
    runner = ABTestRunner(
        scenario,
        engines,
        ABTestConfig(
            num_days=BENCH_DAYS,
            anchored=anchored,
            feed_impressions=feed_impressions,
        ),
    )
    return Experiment(scenario, engines, runner.run(), anchored)


@pytest.fixture(scope="session")
def news_experiment():
    """News vs. the hourly-refresh Original (Figures 10-11, Table 1 row 1)."""
    scenario = news_scenario(
        seed=SEED, num_users=users(300), initial_items=100,
        arrivals_per_day=200,
    )
    profiles = scenario.population.profile
    item_alive = alive_check(scenario)

    def factory():
        return TencentRecCBEngine(profiles, item_alive=item_alive)

    return run_experiment(scenario, factory, interval=3600.0)


@pytest.fixture(scope="session")
def video_experiment():
    """Videos vs. the daily-refresh Original (Table 1 row 2)."""
    scenario = video_scenario(seed=SEED, num_users=users(500),
                              initial_items=200)
    profiles = scenario.population.profile
    item_alive = alive_check(scenario)

    def factory():
        return TencentRecCFEngine(profiles, recent_k=3, item_alive=item_alive)

    return run_experiment(scenario, factory, interval=86400.0)


@pytest.fixture(scope="session")
def yixun_price_experiment():
    """YiXun similar-price position vs. the daily Original (Figure 13)."""
    scenario = ecommerce_scenario(seed=SEED, num_users=users(400),
                                  initial_items=300)
    profiles = scenario.population.profile
    item_alive = alive_check(scenario)

    def factory():
        return SimilarPriceEngine(
            profiles, PriceIndex(), recent_k=5, item_alive=item_alive
        )

    return run_experiment(scenario, factory, interval=86400.0, anchored=True)


@pytest.fixture(scope="session")
def yixun_purchase_experiment():
    """YiXun similar-purchase position vs. the daily Original (Figure 14)."""
    scenario = ecommerce_scenario(seed=SEED, num_users=users(400),
                                  initial_items=300)
    profiles = scenario.population.profile
    item_alive = alive_check(scenario)

    def factory():
        return SimilarPurchaseEngine(profiles, item_alive=item_alive)

    return run_experiment(scenario, factory, interval=86400.0, anchored=True)


@pytest.fixture(scope="session")
def ads_experiment():
    """QQ ads, situational CTR vs. a six-hourly Original (Table 1 row 4)."""
    scenario = ads_scenario(seed=SEED, num_users=users(400), num_ads=40)
    profiles = scenario.population.profile
    item_alive = alive_check(scenario)

    def factory():
        return TencentRecCTREngine(profiles, item_alive=item_alive)

    return run_experiment(
        scenario,
        factory,
        interval=6 * 3600.0,
        feed_impressions=True,
        # ads are re-shown by design; the display layer does not filter
        # previously seen advertisements
        filter_consumed=False,
    )
