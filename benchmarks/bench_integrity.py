"""Integrity economics: what the checksums cost and what they catch.

Every WAL record and RPC frame now carries a CRC32C. This benchmark
prices that defense and proves it airtight, writing the CI gate to
``BENCH_integrity.json``:

- **WAL commit overhead**: CRC share of append+group-commit time under
  the same 1 ms modeled commit barrier ``bench_parallel.py`` pins
  (virtualized ``fsync`` absorbs into the host page cache at 0.1-0.3 ms
  against a production SSD's 0.5-2 ms write barrier, which would
  inflate the checksum's apparent share). Gate: <= 10%.
- **RPC round-trip overhead**: CRC share of a live loopback round trip
  (four checksum passes: encode + verify on each side). Reported, not
  bound to 10%: loopback has no propagation delay, so the pure-python
  CRC is a large share of a ~150 us trip here while it would be noise
  against a real network RTT; the gate is a loose regression tripwire.
- **Detection rate**: every deterministically corrupted RPC frame is
  caught by the stream decoder, every poisoned WAL record by the replay
  scan — and replay fail-stops instead of applying past the damage.
  Gate: detected == injected, rate == 1.0.
- **Scrub throughput**: keys/s for a full anti-entropy pass over every
  host/slave pair, with every injected silent corruption detected and
  read-repaired, second pass clean. Gate: zero lost keys.

Run with: PYTHONPATH=src python -m pytest benchmarks/bench_integrity.py -q -s
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.runtime.rpc import RpcClient, RpcServer, dispatch_to_methods
from repro.runtime.wal import GroupCommitWal, WalError, replay
from repro.runtime.wire import (
    HEADER_SIZE,
    Request,
    Response,
    StreamDecoder,
    corrupt_frame,
    crc32c,
    encode_frame,
)
from repro.tdstore import TDStoreCluster
from repro.tdstore.scrub import ReplicaScrubber

from benchmarks.conftest import SEED, report, report_json

# same modeled write-barrier as bench_parallel.py: group-commit (and
# therefore checksum) economics are priced against a production SSD
# barrier, not this container's page-cache fsync
COMMIT_FLOOR = 0.001
WAL_RECORDS = 4000
GROUP_SIZE = 8

RPC_CALLS = 400

FRAMES_TO_CORRUPT = 64
WAL_RECORDS_TO_POISON = 8

SCRUB_SERVERS = 4
SCRUB_INSTANCES = 16
SCRUB_KEYS = 2000
SCRUB_CORRUPTIONS = 12

# the ISSUE gate: checksum overhead <= 10% of WAL commit throughput.
# The RPC tripwire is looser — loopback round trips carry no network
# latency, so the checksum share there is structurally inflated.
MAX_WAL_CRC_SHARE = 0.10
MAX_RPC_CRC_SHARE = 0.85


def wal_record(i: int) -> dict:
    return {
        "m": "put",
        "args": [i % SCRUB_INSTANCES, f"itemCount:item-{i}", {"count": float(i)}],
    }


def bench_wal_overhead(tmp_path) -> dict:
    records = [wal_record(i) for i in range(WAL_RECORDS)]
    payloads = [encode_frame(r)[HEADER_SIZE:] for r in records]
    payload_bytes = sum(len(p) for p in payloads)

    start = time.perf_counter()
    for payload in payloads:
        crc32c(payload)
    crc_seconds = time.perf_counter() - start

    def run(floor: float) -> float:
        path = str(tmp_path / f"bench-{floor}.wal")
        begin = time.perf_counter()
        with GroupCommitWal(path, commit_floor=floor) as wal:
            for i, record in enumerate(records):
                wal.append(record)
                if i % GROUP_SIZE == GROUP_SIZE - 1:
                    wal.commit()
            wal.commit()
        return time.perf_counter() - begin

    total_seconds = run(COMMIT_FLOOR)
    raw_seconds = run(0.0)  # container-fsync number, context only

    return {
        "records": WAL_RECORDS,
        "payload_bytes": payload_bytes,
        "group_size": GROUP_SIZE,
        "commit_floor_seconds": COMMIT_FLOOR,
        "crc_seconds": round(crc_seconds, 4),
        "total_seconds": round(total_seconds, 4),
        "crc_share": round(crc_seconds / total_seconds, 4),
        "records_per_second": round(WAL_RECORDS / total_seconds, 1),
        "crc_mb_per_second": round(payload_bytes / crc_seconds / 1e6, 2),
        "raw_records_per_second": round(WAL_RECORDS / raw_seconds, 1),
        "raw_crc_share": round(crc_seconds / raw_seconds, 4),
    }


class EchoReceiver:
    def echo(self, value):
        return value


def bench_rpc_overhead() -> dict:
    server = RpcServer(dispatch_to_methods(lambda target: EchoReceiver()))
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}
    )
    thread.start()
    client = RpcClient("127.0.0.1", server.port, timeout=5.0)
    value = {"count": 1234.5, "key": "itemCount:item-1234"}
    try:
        client.call("echo", value)  # connect + warm
        start = time.perf_counter()
        for _ in range(RPC_CALLS):
            client.call("echo", value)
        round_trip = (time.perf_counter() - start) / RPC_CALLS
    finally:
        client.close()
        server.stop()
        thread.join(timeout=5.0)

    # the round trip checksums four payloads: request encode (client),
    # request verify (server), response encode (server), response
    # verify (client) — price them against the measured trip
    request_payload = encode_frame(
        Request("echo", (value,), target=None)
    )[HEADER_SIZE:]
    response_payload = encode_frame(Response(value=value))[HEADER_SIZE:]
    reps = 2000
    start = time.perf_counter()
    for _ in range(reps):
        crc32c(request_payload)
        crc32c(response_payload)
    crc_per_trip = 2 * (time.perf_counter() - start) / reps

    return {
        "calls": RPC_CALLS,
        "round_trip_us": round(round_trip * 1e6, 1),
        "crc_us_per_trip": round(crc_per_trip * 1e6, 2),
        "crc_share": round(crc_per_trip / round_trip, 4),
    }


def bench_detection(tmp_path) -> dict:
    # frames: every deterministically damaged frame trips the decoder
    frames_detected = 0
    decoder = StreamDecoder()
    for i in range(FRAMES_TO_CORRUPT):
        frame = corrupt_frame(encode_frame(wal_record(i)), run=1 + i % 4)
        try:
            decoder.feed(frame)
        except Exception:
            frames_detected += 1
    assert decoder.feed(encode_frame("still synchronized")) == [
        "still synchronized"
    ]

    # WAL: poison complete records mid-log, then replay-scan the file.
    # Replay must fail-stop at the first damaged record, keep scanning
    # to count the rest, and never apply past the damage.
    path = str(tmp_path / "poisoned.wal")
    total, poison_every = 200, 200 // WAL_RECORDS_TO_POISON
    first_poisoned = poison_every - 1
    with open(path, "wb") as fh:
        for i in range(total):
            frame = encode_frame(wal_record(i))
            if i % poison_every == poison_every - 1:
                frame = corrupt_frame(frame, run=8)
            fh.write(frame)
    applied: list = []
    with pytest.raises(WalError) as excinfo:
        replay(path, applied.append)
    wal_detected = excinfo.value.corrupt_records
    # fail-stop: whatever was applied is a prefix of the intact records
    # strictly before the first poisoned one — nothing past the damage
    intact_prefix = [wal_record(i) for i in range(first_poisoned)]
    assert applied == intact_prefix[: len(applied)]

    injected = FRAMES_TO_CORRUPT + WAL_RECORDS_TO_POISON
    detected = frames_detected + wal_detected
    return {
        "frames_injected": FRAMES_TO_CORRUPT,
        "frames_detected": frames_detected,
        "wal_records_injected": WAL_RECORDS_TO_POISON,
        "wal_records_detected": wal_detected,
        "injected": injected,
        "detected": detected,
        "rate": detected / injected,
    }


def bench_scrub() -> dict:
    cluster = TDStoreCluster(
        num_data_servers=SCRUB_SERVERS, num_instances=SCRUB_INSTANCES
    )
    client = cluster.client()
    expected = {}
    for i in range(SCRUB_KEYS):
        key, value = f"itemCount:item-{i}", {"count": float(i)}
        client.put(key, value)
        expected[key] = value
    cluster.sync_replicas()

    table = cluster.config.route_table()
    for i in range(SCRUB_CORRUPTIONS):
        key = f"itemCount:item-{i * (SCRUB_KEYS // SCRUB_CORRUPTIONS)}"
        route = table.route_for_key(key)
        slave = cluster.config.server(route.slave)
        slave.engine(route.instance).put(key, {"count": -1.0})

    scrubber = ReplicaScrubber(cluster)
    start = time.perf_counter()
    first = scrubber.scrub()
    scrub_seconds = time.perf_counter() - start
    second = scrubber.scrub()

    lost = sum(1 for key, value in expected.items() if client.get(key) != value)
    return {
        "servers": SCRUB_SERVERS,
        "instances": SCRUB_INSTANCES,
        "keys": SCRUB_KEYS,
        "corruptions_injected": SCRUB_CORRUPTIONS,
        "corruptions_detected": first.corruptions_detected,
        "keys_repaired": first.keys_repaired,
        "divergent_buckets": first.divergent_buckets,
        "scrub_seconds": round(scrub_seconds, 4),
        "keys_per_second": round(SCRUB_KEYS / scrub_seconds, 1),
        "instances_per_second": round(SCRUB_INSTANCES / scrub_seconds, 2),
        "second_pass_clean": second.clean,
        "lost_keys": lost,
    }


def test_integrity_costs_and_detection(tmp_path):
    wal = bench_wal_overhead(tmp_path)
    rpc = bench_rpc_overhead()
    detection = bench_detection(tmp_path)
    scrub = bench_scrub()

    # the gates CI re-checks from the JSON
    assert wal["crc_share"] <= MAX_WAL_CRC_SHARE
    assert rpc["crc_share"] <= MAX_RPC_CRC_SHARE
    assert detection["rate"] == 1.0
    assert detection["detected"] == detection["injected"]
    assert scrub["corruptions_detected"] == SCRUB_CORRUPTIONS
    assert scrub["second_pass_clean"] is True
    assert scrub["lost_keys"] == 0

    payload = {
        "seed": SEED,
        "max_wal_crc_share": MAX_WAL_CRC_SHARE,
        "max_rpc_crc_share": MAX_RPC_CRC_SHARE,
        "wal": wal,
        "rpc": rpc,
        "detection": detection,
        "scrub": scrub,
    }
    report_json("integrity", payload)

    lines = [
        "Integrity: checksum cost and detection",
        f"  WAL: crc share {wal['crc_share']:.1%} of commit time "
        f"({wal['records_per_second']:.0f} rec/s at "
        f"{COMMIT_FLOOR * 1e3:.0f} ms barrier, group {GROUP_SIZE}; "
        f"crc {wal['crc_mb_per_second']:.1f} MB/s)",
        f"  RPC: crc share {rpc['crc_share']:.1%} of "
        f"{rpc['round_trip_us']:.0f} us loopback round trip",
        f"  detection: {detection['detected']}/{detection['injected']} "
        f"(frames {detection['frames_detected']}, WAL records "
        f"{detection['wal_records_detected']}), rate "
        f"{detection['rate']:.0%}",
        f"  scrub: {scrub['keys_per_second']:.0f} keys/s over "
        f"{SCRUB_SERVERS} servers / {SCRUB_INSTANCES} instances, "
        f"{scrub['corruptions_detected']}/{SCRUB_CORRUPTIONS} silent "
        f"corruptions repaired, second pass clean: "
        f"{scrub['second_pass_clean']}, lost keys: {scrub['lost_keys']}",
    ]
    report("integrity", "\n".join(lines))


if __name__ == "__main__":
    raise SystemExit(
        os.system(
            "PYTHONPATH=src python -m pytest benchmarks/bench_integrity.py -q -s"
        )
    )
