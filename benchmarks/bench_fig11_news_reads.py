"""Figure 11: average read count per user of Tencent News over one week.

Paper: TencentRec's reads-per-user curve sits above the Original's on
every day of the week. We reproduce that dominance with the
recommendation-driven read counts of the same news experiment.
"""

from repro.evaluation.reporting import format_daily_ctr_series

from benchmarks.conftest import report


def test_fig11_news_reads_per_user(news_experiment, benchmark):
    table = format_daily_ctr_series(
        news_experiment.result, "tencentrec", "original", metric="reads"
    )
    improvements = news_experiment.reported_improvements(metric="reads")
    report(
        "fig11_news_reads",
        table
        + "\n\npaper: the TencentRec curve is above the Original every day",
    )

    treatment = news_experiment.result.series("tencentrec").reads_series()[1:]
    control = news_experiment.result.series("original").reads_series()[1:]
    above = sum(1 for t, c in zip(treatment, control) if t > c)
    assert above >= len(treatment) - 1
    assert sum(improvements) / len(improvements) > 0.0

    # timing: the reads metric aggregation itself
    benchmark(
        news_experiment.result.daily_improvements,
        "tencentrec",
        "original",
        "reads",
    )
