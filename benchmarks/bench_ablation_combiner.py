"""Ablation: the combiner under hot-item skew (Section 5.3).

The paper: a hot item funnels a flood of identical-key updates to one
worker; buffering them in a combiner map and flushing per interval
collapses the TDStore write storm, and "in a temporal burst situation,
the combiner's efficacy will be even improved". We replay a Zipf-skewed
item-delta stream through ItemCountBolt with and without the combiner
and count TDStore writes; then the same stream with a hotter skew.
"""

import numpy as np
import pytest

from repro.storm import FieldsGrouping, LocalCluster, TopologyBuilder
from repro.tdstore import TDStoreCluster
from repro.topology import ItemCountBolt, StateKeys
from repro.topology.spouts import ActionSpout
from repro.topology.bolts_cf import UserHistoryBolt
from repro.types import UserAction
from repro.utils.clock import SimClock

from benchmarks.conftest import report


def zipf_actions(num_events=3000, num_items=200, exponent=1.2, seed=3):
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_items + 1, dtype=float)
    weights = ranks**-exponent
    weights /= weights.sum()
    actions = []
    for index in range(num_events):
        item = int(rng.choice(num_items, p=weights))
        actions.append(
            UserAction(f"u{index % 300}", f"item-{item}", "click",
                       float(index))
        )
    return actions


def run_item_counting(actions, use_combiner, parallelism=2):
    clock = SimClock()
    store = TDStoreCluster(num_data_servers=2, num_instances=8)
    builder = TopologyBuilder("counting")
    builder.add_spout("spout", lambda: ActionSpout(list(actions), clock))
    builder.add_bolt(
        "userHistory", lambda: UserHistoryBolt(store.client), parallelism
    ).grouping("spout", FieldsGrouping(["user"]), "user_action")
    builder.add_bolt(
        "itemCount",
        lambda: ItemCountBolt(store.client, use_combiner=use_combiner),
        parallelism,
    ).grouping("userHistory", FieldsGrouping(["item"]), "item_delta")
    cluster = LocalCluster(clock=clock, tick_interval=60.0)
    metrics = cluster.submit(builder.build())
    cluster.run_until_idle()
    deltas = metrics.component_executed("itemCount")
    if use_combiner:
        count_writes = 0
        for index in range(parallelism):
            bolt = cluster.task_instance("counting", "itemCount", index)
            count_writes += bolt.combiner.flushed_keys
    else:
        count_writes = deltas  # one read-modify-write per delta
    hottest = store.client().get(StateKeys.item_count("item-0"), 0.0)
    return deltas, count_writes, hottest


@pytest.fixture(scope="module")
def combiner_results():
    actions = zipf_actions()
    deltas, exact_writes, exact_hot = run_item_counting(actions, False)
    __, combined_writes, combined_hot = run_item_counting(actions, True)
    burst = zipf_actions(exponent=2.5)
    burst_deltas, burst_exact, ___ = run_item_counting(burst, False)
    ____, burst_combined, _____ = run_item_counting(burst, True)
    return {
        "deltas": deltas,
        "exact": (exact_writes, exact_hot),
        "combined": (combined_writes, combined_hot),
        "burst_saving": 1 - burst_combined / burst_exact,
        "normal_saving": 1 - combined_writes / exact_writes,
    }


def test_combiner_reduces_writes(combiner_results, benchmark):
    exact_writes, exact_hot = combiner_results["exact"]
    combined_writes, combined_hot = combiner_results["combined"]
    report(
        "ablation_combiner",
        "\n".join(
            [
                "Ablation: combiner under hot-item skew (Section 5.3)",
                f"itemCount deltas:                  "
                f"{combiner_results['deltas']}",
                f"itemCount writes, no combiner:     {exact_writes}",
                f"itemCount writes, with combiner:   {combined_writes}"
                f"  ({combiner_results['normal_saving']:.0%} saved)",
                f"hottest itemCount identical:       "
                f"{exact_hot == combined_hot} ({exact_hot})",
                f"write saving at burst skew (zipf 2.5): "
                f"{combiner_results['burst_saving']:.0%} "
                f"(vs {combiner_results['normal_saving']:.0%} at zipf 1.2)",
            ]
        ),
    )
    assert combined_writes < exact_writes
    assert exact_hot == combined_hot  # the optimization is lossless
    # the paper: combining helps *more* when traffic is burstier
    assert combiner_results["burst_saving"] > combiner_results["normal_saving"]

    # timing: one combiner-buffered count update
    from repro.topology.state import CachedStore, Combiner

    store = TDStoreCluster(num_data_servers=2, num_instances=8)
    combiner = Combiner(CachedStore(store.client()), "add")
    benchmark(combiner.add, "itemCount:hot", 1.0)
