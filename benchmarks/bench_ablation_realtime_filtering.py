"""Ablation: the real-time filtering mechanisms (Section 4.3).

TencentRec's sensitivity to recent data comes from the sliding window
(Eq 10) plus recent-k personalized filtering. We pit the full real-time
CF engine against a variant with both mechanisms disabled (lifetime
counts, a very large recent-k) on the drifting video workload — the
paper's claim is that forgetting old data is what tracks users'
real-time interests.
"""

import pytest

from repro.evaluation import (
    ABTestConfig,
    ABTestRunner,
    TencentRecCFEngine,
)
from repro.simulation import video_scenario

from benchmarks.conftest import SEED, alive_check, report, users


@pytest.fixture(scope="module")
def filtering_ablation():
    scenario = video_scenario(seed=SEED, num_users=users(300),
                              initial_items=300)
    profiles = scenario.population.profile
    item_alive = alive_check(scenario)
    engines = {
        "realtime-filtering": TencentRecCFEngine(
            profiles, recent_k=3, item_alive=item_alive
        ),
        "no-filtering": TencentRecCFEngine(
            profiles,
            recent_k=50,  # effectively no personalized filter
            session_seconds=None,  # no sliding window: lifetime counts
            window_sessions=None,
            item_alive=item_alive,
        ),
    }
    runner = ABTestRunner(scenario, engines, ABTestConfig(num_days=6))
    return runner.run()


def test_realtime_filtering_improves_ctr(filtering_ablation, benchmark):
    improvements = filtering_ablation.daily_improvements(
        "realtime-filtering", "no-filtering"
    )[1:]
    average = sum(improvements) / len(improvements)
    report(
        "ablation_realtime_filtering",
        "\n".join(
            [
                "Ablation: sliding window + recent-k filtering (Section 4.3)",
                "daily CTR improvement of real-time filtering over the",
                "no-forgetting variant (both fully real-time otherwise):",
                "  " + " ".join(f"{v:+.1f}%" for v in improvements),
                f"  average: {average:+.1f}%",
            ]
        ),
    )
    positive_days = sum(1 for v in improvements if v > 0)
    assert positive_days >= len(improvements) - 1
    assert average > 0.0

    benchmark(
        filtering_ablation.daily_improvements,
        "realtime-filtering",
        "no-filtering",
    )
