"""Streaming-VQ retrieval quality and throughput.

Builds a clustered catalog the way the topology would — rows learned by
SGD steps toward group context anchors, every observation folded into
the streaming index under tuple-derived op ids — then measures:

* recall@10 against exact brute-force re-ranking, swept over probe
  widths (the retriever's latency/recall dial);
* candidate throughput of the read path at each width;
* build throughput of the index's single-writer update;
* structural honesty: nonzero splits (the stream actually restructured
  the index) and zero lost keys (``index_integrity`` is clean).

Writes ``BENCH_retrieval.json`` at the repo root; the CI smoke gates on
recall@10 >= 0.8, splits > 0 and zero lost keys.

Run with: PYTHONPATH=src python -m pytest benchmarks/bench_retrieval.py -q -s
"""

from __future__ import annotations

import time

import numpy as np

from repro.retrieval.embedding import EmbeddingConfig, EmbeddingRow, updated_row
from repro.retrieval.keys import RetrievalKeys as K
from repro.retrieval.retriever import (
    RetrieverConfig,
    VQIndexProbe,
    VQRetriever,
    brute_force_rank,
)
from repro.retrieval.vq import StreamingVQIndex, VQConfig, index_integrity
from repro.tdstore import TDStoreCluster
from repro.topology.state import CachedStore

from benchmarks.conftest import SEED, report, report_json

GROUPS = 8
ITEMS_PER_GROUP = 30
DIM = 16
LEARN_STEPS = 12
PROBE_WIDTHS = [1, 2, 4, 8]
N_QUERIES = 60
TOP_K = 10

ECFG = EmbeddingConfig(dim=DIM)
VCFG = VQConfig(
    dim=DIM, seed_centroids=4, max_centroids=64,
    split_threshold=8.0, merge_floor=1.0,
)


def learned_catalog(rng):
    """(item, row) pairs clustered by shared context anchors."""
    rows = []
    for g in range(GROUPS):
        for i in range(ITEMS_PER_GROUP):
            item = f"g{g}i{i}"
            row = EmbeddingRow.from_value(item, None, ECFG)
            for s in range(LEARN_STEPS):
                # mostly the group anchor, occasionally a neighbour
                # group's — co-click noise keeps clusters imperfect
                ctx = (
                    f"ctx{(g + 1) % GROUPS}"
                    if rng.random() < 0.15
                    else f"ctx{g}"
                )
                row = updated_row(row, ctx, 1.0, ECFG)
            rows.append((item, row))
    return rows


def test_retrieval_quality_and_throughput():
    rng = np.random.default_rng(SEED)
    catalog = learned_catalog(rng)
    items = [item for item, __ in catalog]

    cluster = TDStoreCluster(num_data_servers=2, num_instances=16)
    client = cluster.client()
    index = StreamingVQIndex(CachedStore(cluster.client()), VCFG)

    t0 = time.perf_counter()
    for n, (item, row) in enumerate(catalog):
        client.put(K.embedding(item), row.to_value())
        index.observe(item, list(row.vec), f"bench:{n}")
    build_seconds = time.perf_counter() - t0

    probe_stats = VQIndexProbe(client).stats()
    integrity = index_integrity(client, items)
    assert integrity["problems"] == [], integrity["problems"]
    assert probe_stats["splits"] > 0

    query_items = [
        items[int(rng.integers(len(items)))] for __ in range(N_QUERIES)
    ]
    queries = [
        (
            qi,
            np.asarray(client.get(K.embedding(qi))["vec"], dtype=np.float64),
            brute_force_rank(client, np.asarray(
                client.get(K.embedding(qi))["vec"], dtype=np.float64
            ), items, TOP_K, exclude={qi}),
        )
        for qi in query_items
    ]

    sweep = []
    for width in PROBE_WIDTHS:
        retriever = VQRetriever(client, RetrieverConfig(probe_width=width))
        recalls = []
        t0 = time.perf_counter()
        for qi, q, exact in queries:
            answer = retriever.retrieve(q, TOP_K, exclude={qi})
            recalls.append(len(set(answer.items) & set(exact)) / len(exact))
        seconds = time.perf_counter() - t0
        sweep.append(
            {
                "probe_width": width,
                "recall_at_10": sum(recalls) / len(recalls),
                "queries_per_s": N_QUERIES / seconds,
                "candidates_per_s": retriever.stats.candidates_scored / seconds,
                "mean_candidates": retriever.stats.candidates_scored
                / N_QUERIES,
            }
        )

    headline = sweep[-1]["recall_at_10"]  # widest probe in the sweep
    payload = {
        "seed": SEED,
        "catalog_items": len(items),
        "dim": DIM,
        "build_observes_per_s": len(items) / build_seconds,
        "centroids": probe_stats["centroids"],
        "splits": probe_stats["splits"],
        "merges": probe_stats["merges"],
        "reassignments": probe_stats["reassignments"],
        "posting_p99": probe_stats["posting_p99"],
        "lost_keys": len(integrity["problems"]),
        "recall_at_10": headline,
        "probe_sweep": sweep,
    }
    report_json("retrieval", payload)

    lines = [
        "Streaming-VQ retrieval "
        f"({len(items)} items, {probe_stats['centroids']} centroids, "
        f"{probe_stats['splits']} splits, {probe_stats['merges']} merges, "
        f"build {payload['build_observes_per_s']:.0f} obs/s)",
        f"  {'probe':>5} {'recall@10':>10} {'queries/s':>10} "
        f"{'candidates/s':>13}",
    ]
    for row in sweep:
        lines.append(
            f"  {row['probe_width']:>5} {row['recall_at_10']:>10.3f} "
            f"{row['queries_per_s']:>10.0f} {row['candidates_per_s']:>13.0f}"
        )
    report("retrieval", "\n".join(lines))

    assert headline >= 0.8, f"recall@10 {headline:.3f} below the 0.8 floor"
