"""Serving-layer throughput: batched + cached vs. the per-key path.

A closed-loop generator drives Zipf-skewed top-N queries against the
same seeded TDStore two ways:

* **per-key** — ``RecommenderEngine.recommend_cf`` per query, the
  pre-serving-layer front-end path (2 + R + G point reads each);
* **serving** — ``ServingLayer.serve_many`` windows: coalesced
  micro-batches over three ``multi_get`` fan-outs, answers cached and
  staled by a simulated stream-invalidation churn.

The claim under test: at a steady state with realistic invalidation
churn, the serving layer sustains **>= 5x the queries/sec of the
per-key path at no worse p99**. Results per cache tier and batch size
land in ``BENCH_serving.json`` at the repo root.

Scale knobs (CI smoke uses small values):
``REPRO_BENCH_SERVING_QUERIES`` (default 2000),
``REPRO_BENCH_SERVING_USERS`` (default 300).
"""

import os
import random

import pytest

from repro.engine.engine import EngineConfig, RecommenderEngine
from repro.serving import ClosedLoopLoadGenerator, InvalidationBus, ServingLayer
from repro.tdstore import TDStoreCluster
from repro.topology.state import StateKeys
from repro.utils.clock import SimClock

from benchmarks.conftest import report, report_json

NUM_QUERIES = int(os.environ.get("REPRO_BENCH_SERVING_QUERIES", "2000"))
NUM_USERS = int(os.environ.get("REPRO_BENCH_SERVING_USERS", "300"))
NUM_ITEMS = max(50, NUM_USERS // 2)
TOP_N = 10
BATCH_SIZES = (1, 8, 32)
# fraction of each window's users whose state "changes on the stream",
# staling their cached answers — keeps the cache from measuring as a
# free lunch that never recomputes
CHURN = 0.03
NOW = 10_000.0


def seeded_cluster():
    rng = random.Random(97)
    cluster = TDStoreCluster(num_data_servers=4, num_instances=32)
    client = cluster.client()
    items = [f"i{n}" for n in range(NUM_ITEMS)]
    for item in items:
        others = rng.sample(items, k=min(10, len(items) - 1))
        client.put(
            StateKeys.sim_list(item),
            {o: round(rng.random(), 3) for o in others if o != item},
        )
    for index in range(NUM_USERS):
        user = f"u{index}"
        owned = rng.sample(items, k=3)
        client.put(
            StateKeys.recent(user),
            [(item, 2.0 + rng.random(), float(k)) for k, item in enumerate(owned)],
        )
        client.put(StateKeys.history(user), {item: 2.0 for item in owned})
    client.put(
        StateKeys.hot("global"),
        {item: float(NUM_ITEMS - n) for n, item in enumerate(items[:50])},
    )
    return cluster


@pytest.fixture(scope="module")
def world():
    return seeded_cluster()


def user_population():
    return [f"u{index}" for index in range(NUM_USERS)]


def run_per_key(cluster, batch_size):
    """The pre-serving-layer path under the same concurrency model:
    ``batch_size`` clients in flight, served one by one per-key, the
    window's wall time charged to every query in it (each client waits
    its turn — that queueing *is* the per-key path's latency)."""
    engine = RecommenderEngine(cluster.client(), EngineConfig())

    def serve_window(window):
        return {
            (user, n): (engine.recommend_cf(user, n, NOW), "per_key")
            for user, n in window
        }

    generator = ClosedLoopLoadGenerator(user_population(), n=TOP_N, seed=7)
    return generator.run_batched(serve_window, NUM_QUERIES, batch_size)


def run_serving(cluster, batch_size):
    clock = SimClock()
    bus = InvalidationBus()
    engine = RecommenderEngine(cluster.client(), EngineConfig())
    layer = ServingLayer(engine, clock.now, bus=bus, max_batch=batch_size)
    churn_rng = random.Random(13)

    # steady state is what "sustained" means: fill the cache once
    # (untimed), then measure with the stream continuously staling
    # entries underneath the measured run
    population = user_population()
    for at in range(0, len(population), batch_size):
        layer.serve_many(
            [(user, TOP_N) for user in population[at : at + batch_size]], NOW
        )

    def serve_window(window):
        # the stream keeps moving underneath the cache: stale a few of
        # this window's users before serving, as committed bolt updates
        # would
        for user, __n in window:
            if churn_rng.random() < CHURN:
                bus.publish("user", user)
        return layer.serve_many(window, NOW)

    generator = ClosedLoopLoadGenerator(user_population(), n=TOP_N, seed=7)
    report_ = generator.run_batched(serve_window, NUM_QUERIES, batch_size)
    return report_, layer


def test_serving_layer_vs_per_key(world):
    baselines, rows, layers = {}, {}, {}
    for batch_size in BATCH_SIZES:
        baselines[batch_size] = run_per_key(world, batch_size)
        rows[batch_size], layers[batch_size] = run_serving(world, batch_size)

    top = max(BATCH_SIZES)
    best, best_base = rows[top], baselines[top]
    speedup = best.qps / best_base.qps if best_base.qps else float("inf")
    stats = layers[top].stats()

    lines = [
        "Serving layer vs per-key path "
        f"({NUM_QUERIES} Zipf queries over {NUM_USERS} users, "
        f"churn {CHURN:.0%}, warmed cache)",
    ]
    for batch_size in BATCH_SIZES:
        base, row = baselines[batch_size], rows[batch_size]
        lines.append(
            f"  batch={batch_size:<3} per-key: {base.qps:9.0f} q/s "
            f"p99 {base.p99 * 1e3:7.3f} ms | serving: {row.qps:9.0f} q/s "
            f"p99 {row.p99 * 1e3:7.3f} ms "
            f"({row.qps / base.qps:4.1f}x)  tiers {row.tier_counts}"
        )
    lines.append(
        f"  speedup at batch={top}: {speedup:.1f}x, "
        f"cache hit rate {stats['result_cache']['hit_rate']:.1%}, "
        f"mean coalesced batch {stats['coalescer']['mean_batch_size']:.1f}"
    )
    report("serving_throughput", "\n".join(lines))
    report_json(
        "serving",
        {
            "workload": {
                "queries": NUM_QUERIES,
                "users": NUM_USERS,
                "top_n": TOP_N,
                "zipf_s": 1.1,
                "invalidation_churn": CHURN,
                "warmed": True,
            },
            "per_key": {
                str(batch_size): baselines[batch_size].summary()
                for batch_size in BATCH_SIZES
            },
            "serving": {
                str(batch_size): rows[batch_size].summary()
                for batch_size in BATCH_SIZES
            },
            "speedup_at_max_batch": round(speedup, 2),
            "stats_at_max_batch": stats,
        },
    )

    # the tentpole's bar: 5x the per-key throughput at no worse p99
    assert speedup >= 5.0, f"serving speedup {speedup:.1f}x < 5x"
    assert best.p99 <= best_base.p99, (
        f"serving p99 {best.p99 * 1e3:.3f}ms worse than per-key "
        f"{best_base.p99 * 1e3:.3f}ms"
    )
    # the speedup must come from the mechanisms under test, not luck
    assert stats["result_cache"]["hits"] > 0
    assert stats["coalescer"]["batched_requests"] > 0
    assert stats["batch_ops"] > 0


def test_partial_shard_failure_degrades_only_that_shard(world):
    """One degraded data server must not take the whole serving path
    down: the batch hedges or degrades the affected keys and answers."""
    cluster = seeded_cluster()
    clock = SimClock()
    engine = RecommenderEngine(cluster.client(), EngineConfig())
    layer = ServingLayer(engine, clock.now)
    generator = ClosedLoopLoadGenerator(user_population(), n=TOP_N, seed=11)
    cluster.crash_data_server(0)
    report_ = generator.run_batched(
        lambda window: layer.serve_many(window, NOW), 200, 16
    )
    assert report_.queries == 200
    assert sum(report_.tier_counts.values()) >= 200 - 16  # dedup'd windows
    stats = layer.stats()
    assert stats["degraded_keys"] == 0  # failover absorbed the crash
