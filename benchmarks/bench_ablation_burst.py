"""Temporal burst: a breaking story floods the stream (Section 5.2).

The paper motivates its burst machinery with "a hot news bursts and many
users read the news". The recommendation-side consequence: a real-time
engine starts recommending the story within seconds of the burst, while
the hourly-refreshed Original cannot surface it until its next rebuild.
We inject a burst into the news world and track how often each engine's
slates contain the burst story while it is hot.
"""

import pytest

from repro.evaluation import TencentRecCBEngine, make_original
from repro.simulation import news_scenario
from repro.types import ItemMeta

from benchmarks.conftest import SEED, alive_check, report, users

BURST_START = 36 * 3600.0
BURST_END = BURST_START + 4 * 3600.0


@pytest.fixture(scope="module")
def burst_run():
    scenario = news_scenario(
        seed=SEED, num_users=users(200), initial_items=100,
        arrivals_per_day=150,
    )
    item_alive = alive_check(scenario)
    profiles = scenario.population.profile
    realtime = TencentRecCBEngine(profiles, item_alive=item_alive)
    original = make_original(
        TencentRecCBEngine(profiles, item_alive=item_alive), 3600.0
    )
    engines = [realtime, original]

    def announce(metas):
        for meta in metas:
            for engine in engines:
                engine.on_new_item(meta)

    announce(item.meta for item in scenario.catalog.all_items())

    # the breaking story appears half an hour before the burst peaks
    story = ItemMeta(
        "breaking-story", category="news", tags=("topic-0", "breaking"),
        publish_time=BURST_START - 1800.0, lifetime=12 * 3600.0,
    )
    scenario.catalog._items["breaking-story"] = type(
        scenario.catalog.all_items()[0]
    )(story, topic=0, quality=0.95)
    scenario.behavior.add_burst("breaking-story", BURST_START, BURST_END, 0.3)

    share = {id(realtime): [], id(original): []}
    half_hour = 1800.0
    slots = int(48 * 3600.0 / half_hour)
    sample = scenario.population.users()[:60]
    for slot in range(slots):
        now = slot * half_hour
        announce(born.meta for born in scenario.catalog.advance_to(now))
        if now == BURST_START - 1800.0:
            announce([story])
        for user in sample:
            if slot % 4 == 0:
                for action in scenario.behavior.organic_session(user, now):
                    realtime.observe(action)
                    original.observe(action)
        if BURST_START <= now < BURST_END + 3600.0:
            # the trending signal lives in the windowed demographic hot
            # lists: track the story's global-hot rank for both engines
            share[id(realtime)].append(
                _hot_rank(realtime.db, now)
            )
            boundary = (now // 3600.0) * 3600.0
            original.recommend("user-00000", 1, now)  # trigger rebuild
            share[id(original)].append(
                _hot_rank(original.inner.db, boundary)
            )
    return realtime, original, share


def _hot_rank(db, now) -> int | None:
    """1-based global-hot rank of the burst story, None if absent."""
    from repro.algorithms.demographic import GLOBAL_GROUP

    for rank, (item, __) in enumerate(
        db.hot_items(GLOBAL_GROUP, 10, now), start=1
    ):
        if item == "breaking-story":
            return rank
    return None


def test_realtime_engine_surfaces_burst_story(burst_run, benchmark):
    realtime, original, share = burst_run
    realtime_ranks = share[id(realtime)]
    original_ranks = share[id(original)]

    def first_top3(ranks):
        for slot, rank in enumerate(ranks):
            if rank is not None and rank <= 3:
                return slot
        return None

    realtime_first = first_top3(realtime_ranks)
    original_first = first_top3(original_ranks)

    def fmt(ranks):
        return " ".join("-" if r is None else str(r) for r in ranks)

    report(
        "ablation_burst",
        "\n".join(
            [
                "Temporal burst (Section 5.2): the breaking story's rank in",
                "the global hot list, per half-hour slot from burst start",
                f"  real-time engine: {fmt(realtime_ranks)}",
                f"  hourly Original:  {fmt(original_ranks)}",
                f"slots until top-3: real-time {realtime_first}, "
                f"Original {original_first}",
            ]
        ),
    )
    # the real-time engine surfaces the burst within the burst window
    assert realtime_first is not None
    # and strictly earlier than the hourly-refreshed Original
    assert original_first is None or realtime_first < original_first

    user = "user-00000"
    benchmark(realtime.recommend, user, 5, BURST_END)
