"""Process-chaos MTTR: seeded SIGKILL schedules on real processes.

A seeded schedule of process-native faults — host ``kill -9`` (respawn
+ WAL replay), a mid-drain worker SIGKILL, a one-way partition, resets,
dropped and delayed frames — runs against a live pipeline while a front
end probes every user at each barrier. The exhibit is the MTTR
distribution: seconds from each SIGKILL (or WAL fail-stop) until the
respawned host is WAL-replayed *and answering reads again*, p50/p99/max
over all seeded kills, plus the convergence invariants (zero lost keys,
100% serve rate, fingerprint byte-identical to a fault-free process
reference). Written to ``BENCH_chaos.json`` for the CI gate.

Run with: PYTHONPATH=src python -m pytest benchmarks/bench_chaos.py -q -s
"""

from __future__ import annotations

from repro.runtime import ProcessSubstrate
from repro.runtime.chaos import ChaosOrchestrator, seeded_process_plan

from benchmarks.conftest import SEED, report, report_json
from tests.chaos.helpers import (
    BATCH,
    fingerprint,
    make_harness,
    make_payloads,
    make_serve_probe,
)

N_MESSAGES = 48
WORKERS = 2
HOSTS = 2
HORIZON = 12


def substrate():
    return ProcessSubstrate(worker_procs=WORKERS, server_procs=HOSTS)


def test_seeded_chaos_mttr():
    payloads = make_payloads(N_MESSAGES)

    # fault-free process reference: the convergence target
    with substrate() as ref_substrate:
        ref = make_harness(ref_substrate, payloads)
        assert ref.run() == "completed"
        ref_now = ref.clock.now()
        want = fingerprint(ref, ref_now)

    plan = seeded_process_plan(
        SEED,
        horizon=HORIZON,
        hosts=HOSTS,
        workers=WORKERS,
        host_kills=3,  # several kills so the MTTR percentiles mean something
        worker_kills=1,
        partitions=1,
        conn_resets=1,
        frame_drops=1,
        frame_delays=1,
        disk_faults=("fsync_error",),
        sigkill_after=3,
        rewind_depth=2 * BATCH,
    )

    with substrate() as chaos_substrate:
        harness = make_harness(chaos_substrate, payloads, start=False)
        orchestrator = ChaosOrchestrator(
            harness, plan, serve_probe=make_serve_probe(harness)
        )
        assert orchestrator.run() == "completed"
        runtime = chaos_substrate.chaos_runtime()
        got = fingerprint(harness, ref_now)
        chaos_report = orchestrator.report(fingerprint=got, reference=want)
        samples = [
            {"kind": s.kind, "target": s.target, "seconds": s.seconds}
            for s in runtime.mttr_samples
        ]

    assert sum(chaos_report.kills.values()) > 0
    assert chaos_report.lost_keys == 0
    assert chaos_report.serve_rate == 1.0
    assert chaos_report.fingerprint_match
    assert chaos_report.skipped_faults == 0
    assert chaos_report.mttr_count >= 3
    assert chaos_report.mttr_p99 is not None and chaos_report.mttr_p99 > 0

    payload = dict(chaos_report.to_dict())
    payload["seed"] = SEED
    payload["horizon"] = HORIZON
    payload["hosts"] = HOSTS
    payload["workers"] = WORKERS
    payload["messages"] = N_MESSAGES
    payload["mttr_samples"] = samples
    report_json("chaos", payload)

    lines = [
        f"Process chaos (seed {SEED}, {len(plan)} faults over "
        f"{HORIZON} barrier rounds, {HOSTS} hosts / {WORKERS} workers)",
        f"  kills: {dict(chaos_report.kills)}",
        f"  network: {dict(chaos_report.network_faults)}",
        f"  disk: {dict(chaos_report.disk_faults)}",
        f"  MTTR (SIGKILL -> WAL-replayed-and-serving, s): "
        f"p50={chaos_report.mttr_p50:.3f} p99={chaos_report.mttr_p99:.3f} "
        f"max={chaos_report.mttr_max:.3f} over {chaos_report.mttr_count} "
        "kills",
        f"  lost keys: {chaos_report.lost_keys}, serve rate: "
        f"{chaos_report.serve_rate:.0%} "
        f"({chaos_report.serve_answered}/{chaos_report.serve_attempts}), "
        f"fingerprint match: {chaos_report.fingerprint_match}",
    ]
    report("chaos_mttr", "\n".join(lines))
