"""Ablation: the fine-grained cache under a temporal burst (Section 5.2).

The paper: burst traffic has locality — a small set of keys absorbs most
reads — so a per-key read-through cache on each worker slashes TDStore
load. We replay a bursty key stream against a CachedStore and against
raw TDStore reads and compare server-side read counts.
"""

import numpy as np
import pytest

from repro.tdstore import TDStoreCluster
from repro.topology.state import CachedStore

from benchmarks.conftest import report


def bursty_keys(num_reads=5000, num_keys=500, hot_keys=5, hot_share=0.8,
                seed=4):
    """80% of reads hit 1% of keys: the hot-news locality of Section 5.2."""
    rng = np.random.default_rng(seed)
    keys = []
    for __ in range(num_reads):
        if rng.random() < hot_share:
            keys.append(f"hist:hot-{int(rng.integers(hot_keys))}")
        else:
            keys.append(f"hist:cold-{int(rng.integers(num_keys))}")
    return keys


@pytest.fixture(scope="module")
def cache_results():
    keys = bursty_keys()
    seeded = TDStoreCluster(num_data_servers=3, num_instances=16)
    for key in set(keys):
        seeded.client().put(key, {"payload": key})
    baseline_start = sum(seeded.read_stats().values())
    raw_client = seeded.client()
    for key in keys:
        raw_client.get(key)
    raw_reads = sum(seeded.read_stats().values()) - baseline_start

    cached_store = CachedStore(seeded.client())
    cached_start = sum(seeded.read_stats().values())
    for key in keys:
        cached_store.get(key)
    cached_reads = sum(seeded.read_stats().values()) - cached_start
    return keys, raw_reads, cached_reads, cached_store


def test_cache_absorbs_burst_reads(cache_results, benchmark):
    keys, raw_reads, cached_reads, cached_store = cache_results
    saving = 1 - cached_reads / raw_reads
    report(
        "ablation_cache",
        "\n".join(
            [
                "Ablation: fine-grained cache under temporal burst (Section 5.2)",
                f"reads issued:                 {len(keys)}",
                f"TDStore reads, no cache:      {raw_reads}",
                f"TDStore reads, cached:        {cached_reads} "
                f"({saving:.0%} absorbed)",
                f"cache hits / misses:          "
                f"{cached_store.hits} / {cached_store.misses}",
            ]
        ),
    )
    assert cached_reads < raw_reads * 0.2
    assert cached_store.hits > cached_store.misses

    benchmark(cached_store.get, keys[0])
