"""Ablation: item-based vs. user-based CF (Section 4.1).

The paper justifies its choice: "the empirical evidence has shown that
item-based CF method can provide better performance than the user-based
CF method". Both variants run fully real-time on the same video
workload under paired evaluation, so the only difference is the
similarity axis.
"""

import pytest

from repro.algorithms.base import Recommender
from repro.algorithms.user_based import UserBasedCF
from repro.evaluation import ABTestConfig, ABTestRunner, TencentRecCFEngine
from repro.simulation import video_scenario
from repro.types import Recommendation, UserAction

from benchmarks.conftest import SEED, alive_check, report, users


class UserBasedEngine(Recommender):
    """UserBasedCF with the same liveness filtering as the item engine."""

    def __init__(self, item_alive):
        self._cf = UserBasedCF(linked_time=6 * 3600.0)
        self._item_alive = item_alive

    def observe(self, action: UserAction):
        self._cf.observe(action)

    def recommend(self, user_id, n, now, context=None) -> list[Recommendation]:
        recs = self._cf.recommend(user_id, n * 2, now, context)
        return [r for r in recs if self._item_alive(r.item_id, now)][:n]


@pytest.fixture(scope="module")
def cf_axis_ablation():
    scenario = video_scenario(seed=SEED, num_users=users(300),
                              initial_items=250)
    item_alive = alive_check(scenario)
    profiles = scenario.population.profile
    engines = {
        "item-based": TencentRecCFEngine(
            profiles, recent_k=3, item_alive=item_alive
        ),
        "user-based": UserBasedEngine(item_alive),
    }
    runner = ABTestRunner(scenario, engines, ABTestConfig(num_days=6))
    return runner.run()


def test_item_based_beats_user_based(cf_axis_ablation, benchmark):
    improvements = cf_axis_ablation.daily_improvements(
        "item-based", "user-based"
    )[1:]
    item_ctr = cf_axis_ablation.series("item-based").overall_ctr()
    user_ctr = cf_axis_ablation.series("user-based").overall_ctr()
    report(
        "ablation_user_based",
        "\n".join(
            [
                "Ablation: item-based vs user-based CF (Section 4.1)",
                f"overall CTR, item-based: {item_ctr:.4f}",
                f"overall CTR, user-based: {user_ctr:.4f}",
                "daily improvement of item-based over user-based:",
                "  " + " ".join(f"{v:+.1f}%" for v in improvements),
            ]
        ),
    )
    assert item_ctr > user_ctr  # the paper's §4.1 empirical claim

    benchmark(
        cf_axis_ablation.daily_improvements, "item-based", "user-based"
    )
