"""Recovery cost vs. checkpoint interval.

The checkpoint/recovery subsystem trades steady-state overhead for
recovery work: frequent checkpoints cost a barrier capture each time but
leave a short log suffix to replay after a crash; sparse checkpoints are
cheap while everything is healthy and expensive when it is not. This
benchmark crashes the same deterministic run at the same barrier round
under different checkpoint intervals and measures (a) the wall-clock
time of restore + replay-to-completion, (b) how many log events had to
be replayed, and (c) how many checkpoints the run had taken — then
verifies every recovered run converged to the byte-identical result of
the uninterrupted reference.

Run with: PYTHONPATH=src python -m pytest benchmarks/bench_recovery.py -q -s
"""

from __future__ import annotations

import time

from repro.recovery import Fault, RecoveryHarness

from benchmarks.conftest import report
from tests.recovery.helpers import (
    TOPIC,
    cf_topology_factory,
    make_payloads,
    make_tdaccess,
    recommendations_bytes,
)

N_MESSAGES = 240
CRASH_ROUND = 21
INTERVALS = [1, 2, 4, 8, 16, None]  # None: no checkpoints (cold restart)


def build_harness(payloads, every_rounds):
    return RecoveryHarness(
        make_tdaccess(payloads),
        TOPIC,
        cf_topology_factory(batch_size=4),
        tick_interval=240.0,
        checkpoint_every_rounds=every_rounds,
    )


def test_recovery_cost_vs_checkpoint_interval():
    payloads = make_payloads(N_MESSAGES)

    reference = build_harness(payloads, every_rounds=None)
    reference.start()
    assert reference.run() == "completed"
    want = recommendations_bytes(reference.client(), reference.clock.now())
    total_events = reference.consumer.received

    rows = []
    for every in INTERVALS:
        harness = build_harness(payloads, every)
        harness.start(fault_plan=[Fault(CRASH_ROUND, "crash_process")])
        assert harness.run() == "crashed"

        started = time.perf_counter()
        restore_report = harness.recover()
        restore_seconds = time.perf_counter() - started

        replayed = (
            restore_report.replay_backlog
            if restore_report is not None
            else total_events  # cold restart replays the whole log
        )
        started = time.perf_counter()
        assert harness.run() == "completed"
        replay_seconds = time.perf_counter() - started

        got = recommendations_bytes(harness.client(), harness.clock.now())
        assert got == want, f"every_rounds={every} diverged after recovery"
        rows.append(
            {
                "interval": "none" if every is None else f"{every}",
                "checkpoints": harness.checkpoints_taken,
                "replayed": replayed,
                "restore_ms": restore_seconds * 1e3,
                "replay_ms": replay_seconds * 1e3,
            }
        )

    # sparser checkpoints can only increase the replay burden
    counted = [r["replayed"] for r in rows if r["interval"] != "none"]
    assert counted == sorted(counted)
    assert rows[-1]["replayed"] == total_events

    lines = [
        "Recovery cost vs. checkpoint interval "
        f"({N_MESSAGES} events, crash at barrier round {CRASH_ROUND}; "
        "every recovered run byte-identical to the uninterrupted one)",
        f"{'interval (rounds)':>18} {'checkpoints':>12} "
        f"{'events replayed':>16} {'restore (ms)':>13} {'replay (ms)':>12}",
    ]
    for r in rows:
        lines.append(
            f"{r['interval']:>18} {r['checkpoints']:>12} "
            f"{r['replayed']:>16} {r['restore_ms']:>13.1f} "
            f"{r['replay_ms']:>12.1f}"
        )
    report("recovery_vs_checkpoint_interval", "\n".join(lines))
