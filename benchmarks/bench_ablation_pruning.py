"""Ablation: Hoeffding-bound real-time pruning (Section 4.1.4).

The paper's claim: most generated item pairs can never enter a
similar-items list, and pruning them eliminates their update cost with
negligible effect on the lists that matter. We replay the same clustered
stream through the practical CF with and without the pruner, count pair
updates, and check the top-k lists still agree on the strong structure.
"""

import numpy as np
import pytest

from repro.algorithms.itemcf import HoeffdingPruner, PracticalItemCF
from repro.types import UserAction

from benchmarks.conftest import report


def clustered_stream(num_clusters=6, items_per_cluster=4, rounds=300, seed=1):
    """Strong in-cluster co-clicks plus recurring cross-cluster noise.

    The noise picks from a small pool of "clickbait" items, so the same
    weak pairs are observed repeatedly — exactly the pairs whose updates
    the Hoeffding bound is meant to cut off.
    """
    rng = np.random.default_rng(seed)
    num_items = num_clusters * items_per_cluster
    actions = []
    t = 0.0
    for round_index in range(rounds):
        cluster_index = int(rng.integers(num_clusters))
        user = f"u{round_index}"
        base = cluster_index * items_per_cluster
        for offset in range(items_per_cluster):
            actions.append(UserAction(user, f"i{base + offset}", "click", t))
            t += 1.0
        if round_index % 2 == 0:
            clickbait = int(rng.integers(3))  # a tiny pool of junk items
            foreign = (base + items_per_cluster + clickbait) % num_items
            actions.append(UserAction(user, f"i{foreign}", "browse", t))
            t += 1.0
    return actions


@pytest.fixture(scope="module")
def pruning_runs():
    actions = clustered_stream()
    unpruned = PracticalItemCF(linked_time=10**9, k=3)
    unpruned.observe_many(actions)
    pruned = PracticalItemCF(
        linked_time=10**9, k=3, pruner=HoeffdingPruner(delta=0.05)
    )
    pruned.observe_many(actions)
    return actions, unpruned, pruned


def top_list_overlap(a: PracticalItemCF, b: PracticalItemCF) -> float:
    overlaps = []
    for item in a.table.known_items():
        top_a = {other for other, __ in a.table.top_similar(item)}
        top_b = {other for other, __ in b.table.top_similar(item)}
        if top_a or top_b:
            overlaps.append(len(top_a & top_b) / len(top_a | top_b))
    return float(np.mean(overlaps))


def test_pruning_saves_updates_and_preserves_lists(pruning_runs, benchmark):
    actions, unpruned, pruned = pruning_runs
    saved = 1.0 - pruned.stats.pair_updates / unpruned.stats.pair_updates
    overlap = top_list_overlap(unpruned, pruned)
    report(
        "ablation_pruning",
        "\n".join(
            [
                "Ablation: Hoeffding real-time pruning (Section 4.1.4)",
                f"events replayed:        {len(actions)}",
                f"pair updates, no prune: {unpruned.stats.pair_updates}",
                f"pair updates, pruned:   {pruned.stats.pair_updates}"
                f"  ({saved:.0%} saved)",
                f"pairs pruned:           {pruned.pruner.pruned_pairs}",
                f"updates skipped:        {pruned.stats.pruned_skips}",
                f"top-k list Jaccard overlap vs unpruned: {overlap:.2f}",
            ]
        ),
    )
    assert pruned.pruner.pruned_pairs > 0
    assert saved > 0.10
    assert overlap > 0.75

    # timing: ingest rate with pruning enabled
    engine = PracticalItemCF(
        linked_time=10**9, k=3, pruner=HoeffdingPruner(delta=0.05)
    )
    cursor = iter(actions * 1000)

    def ingest_one():
        engine.observe(next(cursor))

    benchmark(ingest_one)


def test_unpruned_ingest_rate(pruning_runs, benchmark):
    actions, __, ___ = pruning_runs
    engine = PracticalItemCF(linked_time=10**9, k=3)
    cursor = iter(actions * 1000)

    def ingest_one():
        engine.observe(next(cursor))

    benchmark(ingest_one)
