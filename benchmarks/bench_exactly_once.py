"""Cost and value of the exactly-once layer.

Three measurements over the same deterministic CF stream:

1. Steady-state overhead — wall-clock of a clean (failure-free) run with
   replay-stable identities, dedup ledgers and the op journal, against
   the same run with identities stripped (plain at-least-once incr
   writes). This is the price every healthy hour pays.
2. Ledger micro-throughput — raw ``DedupLedger.observe`` rates for
   first-seen and duplicate ids, and the bounded memory footprint.
3. Replay value — the CF run and a bare counter topology (ItemCountBolt
   fed one delta per event, the shape of the CTR/AR/demographic
   counters) both run under the same duplicate-delivery fault plan. The
   identified runs must land byte-exact on the clean counts; the
   anonymous counter run shows the inflation the layer exists to
   prevent. (The CF history itself absorbs identical replays — ratings
   are a monotone max — which is exactly why the naive counter path is
   the dangerous one.)

Run with: PYTHONPATH=src python -m pytest benchmarks/bench_exactly_once.py -q -s
"""

from __future__ import annotations

import time

from repro.recovery import Fault, RecoveryHarness
from repro.storm.component import FunctionBolt
from repro.storm.grouping import FieldsGrouping, ShuffleGrouping
from repro.storm.reliability import DedupLedger
from repro.storm.topology import TopologyBuilder
from repro.topology.state import StateKeys
from repro.topology.bolts_cf import (
    ItemCountBolt,
    PairCountBolt,
    SimListBolt,
    UserHistoryBolt,
)
from repro.topology.bolts_common import PretreatmentBolt
from repro.topology.spouts import TDAccessSpout

from benchmarks.conftest import report
from tests.recovery.helpers import (
    TOPIC,
    make_payloads,
    make_tdaccess,
    state_digest,
)

N_MESSAGES = 240
BATCH = 4
REPS = 3
LEDGER_OPS = 100_000


class AnonymousSpout(TDAccessSpout):
    """TDAccessSpout without replay-stable identities: the baseline
    at-least-once path (every downstream write is a plain get+put)."""

    def next_tuple(self) -> bool:
        batch = self._consumer.poll(self._batch_size)
        if not batch:
            return False
        for message in batch:
            self._clock.advance_to(message.timestamp)
            self.collector.emit((message.value,), stream_id="raw_action")
        return True


def factory_with_spout(spout_cls):
    def factory(clock, client_factory, consumer):
        builder = TopologyBuilder("cf-stream")
        builder.add_spout(
            "source", lambda: spout_cls(consumer, clock, BATCH)
        )
        builder.add_bolt(
            "pretreatment", PretreatmentBolt, parallelism=1
        ).grouping("source", ShuffleGrouping(), "raw_action")
        builder.add_bolt(
            "userHistory", lambda: UserHistoryBolt(client_factory),
            parallelism=2,
        ).grouping("pretreatment", FieldsGrouping(["user"]), "user_action")
        builder.add_bolt(
            "itemCount", lambda: ItemCountBolt(client_factory), parallelism=2
        ).grouping("userHistory", FieldsGrouping(["item"]), "item_delta")
        builder.add_bolt(
            "pairCount", lambda: PairCountBolt(client_factory), parallelism=2
        ).grouping(
            "userHistory", FieldsGrouping(["pair_a", "pair_b"]), "pair_delta"
        )
        builder.add_bolt(
            "simList", lambda: SimListBolt(client_factory), parallelism=2
        ).grouping(
            "pairCount", FieldsGrouping(["item"]), "sim_update"
        ).grouping("pairCount", FieldsGrouping(["item"]), "prune")
        return builder.build()

    return factory


def counter_factory(spout_cls):
    """A bare counting topology: one itemCount delta per raw event."""

    def extract(tup, collector):
        collector.emit((tup["payload"]["item"], 1.0))

    def factory(clock, client_factory, consumer):
        builder = TopologyBuilder("count-stream")
        builder.add_spout(
            "source", lambda: spout_cls(consumer, clock, BATCH)
        )
        builder.add_bolt(
            "extract",
            lambda: FunctionBolt(extract, [("default", ("item", "delta"))]),
        ).grouping("source", ShuffleGrouping(), "raw_action")
        builder.add_bolt(
            "itemCount", lambda: ItemCountBolt(client_factory), parallelism=2
        ).grouping("extract", FieldsGrouping(["item"]))
        return builder.build()

    return factory


def counter_run(payloads, spout_cls, plan=None):
    harness = RecoveryHarness(
        make_tdaccess(payloads),
        TOPIC,
        counter_factory(spout_cls),
        tick_interval=240.0,
    )
    harness.start(fault_plan=list(plan) if plan is not None else None)
    assert harness.run() == "completed"
    client = harness.client()
    items = sorted({p["item"] for p in payloads})
    return sum(client.get(StateKeys.item_count(i), 0.0) for i in items)


def timed_run(payloads, spout_cls, plan=None):
    best = None
    state = None
    harness = None
    for _ in range(REPS if plan is None else 1):
        harness = RecoveryHarness(
            make_tdaccess(payloads),
            TOPIC,
            factory_with_spout(spout_cls),
            tick_interval=240.0,
        )
        harness.start(fault_plan=list(plan) if plan is not None else None)
        started = time.perf_counter()
        assert harness.run() == "completed"
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
        state = state_digest(harness.client())
    return best, state, harness


def ledger_rates():
    ledger = DedupLedger()
    ops = [f"src@{i}" for i in range(LEDGER_OPS)]
    started = time.perf_counter()
    for op in ops:
        ledger.observe(op)
    first_seen_rate = LEDGER_OPS / (time.perf_counter() - started)
    recent = ops[-200:] * (LEDGER_OPS // 200)
    started = time.perf_counter()
    for op in recent:
        ledger.observe(op)
    duplicate_rate = len(recent) / (time.perf_counter() - started)
    return first_seen_rate, duplicate_rate, ledger


def test_exactly_once_overhead_and_value():
    payloads = make_payloads(N_MESSAGES)

    identified_s, clean_state, harness = timed_run(payloads, TDAccessSpout)
    anonymous_s, anon_state, __ = timed_run(payloads, AnonymousSpout)
    assert clean_state == anon_state  # without failures the paths agree
    overhead = (identified_s - anonymous_s) / anonymous_s * 100.0
    ledger_entries = sum(
        s["entries"]
        for s in harness.cluster.exactly_once_stats("cf-stream").values()
    )

    first_rate, dup_rate, ledger = ledger_rates()
    assert ledger.within_bound()

    plan = [
        Fault(3, "duplicate_delivery", ("source", 2 * BATCH)),
        Fault(6, "duplicate_delivery", ("source", 2 * BATCH)),
        Fault(9, "duplicate_delivery", ("source", 4 * BATCH)),
    ]
    replay_s, replay_state, replay_harness = timed_run(
        payloads, TDAccessSpout, plan=plan
    )
    dedup_hits = sum(
        s["dedup_hits"]
        for s in replay_harness.cluster.exactly_once_stats(
            "cf-stream"
        ).values()
    )
    assert dedup_hits > 0
    assert replay_state == clean_state  # exactly-once: replays invisible

    counter_clean = counter_run(payloads, TDAccessSpout)
    assert counter_clean == float(N_MESSAGES)  # one +1 per raw event
    counter_exact = counter_run(payloads, TDAccessSpout, plan=plan)
    counter_naive = counter_run(payloads, AnonymousSpout, plan=plan)
    assert counter_exact == counter_clean  # replays invisible to counters
    assert counter_naive > counter_clean  # at-least-once double-counts
    inflation = (counter_naive - counter_clean) / counter_clean * 100.0

    lines = [
        f"Exactly-once layer: overhead and value ({N_MESSAGES} events, "
        f"batch {BATCH}, best of {REPS})",
        "",
        "steady state (clean stream)",
        f"{'at-least-once (no identities)':>34}: {anonymous_s * 1e3:8.1f} ms",
        f"{'exactly-once (ledger + journal)':>34}: {identified_s * 1e3:8.1f} ms"
        f"  ({overhead:+.1f}%)",
        f"{'ledger entries at end of run':>34}: {ledger_entries:8d}"
        "  (bounded by retain_depth per task)",
        "",
        f"dedup ledger microbenchmark ({LEDGER_OPS} sequential ids)",
        f"{'first-seen observe':>34}: {first_rate / 1e6:8.2f} M ops/s",
        f"{'duplicate observe':>34}: {dup_rate / 1e6:8.2f} M ops/s",
        f"{'offsets retained':>34}: {ledger.offsets_retained():8d}"
        f"  (retain_depth {ledger.retain_depth})",
        "",
        "under replay (3 duplicate-delivery faults, same stream)",
        f"{'CF topology, exactly-once':>34}: {replay_s * 1e3:8.1f} ms, "
        f"{dedup_hits} replays suppressed, state == clean run",
        f"{'counter topology, exactly-once':>34}: {counter_exact:8.0f} events "
        f"counted (== {N_MESSAGES} sent)",
        f"{'counter topology, at-least-once':>34}: {counter_naive:8.0f} events "
        f"counted ({inflation:+.1f}% silent inflation)",
    ]
    report("exactly_once", "\n".join(lines))
