"""Offered load vs. p99 latency, shed rate, and rung distribution.

The serving front end's answer to overload is admission control plus the
degradation ladder: beyond the admission capacity, low-priority queries
are shed to the static rung (instant, dependency-free) instead of
queueing behind everyone else. This benchmark sweeps offered load
against a fixed admission capacity and records, per level, the simulated
p50/p99 query latency, the shed rate by priority class, and which rung
answered — the curve that shows latency staying flat while the shed rate
absorbs the overload.

Latency is simulated: every TDStore data server advertises a small
per-op latency which the resilient client charges against the shared
clock, so a live CF serve costs a few milliseconds of simulated time and
a shed (static) serve costs none.

Run with: PYTHONPATH=src python -m pytest benchmarks/bench_overload.py -q -s
"""

from __future__ import annotations

from repro.engine.engine import EngineConfig, RecommenderEngine
from repro.engine.front_end import RUNGS, RecommenderFrontEnd
from repro.resilience import CircuitBreaker, LoadShedder
from repro.tdstore.cluster import TDStoreCluster
from repro.topology.state import StateKeys
from repro.utils.clock import SimClock

from benchmarks.conftest import report

NUM_USERS = 50
PER_OP_LATENCY = 0.0005  # seconds charged per store op
DEADLINE = 0.05
CAPACITY = 100  # admissions per 1-second shedder window
WINDOWS = 5
LOADS = [50, 100, 200, 400]  # offered queries per window
# deterministic priority mix: 20% high, 60% normal, 20% low
PRIORITY_MIX = ("high", "normal", "normal", "normal", "low")


def seeded_store() -> TDStoreCluster:
    store = TDStoreCluster(num_data_servers=4, num_instances=32)
    client = store.client()
    for i in range(NUM_USERS):
        liked = f"i{i % 10}"
        client.put(StateKeys.recent(f"u{i}"), [(liked, 5.0, 0.0)])
        client.put(StateKeys.history(f"u{i}"), {liked: 5.0})
    for i in range(10):
        client.put(
            StateKeys.sim_list(f"i{i}"),
            {f"c{i}-{j}": 0.9 - 0.1 * j for j in range(5)},
        )
    client.put(
        StateKeys.hot("global"), {f"h{j}": 10.0 - j for j in range(10)}
    )
    return store


def percentile(values: list[float], p: float) -> float:
    ranked = sorted(values)
    return ranked[int(p * (len(ranked) - 1))]


def run_level(store: TDStoreCluster, offered: int) -> dict:
    clock = SimClock()
    for server in store.data_servers:
        server.set_degradation(latency=PER_OP_LATENCY)
    breaker = CircuitBreaker(clock.now, name="tdstore")
    client = store.client(clock=clock, breaker=breaker)
    engine = RecommenderEngine(client, EngineConfig())
    shedder = LoadShedder(clock.now, capacity=CAPACITY, window=1.0)
    front_end = RecommenderFrontEnd(
        engine,
        static_items=tuple(f"s{j}" for j in range(5)),
        shedder=shedder,
        deadline_budget=DEADLINE,
        clock=clock,
    )
    latencies: list[float] = []
    for window in range(WINDOWS):
        window_start = window * 1.0
        if clock.now() < window_start:
            clock.advance(window_start - clock.now())
        for q in range(offered):
            user = f"u{(window * offered + q) % NUM_USERS}"
            priority = PRIORITY_MIX[q % len(PRIORITY_MIX)]
            started = clock.now()
            results = front_end.query(user, 5, started, priority=priority)
            latencies.append(clock.now() - started)
            assert results, "overload must never leave a query unanswered"
    log = front_end.log
    return {
        "offered": offered * WINDOWS,
        "shed_rate": shedder.shed_rate(),
        "shed_by_class": dict(shedder.shed),
        "p50": percentile(latencies, 0.50),
        "p99": percentile(latencies, 0.99),
        "rungs": {rung: log.rungs.get(rung, 0) for rung in RUNGS},
        "breaker": breaker.state,
    }


def test_overload_sweep():
    store = seeded_store()
    rows = [run_level(store, offered) for offered in LOADS]

    lines = [
        "Overload ladder: offered load vs latency / shed rate / rungs",
        f"(capacity {CAPACITY}/window, {WINDOWS} windows, "
        f"deadline {DEADLINE * 1000:.0f}ms, "
        f"{PER_OP_LATENCY * 1000:.1f}ms/op)",
        "",
        f"{'offered':>8} {'shed%':>7} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'live':>6} {'static':>7}  shed by class",
    ]
    for row in rows:
        shed = ", ".join(
            f"{cls}={count}"
            for cls, count in sorted(row["shed_by_class"].items())
            if count
        ) or "-"
        lines.append(
            f"{row['offered']:>8} {row['shed_rate'] * 100:>6.1f}% "
            f"{row['p50'] * 1000:>7.2f} {row['p99'] * 1000:>7.2f} "
            f"{row['rungs']['live']:>6} {row['rungs']['static']:>7}  {shed}"
        )
    report("overload", "\n".join(lines))

    # under capacity: nothing shed, everything live
    assert rows[0]["shed_rate"] == 0.0
    assert rows[0]["rungs"]["static"] == 0
    # over capacity: overload absorbed by shedding, not by latency
    overloaded = rows[-1]
    assert overloaded["shed_rate"] > 0.3
    assert overloaded["rungs"]["static"] > 0
    # low priority is squeezed out before high
    assert overloaded["shed_by_class"]["low"] > 0
    assert (
        overloaded["shed_by_class"]["low"] / (overloaded["offered"] * 0.2)
        >= overloaded["shed_by_class"]["high"] / (overloaded["offered"] * 0.2)
    )
    # p99 stays bounded by the deadline at every load level
    for row in rows:
        assert row["p99"] <= DEADLINE + PER_OP_LATENCY
        assert row["breaker"] == "closed"
