"""Figure 10: daily CTR of Tencent News over one week.

Paper: TencentRec's CTR sits above the hourly-refreshed Original every
day, with daily improvements 7.49 / 5.85 / 6.05 / 5.02 / 3.65 / 6.61 /
8.41 percent. We reproduce the shape: positive improvement every
reported day at single-to-low-double-digit magnitude.
"""

from repro.evaluation.reporting import format_daily_ctr_series

from benchmarks.conftest import report

PAPER_DAILY = [7.49, 5.85, 6.05, 5.02, 3.65, 6.61, 8.41]


def test_fig10_news_daily_ctr(news_experiment, benchmark):
    table = format_daily_ctr_series(
        news_experiment.result, "tencentrec", "original"
    )
    improvements = news_experiment.reported_improvements()
    lines = [
        table,
        "",
        "reported days exclude day 1 (warm-up; both engines start cold)",
        "paper daily improvements: "
        + " ".join(f"{v:+.2f}%" for v in PAPER_DAILY),
        "ours (days 2..8):         "
        + " ".join(f"{v:+.2f}%" for v in improvements),
    ]
    report("fig10_news_ctr", "\n".join(lines))

    positive_days = sum(1 for v in improvements if v > 0)
    assert positive_days >= len(improvements) - 1
    avg = sum(improvements) / len(improvements)
    assert 1.0 < avg < 40.0  # single-to-low-double-digit gains

    # timing: one news recommendation query on the trained engine
    engine = news_experiment.treatment()
    user_id = news_experiment.scenario.population.user_ids()[0]
    now = news_experiment.result.num_days * 86400.0
    benchmark(engine.recommend, user_id, 5, now)
