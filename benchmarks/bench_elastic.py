"""Elastic-scaling cost: throughput across a live migration wave.

A closed-loop read-heavy workload drives one TDStore client through
three phases:

* **before** — steady state on an identically seeded 3-server pool
  that never migrates (the control);
* **during** — the pool expands 3 -> 5 and a rebalance wave live-migrates
  instances onto the new servers; each move is stepped (snapshot copy ->
  dual-write catch-up -> held-open cutover fence) so the measured client
  actually crosses ``MigrationInProgress`` windows, and every fence wait
  is sampled for the cutover-stall distribution;
* **after** — steady state on the rebalanced 5-server pool.

Before/after blocks run the *same op sequence* in alternation and are
compared per adjacent pair (median of pair ratios), so CPU-frequency
drift across the run cancels instead of masquerading as a migration
tax. The claims under test: steady-state throughput lands **within
10%** of the never-migrated control (migration is not a tax), the
simulated cutover stall p99 is **bounded** by the protocol's fixed +
per-record cost, at least one migration completed, and **no key is
lost** — every write acknowledged in any phase reads back exactly.
Results land in ``BENCH_elastic.json`` at the repo root.

Scale knobs: ``REPRO_BENCH_ELASTIC_OPS`` (default 6000; going much
lower shrinks the timed blocks until scheduler noise swamps the 10%
bar), ``REPRO_BENCH_ELASTIC_KEYS`` (default 512).
"""

import os
import random
import time

from repro.elastic import InstanceMigrator, Migration
from repro.elastic.migration import (
    CUTOVER_FIXED_SECONDS,
    CUTOVER_PER_RECORD_SECONDS,
)
from repro.tdstore import TDStoreCluster
from repro.utils.clock import SimClock

from benchmarks.conftest import report, report_json

NUM_OPS = int(os.environ.get("REPRO_BENCH_ELASTIC_OPS", "6000"))
NUM_KEYS = int(os.environ.get("REPRO_BENCH_ELASTIC_KEYS", "512"))
NUM_INSTANCES = 32
SERVERS_BEFORE = 3
SERVERS_ADDED = 2
WRITE_RATIO = 0.2
# writes landed inside each move's dual-write window; they become the
# catch-up records the cutover drains, so stalls vary move to move
CATCHUP_WRITES = 12
REPEATS = 9


def percentile(samples, q):
    ordered = sorted(samples)
    return ordered[int(q * (len(ordered) - 1))]


def seeded_world():
    clock = SimClock()
    cluster = TDStoreCluster(
        num_data_servers=SERVERS_BEFORE, num_instances=NUM_INSTANCES
    )
    client = cluster.client(clock=clock)
    table = cluster.config.route_table()
    expected, keys_by_instance = {}, {}
    for index in range(NUM_KEYS):
        key = f"hist:u{index}"
        client.put(key, {"seed": index})
        expected[key] = {"seed": index}
        instance = table.instance_for_key(key)
        keys_by_instance.setdefault(instance, []).append(key)
    return clock, cluster, client, expected, keys_by_instance


def run_ops(client, keys, expected, rng, ops):
    """One timed closed-loop block; returns wall-clock ops/sec."""
    started = time.perf_counter()
    for n in range(ops):
        key = keys[rng.randrange(len(keys))]
        if rng.random() < WRITE_RATIO:
            value = {"n": n}
            client.put(key, value)
            expected[key] = value
        else:
            client.get(key)
    return ops / (time.perf_counter() - started)


def paired_steady(control, migrated, keys):
    """Alternate identical op blocks over both worlds; judge by pairs.

    Each round drains the replicas' pending sync queues (the idle-time
    sync, so neither world is measured against the other's leftover
    heap), then times one block on the control and one on the migrated
    pool with the *same* rng. Adjacent blocks share whatever the CPU is
    doing, so the median pair ratio isolates the migration cost from
    clock drift; best-of blocks give the headline ops/s.
    """
    best = {"control": 0.0, "migrated": 0.0}
    ratios = []
    for r in range(REPEATS):
        sample = {}
        for name, (cluster, client, expected) in (
            ("control", control), ("migrated", migrated),
        ):
            cluster.sync_replicas()
            sample[name] = run_ops(
                client, keys, expected, random.Random(101 + r), NUM_OPS
            )
            best[name] = max(best[name], sample[name])
        ratios.append(sample["migrated"] / sample["control"])
    return best["control"], best["migrated"], percentile(ratios, 0.5)


def migration_wave(clock, cluster, client, expected, keys_by_instance):
    """Expand 3 -> 5 and run the rebalance wave against live traffic.

    Each move is held open at the cutover fence; the client's next read
    of the moving shard is what completes it, so every stall sample is
    a fence wait a real request experienced.
    """
    for _ in range(SERVERS_ADDED):
        cluster.add_data_server()
    migrator = InstanceMigrator(cluster, clock_now=clock.now)
    plan = migrator.plan_rebalance()
    stalls, ops_done = [], 0
    started = time.perf_counter()
    for instance, target in plan:
        migration = Migration(
            cluster.config, instance, target, clock_now=clock.now
        )
        migration.begin()
        shard_keys = keys_by_instance.get(instance, [])
        for n, key in enumerate(shard_keys[:CATCHUP_WRITES]):
            value = {"catchup": n}
            client.put(key, value)
            expected[key] = value
            ops_done += 1
        migration.enter_cutover()
        if shard_keys:
            before = client.migration_stall_seconds
            client.get(shard_keys[0])
            ops_done += 1
            stalls.append(client.migration_stall_seconds - before)
        else:
            migration.finish()
            stalls.append(migration.stall_seconds)
    elapsed = time.perf_counter() - started
    during_qps = ops_done / elapsed if elapsed > 0 else 0.0
    return plan, stalls, during_qps


def test_throughput_across_a_live_migration_wave():
    __, ctrl_cluster, ctrl_client, ctrl_expected, __ = seeded_world()
    clock, cluster, client, expected, keys_by_instance = seeded_world()
    keys = sorted(expected)

    plan, stalls, during_qps = migration_wave(
        clock, cluster, client, expected, keys_by_instance
    )
    before_qps, after_qps, ratio = paired_steady(
        (ctrl_cluster, ctrl_client, ctrl_expected),
        (cluster, client, expected),
        keys,
    )

    stats = cluster.migration_stats()
    lost_keys = sum(
        1 for key in keys if client.get(key) != expected[key]
    )
    stall_p99 = percentile(stalls, 0.99)
    # every catch-up write enqueues one sync record to the target; a
    # cutover can never drain more than the dual-write window admitted
    stall_bound = (
        CUTOVER_FIXED_SECONDS
        + CUTOVER_PER_RECORD_SECONDS * (2 * CATCHUP_WRITES + 16)
    )

    lines = [
        "Elastic scaling: live migration wave under a closed-loop client "
        f"({NUM_KEYS} keys over {NUM_INSTANCES} instances, "
        f"{SERVERS_BEFORE} -> {SERVERS_BEFORE + SERVERS_ADDED} servers, "
        f"write ratio {WRITE_RATIO:.0%})",
        f"  before : {before_qps:9.0f} ops/s on {SERVERS_BEFORE} servers "
        "(never-migrated control)",
        f"  during : {during_qps:9.0f} ops/s across {len(plan)} live moves",
        f"  after  : {after_qps:9.0f} ops/s on "
        f"{SERVERS_BEFORE + SERVERS_ADDED} servers "
        f"({ratio:.2f}x of control, median of paired blocks)",
        f"  cutover stall: p50 {percentile(stalls, 0.50) * 1e3:.2f} ms, "
        f"p99 {stall_p99 * 1e3:.2f} ms, max {max(stalls) * 1e3:.2f} ms "
        f"(bound {stall_bound * 1e3:.2f} ms, simulated)",
        f"  migrations completed {stats['completed']}, aborted "
        f"{stats['aborted']}, route epoch {stats['route_epoch']}, "
        f"fence waits {client.migration_stalls}, lost keys {lost_keys}",
    ]
    report("elastic_scaling", "\n".join(lines))
    report_json(
        "elastic",
        {
            "workload": {
                "ops_per_phase": NUM_OPS,
                "keys": NUM_KEYS,
                "instances": NUM_INSTANCES,
                "write_ratio": WRITE_RATIO,
                "servers_before": SERVERS_BEFORE,
                "servers_after": SERVERS_BEFORE + SERVERS_ADDED,
            },
            "throughput": {
                "before_qps": round(before_qps),
                "during_qps": round(during_qps),
                "after_qps": round(after_qps),
                "after_vs_before": round(ratio, 3),
            },
            "migrations": {
                "planned": len(plan),
                "completed": stats["completed"],
                "aborted": stats["aborted"],
                "route_epoch": stats["route_epoch"],
                "fence_waits": client.migration_stalls,
            },
            "cutover_stall": {
                "samples": len(stalls),
                "p50_seconds": percentile(stalls, 0.50),
                "p99_seconds": stall_p99,
                "max_seconds": max(stalls),
                "bound_seconds": stall_bound,
            },
            "lost_keys": lost_keys,
        },
    )

    # the layer's bars: elasticity is live, bounded, and lossless
    assert stats["completed"] >= len(plan) > 0
    assert stats["aborted"] == 0
    assert client.migration_stalls > 0, "no client ever crossed a fence"
    assert lost_keys == 0
    assert stall_p99 <= stall_bound, (
        f"cutover stall p99 {stall_p99 * 1e3:.2f}ms exceeds the protocol "
        f"bound {stall_bound * 1e3:.2f}ms"
    )
    assert 0.9 <= ratio <= 1.1, (
        f"steady-state throughput moved {ratio:.2f}x across the wave "
        "(must stay within 10%)"
    )
