"""Figure 14: CTR of the YiXun similar-purchase recommendation, one week.

Paper: daily improvements 6.99 / 6.29 / 10.71 / 11.11 / 11.59 / 10.37 /
10.34 percent — consistently positive but smaller than the similar-price
position's, because co-purchase history is a dense, relatively stable
signal the stale model also captures (Section 6.4).
"""

from repro.evaluation.reporting import format_daily_ctr_series

from benchmarks.conftest import report

PAPER_DAILY = [6.99, 6.29, 10.71, 11.11, 11.59, 10.37, 10.34]


def test_fig14_similar_purchase_ctr(yixun_purchase_experiment, benchmark):
    table = format_daily_ctr_series(
        yixun_purchase_experiment.result, "tencentrec", "original"
    )
    improvements = yixun_purchase_experiment.reported_improvements()
    lines = [
        table,
        "",
        "paper daily improvements: "
        + " ".join(f"{v:+.2f}%" for v in PAPER_DAILY),
        "ours (days 2..8):         "
        + " ".join(f"{v:+.2f}%" for v in improvements),
    ]
    report("fig14_yixun_purchase", "\n".join(lines))

    positive_days = sum(1 for v in improvements if v > 0)
    assert positive_days >= len(improvements) - 1
    avg = sum(improvements) / len(improvements)
    assert 0.0 < avg < 45.0

    engine = yixun_purchase_experiment.treatment()
    scenario = yixun_purchase_experiment.scenario
    user = scenario.population.users()[0]
    now = yixun_purchase_experiment.result.num_days * 86400.0
    anchor = scenario.behavior.pick_browsing_item(user, now)
    benchmark(
        engine.recommend, user.user_id, 5, now, {"anchor": anchor.item_id}
    )
