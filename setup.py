"""Compatibility shim.

`pip install -e .` needs the `wheel` package; on fully offline machines
without it, `python setup.py develop` installs the package in editable
mode using nothing but setuptools.
"""

from setuptools import setup

setup()
